"""Typed client for the ``lopc-serve/1`` HTTP protocol.

Stdlib-only (:mod:`urllib.request`); every method returns the same
typed objects the in-process facade does -- ``point`` gives a
:class:`~repro.api.Solution`, ``result``/``wait`` give a
:class:`~repro.sweep.SweepResult`, ``optimize`` gives an
:class:`~repro.opt.result.OptResult` -- so moving code between
in-process and served execution is a one-line change.

>>> client = Client("http://127.0.0.1:8421")           # doctest: +SKIP
>>> sol = client.point(scenario="alltoall", P=32,
...                    St=40.0, So=200.0, W=1000.0)    # doctest: +SKIP
>>> job = client.submit(spec)                          # doctest: +SKIP
>>> result = client.wait(job)                          # doctest: +SKIP
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Mapping

__all__ = ["Client", "ServeError"]


class ServeError(RuntimeError):
    """A non-2xx server reply, carrying the HTTP status and message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class Client:
    """Talks ``lopc-serve/1`` to one server."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(self, method: str, path: str,
                 body: object | None = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except (ValueError, AttributeError):
                message = str(exc)
            raise ServeError(exc.code, message) from None
        except urllib.error.URLError as exc:
            raise ServeError(0, f"cannot reach {self.base_url}: "
                                f"{exc.reason}") from None

    def _get(self, path: str) -> dict:
        return self._request("GET", path)

    def _post(self, path: str, body: object) -> dict:
        return self._request("POST", path, body)

    # -- endpoints -----------------------------------------------------
    def health(self) -> dict:
        return self._get("/v1/health")

    def point(self, *, scenario: str | None = None,
              backend: str = "analytic", evaluator: str | None = None,
              **params: object):
        """One point query, returned as a typed Solution."""
        from repro.api.solution import Solution

        body: dict[str, object] = {"params": params}
        if scenario is not None:
            body["scenario"] = scenario
            body["backend"] = backend
        if evaluator is not None:
            body["evaluator"] = evaluator
        return Solution.from_dict(self._post("/v1/point", body))

    def submit(self, spec, *, warm_start: bool = False) -> str:
        """Submit a sweep (SweepSpec or its JSON dict); returns job id."""
        payload = spec.to_json_dict() if hasattr(spec, "to_json_dict") \
            else dict(spec)
        status = self._post(
            "/v1/sweep", {"spec": payload, "warm_start": warm_start}
        )
        return str(status["job"])

    def jobs(self) -> "list[dict]":
        return self._get("/v1/jobs")["jobs"]

    def status(self, job_id: str, since: int = 0) -> dict:
        """Job status; ``stream.events``/``stream.next`` page the log."""
        return self._get(f"/v1/jobs/{job_id}?since={int(since)}")

    def result(self, job_id: str):
        """The finished job's SweepResult (raises 409 until done)."""
        from repro.sweep.results import SweepResult

        return SweepResult.from_dict(self._get(f"/v1/jobs/{job_id}/result"))

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.05):
        """Poll until the job completes; returns its SweepResult."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] == "done":
                return self.result(job_id)
            if status["state"] == "error":
                raise ServeError(
                    500, status.get("error", f"job {job_id} failed")
                )
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} "
                    f"after {timeout:.0f}s"
                )
            time.sleep(poll)

    def optimize(self, scenario: str,
                 params: Mapping[str, object] | None = None,
                 **query: object):
        """Inverse query via the server; returns a typed OptResult."""
        from repro.opt.result import OptResult

        return OptResult.from_dict(self._post("/v1/optimize", {
            "scenario": scenario,
            "params": dict(params or {}),
            "query": query,
        }))

    def cache_stats(self) -> dict:
        return self._get("/v1/cache/stats")

    def metrics(self) -> dict:
        return self._get("/metrics")
