"""The serving core: singleflight, batch-window merging, job scheduling.

:class:`SweepService` is the long-lived object behind the HTTP front
end (:mod:`repro.serve.http`) -- everything here is also directly
usable in-process, which is how the unit tests exercise coalescing and
scheduling without sockets.

Request flow for a point query (:meth:`SweepService.point`):

1. merge the evaluator's declared defaults into the params (exactly
   what the sweep runner does before keying), compute the content
   :func:`~repro.sweep.cache.point_key`;
2. **singleflight** -- claim the key's flight slot or join the
   in-flight leader.  The slot covers the whole lookup *and* compute,
   so N concurrent identical queries do exactly one cache read and at
   most one evaluation (``serve.coalesced`` counts the joiners);
3. the leader consults the shared cache; on a miss it dispatches --
   analytic/bounds evaluators (those with a vectorized batch
   companion) into the **batch window** where co-arriving distinct
   points merge into one batched kernel solve, sim evaluators onto the
   worker pool -- then writes the record back *before* releasing the
   flight, so followers and later arrivals always see it.

Sweep jobs (:meth:`SweepService.submit_sweep`) are routed by the same
rule: batch-capable evaluators run inline at submit time (one warm
vectorized solve, job is done when submit returns), sim evaluators go
to the persistent worker pool as an async :class:`Job` whose progress
streams out of an in-memory :class:`~repro.obs.EventLog` (the runner's
``sweep.start``/``sweep.chunk``/``sweep.finish`` events).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Mapping, Sequence

from repro.obs import EventLog, MetricsRegistry
from repro.sweep.cache import CacheBackend, coerce_cache, point_key
from repro.sweep.cache import SOLVER_VERSION
from repro.sweep.evaluators import (
    evaluate_batch,
    evaluate_point,
    evaluator_defaults,
    get_batch_evaluator,
    get_evaluator,
)
from repro.sweep.results import SweepResult
from repro.sweep.runner import run_sweep
from repro.sweep.spec import SweepSpec

__all__ = ["Job", "PointOutcome", "SweepService"]


class PointOutcome:
    """What one point query produced: values, meta, and provenance."""

    __slots__ = ("values", "meta", "cached", "coalesced", "key")

    def __init__(self, values: dict, meta: dict, *, cached: bool,
                 coalesced: bool, key: str) -> None:
        self.values = values
        self.meta = meta
        self.cached = cached
        self.coalesced = coalesced
        self.key = key


class _Flight:
    """One in-flight evaluation other requests for the same key join."""

    __slots__ = ("key", "evaluator", "params", "event", "record", "error",
                 "cached")

    def __init__(self, key: str, evaluator: str, params: dict) -> None:
        self.key = key
        self.evaluator = evaluator
        self.params = params
        self.event = threading.Event()
        self.record: dict | None = None  # {"values", "meta"}
        self.error: BaseException | None = None
        self.cached = False  # leader found it in the cache


class _Batcher:
    """Merges co-arriving batch-capable flights into one kernel solve.

    A leader flight lands in the pending queue; the batcher thread
    wakes, sleeps one ``window``, then drains *everything* pending --
    so requests that co-arrive within the window share a single
    ``evaluate_batch`` call per evaluator.  The window only ever delays
    cache *misses* of batch-capable evaluators; warm hits never come
    here.
    """

    def __init__(self, service: "SweepService", window: float) -> None:
        self.service = service
        self.window = window
        self._pending: deque[_Flight] = deque()
        self._cond = threading.Condition()
        self._stop = False
        self._thread = threading.Thread(
            target=self._loop, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, flight: _Flight) -> None:
        with self._cond:
            self._pending.append(flight)
            self._cond.notify()

    def close(self) -> None:
        with self._cond:
            self._stop = True
            self._cond.notify()
        self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._stop:
                    self._cond.wait()
                if self._stop and not self._pending:
                    return
            # Let the window fill outside the lock, then drain it all.
            if self.window > 0:
                time.sleep(self.window)
            with self._cond:
                batch = list(self._pending)
                self._pending.clear()
            if batch:
                self._solve(batch)

    def _solve(self, batch: "list[_Flight]") -> None:
        metrics = self.service.metrics
        metrics.inc("serve.batch.requests", len(batch))
        groups: dict[str, list[_Flight]] = {}
        for flight in batch:
            groups.setdefault(flight.evaluator, []).append(flight)
        for evaluator, flights in groups.items():
            metrics.inc("serve.batch.solves")
            if len(flights) > 1:
                metrics.inc("serve.batch.merged", len(flights) - 1)
            try:
                records = evaluate_batch(
                    evaluator, [f.params for f in flights]
                )
            except BaseException as exc:  # propagate to every waiter
                for flight in flights:
                    self.service._finish(flight, error=exc)
                continue
            for flight, record in zip(flights, records):
                self.service._finish(flight, record=record)


class Job:
    """One submitted sweep: state machine + progress + result."""

    __slots__ = ("id", "spec", "warm_start", "route", "state", "error",
                 "result", "submitted", "started", "finished", "events",
                 "_done", "_total", "_lock")

    def __init__(self, job_id: str, spec: SweepSpec, *, warm_start: bool,
                 route: str) -> None:
        self.id = job_id
        self.spec = spec
        self.warm_start = warm_start
        self.route = route  # "inline" | "pool"
        self.state = "queued"  # queued -> running -> done | error
        self.error: str | None = None
        self.result: SweepResult | None = None
        self.submitted = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.events = EventLog()  # in-memory; streamed via ?since=
        self._done = 0
        self._total = len(spec)
        self._lock = threading.Lock()

    def _progress(self, done: int, total: int,
                  info: Mapping[str, object]) -> None:
        with self._lock:
            self._done = done
            self._total = total

    def status(self) -> dict[str, object]:
        """JSON-ready snapshot of this job."""
        with self._lock:
            done, total = self._done, self._total
        out: dict[str, object] = {
            "job": self.id,
            "spec": self.spec.name,
            "evaluator": self.spec.evaluator,
            "route": self.route,
            "state": self.state,
            "points": len(self.spec),
            "progress": {"done": done, "total": total},
            "submitted": self.submitted,
            "events": len(self.events.records),
        }
        if self.started is not None:
            out["started"] = self.started
        if self.finished is not None:
            out["finished"] = self.finished
            out["elapsed"] = self.finished - (self.started or self.submitted)
        if self.error is not None:
            out["error"] = self.error
        return out

    def events_since(self, since: int = 0) -> "tuple[list[dict], int]":
        """Event records from sequence ``since`` on, plus the next seq."""
        records = self.events.records
        return records[since:], len(records)


class SweepService:
    """A long-lived, concurrency-safe LoPC query/sweep service."""

    def __init__(
        self,
        cache: "CacheBackend | str | None" = None,
        *,
        cache_backend: str | None = None,
        workers: int = 2,
        batch_window: float = 0.002,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cache = coerce_cache(cache, cache_backend)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.workers = max(1, int(workers))
        self.batch_window = batch_window
        self.started_at = time.time()
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="serve-worker"
        )
        self._batcher = _Batcher(self, batch_window)
        self._flights: dict[str, _Flight] = {}
        self._flights_lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._job_seq = 0
        self._outstanding = 0  # pool jobs queued or running

    # -- point queries -------------------------------------------------
    def point(self, evaluator: str, params: Mapping[str, object],
              ) -> PointOutcome:
        """Evaluate one point (cache -> singleflight -> batch/pool).

        ``params`` plus the evaluator's declared defaults are keyed
        exactly as the sweep runner keys them, so served points and
        sweep points share cache records.
        """
        get_evaluator(evaluator)  # unknown-name errors before any work
        merged = evaluator_defaults(evaluator)
        merged.update(params)
        key = point_key(evaluator, merged)

        with self._flights_lock:
            flight = self._flights.get(key)
            leader = flight is None
            if leader:
                flight = _Flight(key, evaluator, merged)
                self._flights[key] = flight

        if not leader:
            self.metrics.inc("serve.coalesced")
            flight.event.wait()
            if flight.error is not None:
                raise flight.error
            return self._outcome(flight, coalesced=True)

        try:
            if self.cache is not None:
                record = self.cache.get(key)
                if record is not None:
                    self._finish(
                        flight,
                        record={"values": record["values"],
                                "meta": record["meta"]},
                        cached=True,
                    )
                    return self._outcome(flight, coalesced=False)
            self._dispatch(flight)
        except BaseException as exc:
            self._finish(flight, error=exc)
            raise
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return self._outcome(flight, coalesced=False)

    def _dispatch(self, flight: _Flight) -> None:
        """Route a leader's cache miss to the batch window or the pool."""
        if get_batch_evaluator(flight.evaluator) is not None:
            self.metrics.inc("serve.point.route.batch")
            self._batcher.submit(flight)
        else:
            self.metrics.inc("serve.point.route.pool")
            self._pool.submit(self._evaluate_direct, flight)

    def _evaluate_direct(self, flight: _Flight) -> None:
        try:
            record = evaluate_point((flight.evaluator, flight.params))
        except BaseException as exc:
            self._finish(flight, error=exc)
        else:
            self._finish(flight, record=record)

    def _finish(self, flight: _Flight, record: dict | None = None,
                error: BaseException | None = None,
                cached: bool = False) -> None:
        """Complete a flight: persist, then release key and waiters.

        The cache write happens *before* the flight slot is released --
        a request arriving after release always finds either the flight
        or the record, never a gap, so N concurrent identical queries
        produce exactly one write.
        """
        if error is None and not cached and self.cache is not None:
            self.cache.put(
                flight.key,
                {
                    "evaluator": flight.evaluator,
                    "params": flight.params,
                    "values": record["values"],
                    "meta": record["meta"],
                    "solver_version": SOLVER_VERSION,
                },
            )
        flight.record = record
        flight.error = error
        flight.cached = cached
        with self._flights_lock:
            self._flights.pop(flight.key, None)
        flight.event.set()

    def _outcome(self, flight: _Flight, *, coalesced: bool) -> PointOutcome:
        meta = dict(flight.record["meta"])
        meta["cached"] = flight.cached
        meta["key"] = flight.key
        if coalesced:
            meta["coalesced"] = True
        return PointOutcome(
            values=dict(flight.record["values"]),
            meta=meta,
            cached=flight.cached,
            coalesced=coalesced,
            key=flight.key,
        )

    def solution(self, *, scenario: str | None = None,
                 backend: str = "analytic",
                 evaluator: str | None = None,
                 params: Mapping[str, object] | None = None):
        """A point query typed as a :class:`~repro.api.Solution`.

        Either a ``scenario`` + ``backend`` role (resolved through the
        facade, so defaults and validation match ``scenario(...).
        analytic()`` exactly) or a bare registry ``evaluator`` name.
        """
        from repro.api.scenario import find_backend, get_scenario_class
        from repro.api.solution import Solution

        params = dict(params or {})
        if (scenario is None) == (evaluator is None):
            raise ValueError("pass exactly one of scenario= or evaluator=")
        if scenario is not None:
            cls = get_scenario_class(scenario)
            instance = cls(**params)
            spec_backend = cls.backend(backend)
            full = instance.resolve(backend)
            evaluator = spec_backend.evaluator
            scenario_name, role = scenario, backend
        else:
            full = dict(evaluator_defaults(evaluator))
            full.update(params)
            found = find_backend(evaluator)
            if found is not None:
                scenario_name, role = found[0].name, found[1].role
            else:
                scenario_name, role = evaluator, "custom"
        outcome = self.point(evaluator, full)
        return Solution(
            scenario=scenario_name,
            backend=role,
            evaluator=evaluator,
            params=full,
            values=outcome.values,
            meta=outcome.meta,
        )

    # -- sweep jobs ----------------------------------------------------
    def submit_sweep(self, spec: SweepSpec, *,
                     warm_start: bool = False) -> Job:
        """Schedule one sweep; returns its :class:`Job` immediately.

        Batch-capable evaluators run *inline* (the job is already done
        when this returns -- one warm vectorized solve); sim evaluators
        run asynchronously on the worker pool.
        """
        get_evaluator(spec.evaluator)
        route = (
            "inline" if get_batch_evaluator(spec.evaluator) is not None
            else "pool"
        )
        with self._jobs_lock:
            self._job_seq += 1
            job = Job(f"job-{self._job_seq:04d}", spec,
                      warm_start=warm_start, route=route)
            self._jobs[job.id] = job
        self.metrics.inc(f"serve.jobs.route.{route}")
        if route == "inline":
            self._run_job(job)
        else:
            with self._jobs_lock:
                self._outstanding += 1
                depth = self._outstanding
            self.metrics.gauge("serve.jobs.queue_depth", depth)
            self.metrics.gauge_max("serve.jobs.queue_depth_high_water",
                                   depth)
            self._pool.submit(self._run_pool_job, job)
        return job

    def _run_pool_job(self, job: Job) -> None:
        try:
            self._run_job(job)
        finally:
            with self._jobs_lock:
                self._outstanding -= 1
                depth = self._outstanding
            self.metrics.gauge("serve.jobs.queue_depth", depth)

    def _run_job(self, job: Job) -> None:
        # Live event/progress streaming forces the runner off the staged
        # single-call batch path into chunked dispatch; inline jobs are
        # done before any client could poll them, so only pool jobs --
        # the ones genuinely worth watching -- pay for it.
        live = job.route == "pool"
        job.state = "running"
        job.started = time.time()
        try:
            with self.metrics.span(f"serve.jobs.{job.route}"):
                result = run_sweep(
                    job.spec,
                    cache=self.cache,
                    warm_start=job.warm_start,
                    events=job.events if live else None,
                    progress=job._progress if live else None,
                )
        except BaseException as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.state = "error"
        else:
            job.result = result
            job._progress(len(result), len(result), {})
            job.state = "done"
        job.finished = time.time()

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                known = ", ".join(sorted(self._jobs)) or "(none)"
                raise KeyError(
                    f"unknown job {job_id!r}; known: {known}"
                ) from None

    def jobs(self) -> "list[Job]":
        with self._jobs_lock:
            return list(self._jobs.values())

    # -- inverse queries -----------------------------------------------
    def optimize(self, scenario_name: str,
                 params: Mapping[str, object],
                 query: Mapping[str, object]):
        """Answer an inverse query; returns an OptResult.

        ``query`` is the keyword set of
        :meth:`repro.api.Scenario.optimize` (``minimize``/``maximize``/
        ``knee``, ``over``, ``subject_to``, ``backend`` ...).  ``over``
        ranges arrive as JSON lists and are coerced to tuples.
        """
        from repro.api.scenario import scenario as make_scenario

        query = dict(query)
        over = query.get("over")
        if isinstance(over, Mapping):
            query["over"] = {
                k: tuple(v) if isinstance(v, Sequence)
                and not isinstance(v, str) else v
                for k, v in over.items()
            }
        with self.metrics.span("serve.optimize"):
            return make_scenario(scenario_name, **dict(params)).optimize(
                **query
            )

    # -- introspection -------------------------------------------------
    def cache_stats(self) -> dict[str, object]:
        """Backend identity, record count, and hit/miss/write counters."""
        if self.cache is None:
            return {"backend": None, "stats": None, "records": 0}
        backend = type(self.cache).__name__
        location = getattr(self.cache, "path", None) or getattr(
            self.cache, "root", None
        )
        out: dict[str, object] = {
            "backend": backend,
            "stats": self.cache.stats.as_dict(),
        }
        if location is not None:
            out["location"] = str(location)
        try:
            out["records"] = len(self.cache)  # type: ignore[arg-type]
        except TypeError:
            out["records"] = None
        return out

    def metrics_snapshot(self) -> dict[str, dict]:
        return self.metrics.as_dict()

    def close(self) -> None:
        """Stop the batcher and worker pool (idempotent)."""
        self._batcher.close()
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
