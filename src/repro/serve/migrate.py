"""Lossless cache migration between the file-tree and sqlite backends.

Both backends serialize records with identical ``json.dumps`` settings,
so migration is a byte-exact copy: every record's stored text is moved
verbatim and re-verified (`dst.raw(key) == src.raw(key)`), and the
report proves record-count and key-set equality.  A failed verification
raises -- a migrated cache is either provably identical or not created
silently.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.sweep.cache import CacheBackend, coerce_cache

__all__ = ["MigrationReport", "migrate_cache"]


@dataclass(frozen=True)
class MigrationReport:
    """Proof-of-equality summary of one migration."""

    source: str
    destination: str
    copied: int
    skipped: int  # already present with identical bytes
    verified: int

    def summary(self) -> str:
        return (
            f"{self.copied} record(s) copied, {self.skipped} already "
            f"present, {self.verified} verified byte-identical: "
            f"{self.source} -> {self.destination}"
        )


def migrate_cache(
    source: "CacheBackend | str | Path",
    destination: "CacheBackend | str | Path",
    *,
    source_backend: str | None = None,
    destination_backend: str | None = None,
) -> MigrationReport:
    """Copy every record of ``source`` into ``destination``, verified.

    Accepts backend instances or paths (suffix / ``*_backend`` hints
    pick sqlite vs. files, as in
    :func:`~repro.sweep.cache.coerce_cache`).  Existing destination
    records with identical bytes are counted ``skipped``; a destination
    record that *differs* is overwritten (the source is the truth being
    migrated).  After copying, every source key is re-read from the
    destination and compared byte-for-byte, and the key sets must
    match exactly.
    """
    src = coerce_cache(source, source_backend)
    dst = coerce_cache(destination, destination_backend)
    if src is None or dst is None:
        raise ValueError("migrate_cache needs concrete source and "
                         "destination caches")
    copied = skipped = 0
    source_keys = set(src.keys())
    for key in source_keys:
        text = src.raw(key)
        if text is None:  # deleted between listing and read
            source_keys.discard(key)
            continue
        if dst.raw(key) == text:
            skipped += 1
            continue
        dst.put(key, json.loads(text))
        copied += 1

    verified = 0
    for key in source_keys:
        expected = src.raw(key)
        actual = dst.raw(key)
        if actual != expected:
            raise RuntimeError(
                f"migration verification failed: record {key[:12]}... "
                "differs between source and destination"
            )
        verified += 1
    missing = source_keys - set(dst.keys())
    if missing:
        raise RuntimeError(
            f"migration verification failed: {len(missing)} source "
            "key(s) absent from destination"
        )
    return MigrationReport(
        source=_describe(src),
        destination=_describe(dst),
        copied=copied,
        skipped=skipped,
        verified=verified,
    )


def _describe(cache: CacheBackend) -> str:
    location = getattr(cache, "path", None) or getattr(cache, "root", None)
    return f"{type(cache).__name__}({location})"
