"""JSON-over-HTTP front end for :class:`~repro.serve.SweepService`.

A deliberately small protocol (``lopc-serve/1``) on the stdlib
:class:`~http.server.ThreadingHTTPServer` -- every request handler
thread talks to the one shared service, which is where all concurrency
control (singleflight, batch window, worker pool) lives.

Routes (all bodies and responses are JSON)::

    GET  /v1/health            liveness + protocol version
    POST /v1/point             {"scenario", "backend"?, "params"?} or
                               {"evaluator", "params"} -> Solution
    POST /v1/sweep             {"spec": <SweepSpec JSON>,
                                "warm_start"?} -> job status
    GET  /v1/jobs              all job statuses
    GET  /v1/jobs/<id>?since=N status + event records [since:]
    GET  /v1/jobs/<id>/result  SweepResult (409 until done)
    POST /v1/optimize          {"scenario", "params"?, "query"}
                               -> OptResult
    GET  /v1/cache/stats       backend, record count, hit/miss/write
    GET  /metrics              obs MetricsRegistry snapshot

Errors are ``{"error": <message>}`` with a 4xx/5xx status; bad input
(unknown scenario/evaluator/job, malformed JSON, invalid parameters)
is 400/404, evaluation failures are 500.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.serve.service import SweepService

__all__ = ["PROTOCOL", "ServeHTTPServer", "make_server", "serve_forever"]

#: Wire-protocol version tag (bump on incompatible endpoint changes).
PROTOCOL = "lopc-serve/1"

#: Request body ceiling -- a sweep spec is a few KB; anything larger
#: is a mistake or abuse.
MAX_BODY = 4 * 1024 * 1024


class ServeHTTPServer(ThreadingHTTPServer):
    """Threading server carrying the shared service instance."""

    daemon_threads = True

    def __init__(self, address: "tuple[str, int]",
                 service: SweepService, *, quiet: bool = True) -> None:
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServeHTTPServer

    # -- plumbing ------------------------------------------------------
    def log_message(self, fmt: str, *args: object) -> None:
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(fmt, *args)

    def _reply(self, status: int, payload: object) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY:
            raise ValueError(f"request body exceeds {MAX_BODY} bytes")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler, *args) -> None:
        service = self.server.service
        try:
            handler(service, *args)
        except (KeyError, ValueError, TypeError) as exc:
            status = 404 if isinstance(exc, KeyError) else 400
            self._error(status, str(exc).strip("'\""))
        except BrokenPipeError:  # client went away mid-reply
            pass
        except Exception as exc:  # evaluation / internal failure
            self._error(500, f"{type(exc).__name__}: {exc}")

    # -- routing -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        if parts == ["v1", "health"]:
            self._dispatch(self._health)
        elif parts == ["metrics"]:
            self._dispatch(self._metrics)
        elif parts == ["v1", "cache", "stats"]:
            self._dispatch(self._cache_stats)
        elif parts == ["v1", "jobs"]:
            self._dispatch(self._jobs)
        elif len(parts) == 3 and parts[:2] == ["v1", "jobs"]:
            self._dispatch(self._job_status, parts[2], query)
        elif (len(parts) == 4 and parts[:2] == ["v1", "jobs"]
              and parts[3] == "result"):
            self._dispatch(self._job_result, parts[2])
        else:
            self._error(404, f"no such endpoint: GET {split.path}")

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        if parts == ["v1", "point"]:
            self._dispatch(self._point)
        elif parts == ["v1", "sweep"]:
            self._dispatch(self._sweep)
        elif parts == ["v1", "optimize"]:
            self._dispatch(self._optimize)
        else:
            self._error(404, f"no such endpoint: POST {split.path}")

    # -- endpoints -----------------------------------------------------
    def _health(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.health")
        cache = service.cache
        self._reply(200, {
            "ok": True,
            "protocol": PROTOCOL,
            "workers": service.workers,
            "cache": type(cache).__name__ if cache is not None else None,
            "uptime": max(0.0, time.time() - service.started_at),
        })

    def _metrics(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.metrics")
        self._reply(200, service.metrics_snapshot())

    def _cache_stats(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.cache_stats")
        self._reply(200, service.cache_stats())

    def _point(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.point")
        body = self._body()
        solution = service.solution(
            scenario=body.get("scenario"),
            backend=body.get("backend", "analytic"),
            evaluator=body.get("evaluator"),
            params=body.get("params") or {},
        )
        self._reply(200, solution.to_dict())

    def _sweep(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.sweep")
        body = self._body()
        if "spec" not in body:
            raise ValueError('sweep submit needs a "spec" object')
        from repro.sweep.spec import SweepSpec

        spec = SweepSpec.from_json_dict(body["spec"])
        job = service.submit_sweep(
            spec, warm_start=bool(body.get("warm_start", False))
        )
        self._reply(200, job.status())

    def _jobs(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.jobs")
        self._reply(200, {"jobs": [job.status() for job in service.jobs()]})

    def _job_status(self, service: SweepService, job_id: str,
                    query: dict) -> None:
        service.metrics.inc("serve.requests.status")
        job = service.job(job_id)
        since = int(query.get("since", ["0"])[0])
        events, next_seq = job.events_since(since)
        payload = job.status()
        payload["stream"] = {"events": events, "next": next_seq}
        self._reply(200, payload)

    def _job_result(self, service: SweepService, job_id: str) -> None:
        service.metrics.inc("serve.requests.result")
        job = service.job(job_id)
        if job.state == "error":
            self._error(500, job.error or "job failed")
        elif job.result is None:
            self._error(
                409, f"job {job_id} is {job.state}; result not ready"
            )
        else:
            self._reply(200, job.result.to_dict())

    def _optimize(self, service: SweepService) -> None:
        service.metrics.inc("serve.requests.optimize")
        body = self._body()
        if "scenario" not in body:
            raise ValueError('optimize needs a "scenario" name')
        result = service.optimize(
            body["scenario"],
            body.get("params") or {},
            body.get("query") or {},
        )
        self._reply(200, result.to_dict())


def make_server(service: SweepService, host: str = "127.0.0.1",
                port: int = 0, *, quiet: bool = True) -> ServeHTTPServer:
    """A bound (not yet serving) server; ``port=0`` picks a free port."""
    return ServeHTTPServer((host, port), service, quiet=quiet)


def serve_forever(server: ServeHTTPServer,
                  in_thread: bool = False) -> "threading.Thread | None":
    """Run the accept loop, optionally on a daemon thread (for tests)."""
    if not in_thread:
        server.serve_forever()
        return None
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    return thread
