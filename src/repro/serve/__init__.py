"""``repro.serve``: a long-lived, concurrency-safe sweep/query service.

The production face of the reproduction: one persistent process that
answers analytic scenario queries from warm batch kernels, schedules
simulation sweeps on a worker pool, and shares one content-addressed
cache store across any number of concurrent clients.  Start it with
``lopc-repro serve`` (or :func:`make_server` in-process), talk to it
with :class:`Client` or the ``submit``/``status``/``fetch``/``query``
CLI verbs.

Layers (all stdlib-only):

:mod:`repro.serve.service`
    :class:`SweepService` -- singleflight request coalescing, a batch
    window that merges co-arriving analytic points into one vectorized
    kernel solve, and a scheduler routing batch-capable evaluators
    inline and sim evaluators to a persistent worker pool with async
    :class:`Job` objects (progress streamed from :mod:`repro.obs`
    events).
:mod:`repro.serve.http`
    The JSON-over-HTTP front end (``http.server`` threading server).
:mod:`repro.serve.client`
    :class:`Client`, returning the same typed objects as the
    in-process facade.
:mod:`repro.serve.migrate`
    :func:`migrate_cache` -- verified byte-exact conversion between the
    file-tree and sqlite cache backends.

Wire protocol ``lopc-serve/1``
------------------------------
Versioned like the fuzz corpus formats; bump on any incompatible
change.  All requests and responses are JSON; the payload shapes are
the library's existing round trips, not bespoke schemas:

* point queries return :meth:`repro.api.Solution.to_dict` (the
  ``meta`` side gains ``cached``/``key``/``coalesced`` provenance);
* sweep submits take :meth:`repro.sweep.SweepSpec.to_json_dict` and
  results return :meth:`repro.sweep.SweepResult.to_dict`
  (``lopc-sweep-result/1``);
* optimize queries return :meth:`repro.opt.result.OptResult.to_dict`;
* ``/metrics`` returns :meth:`repro.obs.MetricsRegistry.as_dict`.

Endpoints: ``GET /v1/health``, ``POST /v1/point``, ``POST /v1/sweep``,
``GET /v1/jobs``, ``GET /v1/jobs/<id>[?since=N]``,
``GET /v1/jobs/<id>/result``, ``POST /v1/optimize``,
``GET /v1/cache/stats``, ``GET /metrics``.  Errors are
``{"error": msg}`` with 4xx/5xx status.
"""

from repro.serve.client import Client, ServeError
from repro.serve.http import (
    PROTOCOL,
    ServeHTTPServer,
    make_server,
    serve_forever,
)
from repro.serve.migrate import MigrationReport, migrate_cache
from repro.serve.service import Job, PointOutcome, SweepService

__all__ = [
    "Client",
    "Job",
    "MigrationReport",
    "PROTOCOL",
    "PointOutcome",
    "ServeError",
    "ServeHTTPServer",
    "SweepService",
    "make_server",
    "migrate_cache",
    "serve_forever",
]
