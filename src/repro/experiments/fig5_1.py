"""Figure 5-1: effect of the coefficient of variation on contention.

The paper's figure plots, for homogeneous all-to-all traffic with
``W = 1000`` cycles, the *fraction of total response time devoted to
contention* as the handler-service-time variability ``C^2`` sweeps from
0 to 2, one curve per handler occupancy ``So in {128, 256, 512, 1024}``.

This is a model-only figure (no simulation in the paper's version).  The
paper's headline reading: "the difference between the values predicted
for a constant distribution, C^2 = 0, and an exponential distribution,
C^2 = 1, is about 6%" -- checked below as a shape check on the
highest-occupancy curve.

The paper does not state ``St`` or ``P`` for this figure; we use the
Alewife-like defaults ``St = 40``, ``P = 32`` (see EXPERIMENTS.md).  The
curves' ordering and spacing are insensitive to that choice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api import Study, scenario
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sweep import SweepSpec
from repro.sweep.runner import CacheLike

__all__ = ["run", "sweep_spec"]

DEFAULT_HANDLERS = (128, 256, 512, 1024)


def _study(
    work: float,
    handlers: Sequence[float],
    cv2_values: Sequence[float],
    latency: float,
    processors: int,
    **run_options: object,
) -> Study:
    """The figure's study: an all-to-all scenario over the C^2 x So grid.

    ``C^2 = 0`` and ``C^2 = 1`` ride along even when outside
    ``cv2_values``: the paper's "about 6%" claim compares exactly those
    two points, and sharing one grid means a warm cache serves both the
    figure and the claim check.
    """
    cv2_grid: list[float] = []
    for v in list(cv2_values) + [0.0, 1.0]:  # dedupe, preserving order
        if v not in cv2_grid:
            cv2_grid.append(v)
    sc = scenario("alltoall", P=processors, St=latency, W=work)
    return sc.study(C2=cv2_grid, So=tuple(handlers), **run_options)


def sweep_spec(
    work: float,
    handlers: Sequence[float],
    cv2_values: Sequence[float],
    latency: float,
    processors: int,
) -> SweepSpec:
    """The compiled model sweep over the ``C^2 x So`` grid."""
    return _study(work, handlers, cv2_values, latency, processors).spec(
        "analytic", name="fig-5.1/model"
    )


@register("fig-5.1")
def run(
    work: float = 1000.0,
    handlers: Sequence[float] = DEFAULT_HANDLERS,
    cv2_values: Sequence[float] | None = None,
    latency: float = 40.0,
    processors: int = 32,
    jobs: int = 1,
    cache: CacheLike = None,
) -> ExperimentResult:
    """Sweep handler C^2 and occupancy; report contention fractions."""
    if cv2_values is None:
        cv2_values = np.round(np.arange(0.0, 2.0 + 1e-9, 0.25), 4).tolist()
    study = _study(work, handlers, cv2_values, latency, processors,
                   jobs=jobs, cache=cache)
    sweep = study.analytic(name="fig-5.1/model")

    columns = ["C2"] + [f"handler {int(so)}" for so in handlers]
    rows = []
    fractions: dict[float, dict[float, float]] = {}
    for cv2 in cv2_values:
        row: dict[str, object] = {"C2": cv2}
        fractions[cv2] = {}
        for so in handlers:
            frac = sweep.lookup(C2=cv2, So=so)["contention_fraction"]
            row[f"handler {int(so)}"] = frac
            fractions[cv2][so] = frac
        rows.append(row)

    # Shape checks -----------------------------------------------------
    checks = []
    # 1. Contention fraction increases with C^2 for every handler size.
    monotone = all(
        all(
            fractions[a][so] <= fractions[b][so] + 1e-12
            for a, b in zip(cv2_values, list(cv2_values)[1:])
        )
        for so in handlers
    )
    checks.append(
        ShapeCheck(
            "monotone-in-cv2",
            monotone,
            "contention fraction is non-decreasing in C^2 for every So",
        )
    )
    # 2. Larger handlers suffer a larger contention fraction.
    ordered = all(
        all(
            fractions[cv2][a] <= fractions[cv2][b] + 1e-12
            for a, b in zip(handlers, list(handlers)[1:])
        )
        for cv2 in cv2_values
    )
    checks.append(
        ShapeCheck(
            "ordered-in-occupancy",
            ordered,
            "curves ordered by handler occupancy (larger So above)",
        )
    )
    # 3. The paper's "about 6%" gap between C^2=0 and C^2=1 (response-time
    #    terms).  Measured as the response-time difference, which is how
    #    Section 5.2's text frames it.
    gaps = {}
    for so in handlers:
        r0 = sweep.lookup(C2=0.0, So=so)["R"]
        r1 = sweep.lookup(C2=1.0, So=so)["R"]
        gaps[so] = 100.0 * (r1 - r0) / r0
    max_gap = max(gaps.values())
    checks.append(
        ShapeCheck(
            "c2-gap-about-6pct",
            0.5 <= max_gap <= 10.0,
            f"max response-time gap C^2=0 -> C^2=1 is {max_gap:.2f}% "
            "(paper: about 6%)",
        )
    )
    return ExperimentResult(
        experiment_id="fig-5.1",
        title="Effect of coefficient of variation on contention (W=1000)",
        parameters={
            "W": work,
            "St": latency,
            "P": processors,
            "handlers": tuple(int(h) for h in handlers),
        },
        columns=columns,
        rows=rows,
        checks=checks,
        notes=(
            "Model-only figure, as in the paper.  St and P are not stated "
            "in the paper; Alewife-like defaults used (EXPERIMENTS.md).",
            "Per-handler C2=0 -> C2=1 response-time gaps (%): "
            + ", ".join(f"So={so}: {g:.2f}" for so, g in gaps.items()),
        ),
    )
