"""Figure 5-3: components of contention for 32-node all-to-all traffic.

The paper's figure decomposes the contention of one compute/request cycle
(So = 200, C^2 = 0) into its three components -- thread delay
(``Rw - W``), request-handler queueing (``Rq - So``) and reply-handler
queueing (``Ry - So``) -- as measured on the simulator and as predicted
by LoPC, across a work sweep.

Headline readings reproduced as shape checks:

* "To a first approximation the cost of contention is equal to the cost
  of an extra handler" -- total contention stays within [0.5, 1.5] So
  across the sweep;
* LoPC's largest *component* error is the reply-handler queueing at
  ``W = 0`` (the paper reports a 76 % over-prediction there), while the
  total stays within ~6 %.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import ExperimentResult, ShapeCheck, register

# One construction point for the all-to-all work-sweep studies: this
# figure *must* share Figure 5-2's machine so a warm cache serves both,
# and importing its helper makes that a structural fact, not a
# convention two files keep in sync by hand.
from repro.experiments.fig5_2 import _studies
from repro.sweep import SweepSpec
from repro.sweep.runner import CacheLike

__all__ = ["run", "DEFAULT_WORK_SWEEP", "sweep_specs"]

DEFAULT_WORK_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def sweep_specs(
    works: Sequence[float],
    processors: int,
    latency: float,
    handler_time: float,
    handler_cv2: float,
    cycles: int,
    seed: int,
) -> tuple[SweepSpec, SweepSpec]:
    """Model and simulator sweeps over the work grid.

    The machine matches Figure 5-2's, so with a shared cache the
    simulator points solved there are reused here verbatim.
    """
    study, sim_study = _studies(works, processors, latency, handler_time,
                                handler_cv2, cycles, seed)
    return (
        study.spec("analytic", name="fig-5.3/model"),
        sim_study.spec("sim", name="fig-5.3/sim"),
    )


@register("fig-5.3")
def run(
    works: Sequence[float] = DEFAULT_WORK_SWEEP,
    processors: int = 32,
    latency: float = 40.0,
    handler_time: float = 200.0,
    handler_cv2: float = 0.0,
    cycles: int = 300,
    seed: int = 20250611,
    jobs: int = 1,
    cache: CacheLike = None,
) -> ExperimentResult:
    """Run the Figure 5-3 sweep: per-component contention, model vs sim."""
    study, sim_study = _studies(works, processors, latency, handler_time,
                                handler_cv2, cycles, seed,
                                jobs=jobs, cache=cache)
    model = study.analytic(name="fig-5.3/model")
    sim = sim_study.simulate(name="fig-5.3/sim")

    rows = []
    totals_in_handlers = []
    reply_errors = []
    for work, m, s in zip(works, model, sim):
        rows.append(
            {
                "W": work,
                "thread model": m["compute_contention"],
                "thread sim": s["compute_contention"],
                "request model": m["request_contention"],
                "request sim": s["request_contention"],
                "reply model": m["reply_contention"],
                "reply sim": s["reply_contention"],
                "total model": m["total_contention"],
                "total sim": s["total_contention"],
            }
        )
        totals_in_handlers.append(s["total_contention"] / handler_time)
        if s["reply_contention"] > 1e-9:
            reply_errors.append(
                100.0
                * (m["reply_contention"] - s["reply_contention"])
                / s["reply_contention"]
            )

    checks = [
        ShapeCheck(
            "contention-about-one-handler",
            all(0.4 <= t <= 1.6 for t in totals_in_handlers),
            "measured total contention stays within [0.4, 1.6] handler "
            f"times (range {min(totals_in_handlers):.2f}.."
            f"{max(totals_in_handlers):.2f} So); paper: ~1 extra handler",
        ),
        ShapeCheck(
            "reply-component-overpredicted",
            max(reply_errors) > 20.0,
            f"LoPC over-predicts reply queueing at small W by up to "
            f"{max(reply_errors):.0f}% (paper: 76% at W=0) while the "
            "total stays accurate",
        ),
        ShapeCheck(
            "components-shrink-with-work",
            rows[0]["request sim"] > rows[-1]["request sim"],
            "handler queueing components shrink as W grows "
            "(utilisation falls)",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-5.3",
        title=(
            "Components of contention, 32-node all-to-all "
            f"(So={handler_time:g}, C2={handler_cv2:g})"
        ),
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "C2": handler_cv2,
            "cycles": cycles,
            "seed": seed,
        },
        columns=[
            "W",
            "thread model",
            "thread sim",
            "request model",
            "request sim",
            "reply model",
            "reply sim",
            "total model",
            "total sim",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Components follow Figure 4-3: thread = Rw - W, request = "
            "Rq - So, reply = Ry - So; totals add 2 St of wire time to "
            "neither (wire is contention-free).",
        ),
    )
