"""Figure 5-3: components of contention for 32-node all-to-all traffic.

The paper's figure decomposes the contention of one compute/request cycle
(So = 200, C^2 = 0) into its three components -- thread delay
(``Rw - W``), request-handler queueing (``Rq - So``) and reply-handler
queueing (``Ry - So``) -- as measured on the simulator and as predicted
by LoPC, across a work sweep.

Headline readings reproduced as shape checks:

* "To a first approximation the cost of contention is equal to the cost
  of an extra handler" -- total contention stays within [0.5, 1.5] So
  across the sweep;
* LoPC's largest *component* error is the reply-handler queueing at
  ``W = 0`` (the paper reports a 76 % over-prediction there), while the
  total stays within ~6 %.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall

__all__ = ["run", "DEFAULT_WORK_SWEEP"]

DEFAULT_WORK_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


@register("fig-5.3")
def run(
    works: Sequence[float] = DEFAULT_WORK_SWEEP,
    processors: int = 32,
    latency: float = 40.0,
    handler_time: float = 200.0,
    handler_cv2: float = 0.0,
    cycles: int = 300,
    seed: int = 20250611,
) -> ExperimentResult:
    """Run the Figure 5-3 sweep: per-component contention, model vs sim."""
    machine = MachineParams(
        latency=latency,
        handler_time=handler_time,
        processors=processors,
        handler_cv2=handler_cv2,
    )
    model = AllToAllModel(machine)
    config = MachineConfig(
        processors=processors,
        latency=latency,
        handler_time=handler_time,
        handler_cv2=handler_cv2,
        seed=seed,
    )

    rows = []
    totals_in_handlers = []
    reply_errors = []
    for work in works:
        solution = model.solve_work(work)
        measured = run_alltoall(config, work=work, cycles=cycles)
        rows.append(
            {
                "W": work,
                "thread model": solution.compute_contention,
                "thread sim": measured.compute_contention,
                "request model": solution.request_contention,
                "request sim": measured.request_contention,
                "reply model": solution.reply_contention,
                "reply sim": measured.reply_contention,
                "total model": solution.total_contention,
                "total sim": measured.total_contention,
            }
        )
        totals_in_handlers.append(measured.total_contention / handler_time)
        if measured.reply_contention > 1e-9:
            reply_errors.append(
                100.0
                * (solution.reply_contention - measured.reply_contention)
                / measured.reply_contention
            )

    checks = [
        ShapeCheck(
            "contention-about-one-handler",
            all(0.4 <= t <= 1.6 for t in totals_in_handlers),
            "measured total contention stays within [0.4, 1.6] handler "
            f"times (range {min(totals_in_handlers):.2f}.."
            f"{max(totals_in_handlers):.2f} So); paper: ~1 extra handler",
        ),
        ShapeCheck(
            "reply-component-overpredicted",
            max(reply_errors) > 20.0,
            f"LoPC over-predicts reply queueing at small W by up to "
            f"{max(reply_errors):.0f}% (paper: 76% at W=0) while the "
            "total stays accurate",
        ),
        ShapeCheck(
            "components-shrink-with-work",
            rows[0]["request sim"] > rows[-1]["request sim"],
            "handler queueing components shrink as W grows "
            "(utilisation falls)",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-5.3",
        title=(
            "Components of contention, 32-node all-to-all "
            f"(So={handler_time:g}, C2={handler_cv2:g})"
        ),
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "C2": handler_cv2,
            "cycles": cycles,
            "seed": seed,
        },
        columns=[
            "W",
            "thread model",
            "thread sim",
            "request model",
            "request sim",
            "reply model",
            "reply sim",
            "total model",
            "total sim",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Components follow Figure 4-3: thread = Rw - W, request = "
            "Rq - So, reply = Ry - So; totals add 2 St of wire time to "
            "neither (wire is contention-free).",
        ),
    )
