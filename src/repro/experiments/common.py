"""Shared experiment infrastructure: results, registry, table rendering.

An experiment produces tabular data (the paper's figure series / table
rows) plus *shape checks* -- automated assertions about the qualitative
result the paper reports (bounds bracket the measurement, the optimum
falls where Eq. 6.8 says, errors stay within the claimed bands).  The
checks make "did the reproduction hold?" a boolean, not a judgement call.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "format_table",
    "get_experiment",
    "list_experiments",
    "register",
    "run_experiment",
    "to_csv",
]


@dataclass(frozen=True)
class ShapeCheck:
    """One automated qualitative check on an experiment's outcome."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class ExperimentResult:
    """The data behind one regenerated table/figure.

    Attributes
    ----------
    experiment_id:
        Registry key, e.g. ``"fig-5.2"``.
    title:
        Human-readable description (matches the paper's caption).
    parameters:
        The configuration used (machine + workload + sampling).
    columns:
        Column order for rendering.
    rows:
        One mapping per table row / x-axis point.
    checks:
        Shape checks evaluated on the data.
    notes:
        Free-form commentary (substitutions, caveats).
    """

    experiment_id: str
    title: str
    parameters: Mapping[str, object]
    columns: Sequence[str]
    rows: Sequence[Mapping[str, object]]
    checks: Sequence[ShapeCheck] = field(default_factory=tuple)
    notes: Sequence[str] = field(default_factory=tuple)

    @property
    def all_checks_passed(self) -> bool:
        return all(c.passed for c in self.checks)


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.5f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an ASCII table."""
    cols = list(result.columns)
    header = [str(c) for c in cols]
    body = [[_fmt(row.get(c, "")) for c in cols] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(cols))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        "",
        " | ".join(h.ljust(w) for h, w in zip(header, widths)),
        sep,
    ]
    for r in body:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(r, widths)))
    if result.parameters:
        lines.append("")
        lines.append(
            "parameters: "
            + ", ".join(f"{k}={_fmt(v)}" for k, v in result.parameters.items())
        )
    for note in result.notes:
        lines.append(f"note: {note}")
    if result.checks:
        lines.append("")
        for check in result.checks:
            lines.append(str(check))
    return "\n".join(lines)


def to_csv(result: ExperimentResult) -> str:
    """Render the rows as CSV (columns in declared order)."""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(result.columns),
                            extrasaction="ignore")
    writer.writeheader()
    for row in result.rows:
        writer.writerow({k: row.get(k, "") for k in result.columns})
    return buf.getvalue()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(
    experiment_id: str,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator adding a runner to the experiment registry."""

    def deco(func: Callable[..., ExperimentResult]) -> Callable[..., ExperimentResult]:
        if experiment_id in _REGISTRY:
            raise ValueError(f"experiment {experiment_id!r} already registered")
        _REGISTRY[experiment_id] = func
        return func

    return deco


def list_experiments() -> list[str]:
    """Registered experiment ids, sorted."""
    return sorted(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def run_experiment(experiment_id: str, **kwargs: object) -> ExperimentResult:
    """Look up and run an experiment by id."""
    return get_experiment(experiment_id)(**kwargs)
