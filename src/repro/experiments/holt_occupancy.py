"""The Holt et al. occupancy study, recast through LoPC.

The introduction motivates LoPC with Holt et al.'s simulator finding:
"contention in the memory controller dominates the costs of handler
service time and network latency" in distributed shared memory, and
their own queueing model attempt had errors "up to 35% of total
response time".  LoPC's shared-memory variant answers the same
architectural question analytically.

This experiment sweeps controller occupancy (``So``) and network
latency (``St``) for the protocol-processor node model and compares the
marginal cost of doubling each.  Shape checks encode Holt's conclusion:
past moderate utilisation, a cycle of occupancy costs more than a cycle
of latency, and the occupancy penalty is super-linear (queueing) while
the latency penalty is exactly linear (contention-free wires).
"""

from __future__ import annotations

from repro.core.params import MachineParams
from repro.core.shared_memory import SharedMemoryModel
from repro.experiments.common import ExperimentResult, ShapeCheck, register

__all__ = ["run"]


@register("holt-occupancy")
def run(
    work: float = 1000.0,
    processors: int = 32,
    base_latency: float = 40.0,
    base_occupancy: float = 50.0,
    doublings: int = 4,
) -> ExperimentResult:
    """Occupancy-vs-latency sensitivity of shared-memory response time."""
    if doublings < 2:
        raise ValueError(f"doublings must be >= 2, got {doublings!r}")

    def solve(st: float, so: float) -> float:
        machine = MachineParams(latency=st, handler_time=so,
                                processors=processors, handler_cv2=0.0)
        return SharedMemoryModel(machine).solve_work(work).response_time

    base = solve(base_latency, base_occupancy)
    rows = []
    occ_increments = []
    lat_increments = []
    for i in range(doublings + 1):
        factor = 2**i
        r_occ = solve(base_latency, base_occupancy * factor)
        r_lat = solve(base_latency * factor, base_occupancy)
        rows.append(
            {
                "factor": factor,
                "occupancy So": base_occupancy * factor,
                "R (occupancy scaled)": r_occ,
                "latency St": base_latency * factor,
                "R (latency scaled)": r_lat,
            }
        )
        if i > 0:
            prev_occ = rows[-2]["R (occupancy scaled)"]
            prev_lat = rows[-2]["R (latency scaled)"]
            occ_increments.append(r_occ - prev_occ)
            lat_increments.append(r_lat - prev_lat)

    # Marginal cost per added cycle of each resource at the last doubling.
    added_occ = base_occupancy * 2 ** (doublings - 1)
    added_lat = base_latency * 2 ** (doublings - 1)
    occ_per_cycle = occ_increments[-1] / added_occ
    lat_per_cycle = lat_increments[-1] / (2 * added_lat)  # 2 wire trips

    checks = [
        ShapeCheck(
            "occupancy-dominates",
            occ_per_cycle > lat_per_cycle,
            f"at the last doubling, +1 cycle of occupancy costs "
            f"{occ_per_cycle:.2f} cycles of response vs "
            f"{lat_per_cycle:.2f} for +1 cycle of (one-way) latency "
            "(Holt et al.'s conclusion)",
        ),
        ShapeCheck(
            "occupancy-penalty-superlinear",
            occ_increments[-1] / occ_increments[0] > 2.0**(doublings - 1),
            "successive occupancy doublings cost increasingly more "
            f"(increments {', '.join(f'{x:.0f}' for x in occ_increments)})",
        ),
        ShapeCheck(
            "latency-penalty-is-just-wire-time",
            all(
                abs(
                    lat_increments[i]
                    / (2 * base_latency * 2**i)  # added round-trip wire
                    - 1.0
                )
                < 0.02
                for i in range(len(lat_increments))
            ),
            "each latency increment equals the added round-trip wire "
            "time within 2% (contention-free wires add no queueing)",
        ),
        ShapeCheck(
            "model-is-cheap",
            True,
            f"whole study = {2 * (doublings + 1)} AMVA solves "
            "(Holt et al. needed a simulator campaign; their queueing "
            "model attempt erred up to 35%)",
        ),
    ]
    return ExperimentResult(
        experiment_id="holt-occupancy",
        title="Occupancy vs latency in shared-memory nodes (Holt et al.)",
        parameters={
            "W": work,
            "P": processors,
            "base St": base_latency,
            "base So": base_occupancy,
            "baseline R": base,
        },
        columns=[
            "factor",
            "occupancy So",
            "R (occupancy scaled)",
            "latency St",
            "R (latency scaled)",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Protocol-processor node model (Rw = W): handlers never "
            "interrupt the compute thread but queue at the controller.",
        ),
    )
