"""The paper's quantitative accuracy claims, measured on this reproduction.

Chapter 5.3 and Chapter 6 make specific numeric claims about model error
against the (simulated) machine.  This experiment reruns each claim's
configuration and reports paper-claimed vs reproduced values side by
side; EXPERIMENTS.md is generated from this table.

Claims covered:

1. LoPC over-estimates total runtime by <= ~6 % (worst at ``W = 0``),
   error asymptotically -> 0 as ``W`` grows.
2. LoPC's worst-case *contention* over-estimate is ~17 % at ``W = 0``.
3. Most of that error is reply-handler queueing (paper: +76 % at W=0).
4. The contention-free model under-predicts total runtime by up to 37 %
   at ``W = 0``...
5. ...and still ~13 % at ``W = 1024`` (its absolute error stays ~ one
   handler time as the cycle grows).
6. Workpile: LoPC throughput is conservative by <= ~3 %.
"""

from __future__ import annotations

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.logp import LogPModel
from repro.core.params import MachineParams
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sim.machine import MachineConfig
from repro.validation.compare import compare_alltoall, signed_error_pct
from repro.workloads.alltoall import run_alltoall
from repro.workloads.workpile import run_workpile

__all__ = ["run"]


@register("claims")
def run(
    processors: int = 32,
    latency: float = 40.0,
    handler_time: float = 200.0,
    cycles: int = 400,
    seed: int = 424242,
) -> ExperimentResult:
    """Measure every numbered accuracy claim of the evaluation chapters."""
    machine = MachineParams(
        latency=latency,
        handler_time=handler_time,
        processors=processors,
        handler_cv2=0.0,
    )
    model = AllToAllModel(machine)
    logp = LogPModel(machine)
    config = MachineConfig(
        processors=processors,
        latency=latency,
        handler_time=handler_time,
        handler_cv2=0.0,
        seed=seed,
    )

    meas0 = run_alltoall(config, work=0.0, cycles=cycles)
    meas1024 = run_alltoall(config, work=1024.0, cycles=cycles)
    rep0 = compare_alltoall(model.solve_work(0.0), meas0)
    rep1024 = compare_alltoall(model.solve_work(1024.0), meas1024)
    cfree0 = signed_error_pct(logp.cycle_time(0.0), meas0.response_time)
    cfree1024 = signed_error_pct(
        logp.cycle_time(1024.0), meas1024.response_time
    )

    # Workpile claim (Figure 6-2 parameters).
    wp_machine = MachineParams(
        latency=10.0, handler_time=131.0, processors=processors,
        handler_cv2=0.0,
    )
    wp_model = ClientServerModel(wp_machine, work=250.0)
    wp_config = MachineConfig(
        processors=processors, latency=10.0, handler_time=131.0,
        handler_cv2=0.0, seed=seed,
    )
    wp_errors = []
    for ps in (4, 8, 12, 16, 24):
        wp_meas = run_workpile(wp_config, servers=ps, work=250.0,
                               chunks=cycles)
        wp_errors.append(
            signed_error_pct(wp_model.solve(ps).throughput,
                             wp_meas.throughput)
        )
    worst_wp = min(wp_errors)  # most conservative (most negative)

    rows = [
        {
            "claim": "LoPC runtime error at W=0 (worst case)",
            "paper": "<= ~6% (pessimistic)",
            "reproduced": f"{rep0.response_error:+.2f}%",
            "holds": 0.0 <= rep0.response_error <= 8.0,
        },
        {
            "claim": "LoPC runtime error at W=1024 (asymptotic)",
            "paper": "-> 0 as W grows",
            "reproduced": f"{rep1024.response_error:+.2f}%",
            "holds": abs(rep1024.response_error)
            < abs(rep0.response_error) / 2,
        },
        {
            "claim": "LoPC contention over-estimate at W=0",
            "paper": "~17%",
            "reproduced": f"{rep0.total_contention_error:+.2f}%",
            "holds": 0.0 <= rep0.total_contention_error <= 30.0,
        },
        {
            "claim": "Reply-handler contention over-estimate at W=0",
            "paper": "~76%",
            "reproduced": (
                f"{rep0.reply_contention_error:+.2f}%"
                if rep0.reply_contention_error is not None
                else "n/a"
            ),
            "holds": rep0.reply_contention_error is not None
            and rep0.reply_contention_error > 15.0,
        },
        {
            "claim": "Contention-free model error at W=0",
            "paper": "~-37%",
            "reproduced": f"{cfree0:+.2f}%",
            "holds": -45.0 <= cfree0 <= -25.0,
        },
        {
            "claim": "Contention-free model error at W=1024",
            "paper": "~-13%",
            "reproduced": f"{cfree1024:+.2f}%",
            "holds": -20.0 <= cfree1024 <= -6.0,
        },
        {
            "claim": "Workpile LoPC throughput conservatism",
            "paper": "<= 3% conservative",
            "reproduced": f"worst {worst_wp:+.2f}%",
            "holds": -5.0 <= worst_wp <= 0.5,
        },
    ]
    checks = [
        ShapeCheck(str(r["claim"]), bool(r["holds"]), f"paper {r['paper']}, "
                   f"reproduced {r['reproduced']}")
        for r in rows
    ]
    return ExperimentResult(
        experiment_id="claims",
        title="Accuracy claims of the evaluation, reproduced",
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "cycles": cycles,
            "seed": seed,
        },
        columns=["claim", "paper", "reproduced", "holds"],
        rows=rows,
        checks=checks,
        notes=(
            "The simulated machine stands in for the paper's simulator + "
            "Alewife; exact percentages depend on the unstated St/W "
            "constants, so claims are checked as bands around the paper's "
            "figures.",
        ),
    )
