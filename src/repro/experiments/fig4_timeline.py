"""Figure 4-2: the timeline of a (contention-free) blocking request.

The paper's Figure 4-2 is a schematic: thread works ``W``, request
crosses the wire (``St``), request handler runs (``So``), reply crosses
back (``St``), reply handler runs (``So``), thread resumes.  We
regenerate it *from an actual traced simulation*: two nodes, one
blocking request, zero background traffic -- and machine-check that the
six measured instants land exactly on the schematic's arithmetic.

This doubles as the end-to-end correctness proof of the simulator's
timing model: with no contention, every component must be exact, not
approximate.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sim.machine import Machine, MachineConfig
from repro.sim.stats import CycleRecord
from repro.sim.threads import Compute, Send, Wait
from repro.sim.trace import TraceRecorder

__all__ = ["run"]


@register("fig-4.2")
def run(
    work: float = 150.0,
    latency: float = 40.0,
    handler_time: float = 200.0,
) -> ExperimentResult:
    """Trace one contention-free blocking request and verify Figure 4-2."""
    config = MachineConfig(processors=2, latency=latency,
                           handler_time=handler_time, handler_cv2=0.0,
                           seed=0)
    machine = Machine(config)
    recorder = TraceRecorder().attach(machine)
    record = CycleRecord(node=0, start=0.0)

    def reply_handler(node, msg):
        record.reply_arrived = msg.arrived_at
        record.reply_done = msg.completed_at
        node.memory["done"] = True
        node.notify()

    def request_handler(node, msg):
        record.request_arrived = msg.arrived_at
        record.request_done = msg.completed_at
        node.send(msg.source, reply_handler, kind="reply")

    def body(node):
        yield Compute(work)
        record.send = node.sim.now
        node.memory["done"] = False
        yield Send(1, request_handler, kind="request")
        yield Wait(lambda n: n.memory["done"], label="spin-on-counter")

    machine.install_threads([body, None])
    machine.run_to_completion()

    # The schematic's instants.
    expected = {
        "thread works W": (0.0, work),
        "request in wire (St)": (work, work + latency),
        "request handler (So)": (work + latency,
                                 work + latency + handler_time),
        "reply in wire (St)": (work + latency + handler_time,
                               work + 2 * latency + handler_time),
        "reply handler (So)": (work + 2 * latency + handler_time,
                               work + 2 * latency + 2 * handler_time),
    }
    measured = {
        "thread works W": (record.start, record.send),
        "request in wire (St)": (record.send, record.request_arrived),
        "request handler (So)": (record.request_arrived,
                                 record.request_done),
        "reply in wire (St)": (record.request_done, record.reply_arrived),
        "reply handler (So)": (record.reply_arrived, record.reply_done),
    }
    rows = []
    exact = True
    for stage in expected:
        e0, e1 = expected[stage]
        m0, m1 = measured[stage]
        stage_ok = abs(e0 - m0) < 1e-9 and abs(e1 - m1) < 1e-9
        exact &= stage_ok
        rows.append(
            {
                "stage": stage,
                "starts": m0,
                "ends": m1,
                "duration": m1 - m0,
                "matches schematic": stage_ok,
            }
        )

    trace_kinds = [e.kind for e in recorder.filter(node=0)]
    checks = [
        ShapeCheck(
            "timeline-exact",
            exact,
            "all five stages land exactly on W/St/So arithmetic "
            f"(total R = {record.response_time:g} = "
            f"{work:g}+2*{latency:g}+2*{handler_time:g})",
        ),
        ShapeCheck(
            "thread-spins-until-reply-handler-finishes",
            trace_kinds[-2:] == ["handler-completed", "thread-finished"]
            and "thread-blocked" in trace_kinds,
            "the trace shows the Figure 4-2 control flow: block, reply "
            "handler, resume",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-4.2",
        title="Timeline of a contention-free blocking request",
        parameters={"W": work, "St": latency, "So": handler_time},
        columns=["stage", "starts", "ends", "duration", "matches schematic"],
        rows=rows,
        checks=checks,
        notes=(
            "Regenerated from a traced 2-node simulation, not from the "
            "model: with no contention the simulator must be exact.",
        ),
    )
