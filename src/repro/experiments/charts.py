"""Terminal-friendly charts for the regenerated figures.

The paper's evaluation artifacts are *figures*; this module renders an
:class:`~repro.experiments.common.ExperimentResult`'s series as an
ASCII line/scatter chart so ``lopc-repro run fig-5.2 --chart`` shows
the bounds/model/simulator curves the way the paper's Figure 5-2 does,
without any plotting dependency.

One glyph per series, plotted over a shared y-range; collisions render
the later series' glyph.  The x-axis uses the row order of the
experiment (the paper's figures are swept in that order), with labels
from the chosen x column.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.experiments.common import ExperimentResult

__all__ = ["ascii_chart", "chart_experiment"]

_GLYPHS = "o+x*#@%&"


def ascii_chart(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 20,
) -> str:
    """Render named series as an ASCII chart.

    Parameters
    ----------
    x_labels:
        One label per data point (shown on the bottom axis, thinned to
        fit).
    series:
        Mapping of series name to y values; every series must have
        ``len(x_labels)`` points.  NaNs are skipped.
    width, height:
        Plot area size in characters (excluding axes).
    """
    if not series:
        raise ValueError("need at least one series")
    n = len(x_labels)
    if n < 2:
        raise ValueError("need at least two data points")
    for name, ys in series.items():
        if len(ys) != n:
            raise ValueError(
                f"series {name!r} has {len(ys)} points for {n} x labels"
            )
    if width < 10 or height < 4:
        raise ValueError("chart too small to render")

    finite = [
        y
        for ys in series.values()
        for y in ys
        if isinstance(y, (int, float)) and math.isfinite(y)
    ]
    if not finite:
        raise ValueError("no finite data to plot")
    lo, hi = min(finite), max(finite)
    if hi == lo:
        hi = lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for i, y in enumerate(ys):
            if not (isinstance(y, (int, float)) and math.isfinite(y)):
                continue
            col = round(i * (width - 1) / (n - 1))
            row = round((hi - y) / (hi - lo) * (height - 1))
            grid[row][col] = glyph

    y_width = max(len(f"{v:g}") for v in (lo, hi)) + 1
    lines = []
    for r, row in enumerate(grid):
        if r == 0:
            label = f"{hi:g}".rjust(y_width)
        elif r == height - 1:
            label = f"{lo:g}".rjust(y_width)
        else:
            label = " " * y_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * y_width + " +" + "-" * width)

    # Thinned x labels.
    first, last = str(x_labels[0]), str(x_labels[-1])
    gap = width - len(first) - len(last)
    if gap >= 1:
        lines.append(" " * (y_width + 2) + first + " " * gap + last)

    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append("")
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def chart_experiment(
    result: ExperimentResult,
    x_column: str | None = None,
    series_columns: Sequence[str] | None = None,
    width: int = 72,
    height: int = 20,
) -> str:
    """Chart an experiment's numeric columns against its first column.

    ``x_column`` defaults to the experiment's first column;
    ``series_columns`` defaults to every other column whose values are
    all numeric.
    """
    columns = list(result.columns)
    if x_column is None:
        x_column = columns[0]
    if x_column not in columns:
        raise ValueError(f"unknown x column {x_column!r}")
    if series_columns is None:
        series_columns = [
            c
            for c in columns
            if c != x_column
            and all(
                isinstance(row.get(c), (int, float)) for row in result.rows
            )
        ]
    if not series_columns:
        raise ValueError("no numeric series columns to chart")
    x_labels = [row.get(x_column) for row in result.rows]
    series = {
        c: [float(row.get(c, math.nan)) for row in result.rows]
        for c in series_columns
    }
    header = f"{result.experiment_id}: {result.title}"
    return header + "\n" + ascii_chart(x_labels, series, width, height)
