"""Figure 6-2: workpile throughput vs number of servers on 32 nodes.

The paper's figure sweeps the client/server split of a 32-node machine
running a workpile with 131-cycle handlers, plotting simulated throughput
against the LoPC prediction, with the closed-form optimum of Eq. 6.8
marked (black squares) and the optimistic LogP-style bounds (dotted):
``X <= Ps / So`` (server saturation) and ``X <= Pc / (W + 2 St + 2 So)``
(contention-free clients).

Shape checks: the LoPC curve is conservative by <= ~3-4 %; the Eq. 6.8
optimum falls within one server of both the model-curve argmax and the
simulated argmax; the LogP bounds are optimistic everywhere and only
tight far from the optimum ("asymptotically correct, but only in the
range where the work-pile algorithm achieves poor parallelism").

The paper does not state ``W`` or ``St`` for the figure; we use
``W = 250``, ``St = 10`` (see EXPERIMENTS.md) -- the optimum lands
mid-range as in the paper's plot.
"""

from __future__ import annotations

from typing import Sequence

from repro.api import Study, scenario
from repro.core.client_server import ClientServerModel
from repro.core.params import MachineParams
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sweep import SweepSpec
from repro.sweep.runner import CacheLike

__all__ = ["run", "sweep_specs"]


def _studies(
    servers: Sequence[int],
    processors: int,
    latency: float,
    handler_time: float,
    handler_cv2: float,
    work: float,
    chunks: int,
    seed: int,
    work_cv2: float,
    **run_options: object,
) -> tuple[Study, Study]:
    """One workpile scenario, two studies -- the single construction point."""
    sc = scenario("workpile", P=processors, St=latency, So=handler_time,
                  C2=handler_cv2, W=work)
    axis = tuple(int(ps) for ps in servers)
    study = sc.study(Ps=axis, **run_options)
    sim_study = sc.with_params(chunks=chunks, seed=seed,
                               work_cv2=work_cv2).study(Ps=axis,
                                                        **run_options)
    return study, sim_study


def sweep_specs(
    servers: Sequence[int],
    processors: int,
    latency: float,
    handler_time: float,
    handler_cv2: float,
    work: float,
    chunks: int,
    seed: int,
    work_cv2: float,
) -> tuple[SweepSpec, SweepSpec, SweepSpec]:
    """The figure's three sweeps over the server-count axis."""
    study, sim_study = _studies(servers, processors, latency, handler_time,
                                handler_cv2, work, chunks, seed, work_cv2)
    return (
        study.spec("analytic", name="fig-6.2/model"),
        study.spec("bounds", name="fig-6.2/bounds"),
        sim_study.spec("sim", name="fig-6.2/sim"),
    )


@register("fig-6.2")
def run(
    processors: int = 32,
    latency: float = 10.0,
    handler_time: float = 131.0,
    handler_cv2: float = 0.0,
    work: float = 250.0,
    servers: Sequence[int] | None = None,
    chunks: int = 250,
    seed: int = 19970615,
    work_cv2: float = 0.0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> ExperimentResult:
    """Run the Figure 6-2 sweep: throughput vs Ps, model vs simulation."""
    if servers is None:
        servers = range(1, processors)
    servers = [int(ps) for ps in servers]
    machine = MachineParams(
        latency=latency,
        handler_time=handler_time,
        processors=processors,
        handler_cv2=handler_cv2,
    )
    model = ClientServerModel(machine, work=work)
    study, sim_study = _studies(servers, processors, latency, handler_time,
                                handler_cv2, work, chunks, seed, work_cv2,
                                jobs=jobs, cache=cache)
    predicted = study.analytic(name="fig-6.2/model")
    bounds = study.bounds(name="fig-6.2/bounds")
    sim = sim_study.simulate(name="fig-6.2/sim")

    rows = []
    errors = []
    for ps, m, b, s in zip(servers, predicted, bounds, sim):
        err = 100.0 * (m["X"] - s["X"]) / s["X"]
        errors.append(err)
        rows.append(
            {
                "Ps": ps,
                "simulator X": s["X"],
                "LoPC X": m["X"],
                "err %": err,
                "server bound": b["server_bound"],
                "client bound": b["client_bound"],
                "sim Qs": s["Qs"],
            }
        )

    optimum_exact = model.optimal_servers_exact()
    optimum_int = model.optimal_servers()
    sim_argmax = max(rows, key=lambda r: r["simulator X"])["Ps"]
    model_argmax = max(rows, key=lambda r: r["LoPC X"])["Ps"]
    bounds_optimistic = all(
        min(r["server bound"], r["client bound"]) >= r["simulator X"] - 1e-9
        for r in rows
    )
    opt_row = next(r for r in rows if r["Ps"] == optimum_int)

    checks = [
        ShapeCheck(
            "lopc-conservative-about-3pct",
            all(-5.0 <= e <= 1.0 for e in errors),
            f"LoPC throughput errors in [{min(errors):.2f}%, "
            f"{max(errors):.2f}%] (paper: conservative by <= 3%)",
        ),
        ShapeCheck(
            "eq6.8-optimum-matches-curve",
            abs(optimum_int - model_argmax) <= 1
            and abs(optimum_int - sim_argmax) <= 2,
            f"Eq. 6.8 gives Ps*={optimum_exact:.2f} (rounded {optimum_int}); "
            f"model argmax {model_argmax}, simulated argmax {sim_argmax}",
        ),
        ShapeCheck(
            "queue-one-at-optimum",
            0.6 <= opt_row["sim Qs"] <= 1.6,
            f"measured mean queue per server at the optimum is "
            f"{opt_row['sim Qs']:.2f} (theory: 1)",
        ),
        ShapeCheck(
            "logp-bounds-optimistic",
            bounds_optimistic,
            "min(LogP server bound, client bound) >= simulated X "
            "everywhere (dotted lines of the paper's figure)",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-6.2",
        title=(
            f"Workpile throughput on {processors} nodes "
            f"(So={handler_time:g})"
        ),
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "C2": handler_cv2,
            "W": work,
            "chunks": chunks,
            "seed": seed,
        },
        columns=[
            "Ps",
            "simulator X",
            "LoPC X",
            "err %",
            "server bound",
            "client bound",
            "sim Qs",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "W and St are not stated in the paper for this figure; "
            "W=250, St=10 chosen so the optimum lands mid-range "
            "(EXPERIMENTS.md).",
            f"Eq. 6.8 continuous optimum Ps* = {optimum_exact:.3f}.",
        ),
    )
