"""Table 3.1: architectural parameters of the LoPC model vs LogP.

A documentation table, but regenerated from code
(:func:`repro.core.params.architectural_parameter_table`) so the mapping
the library implements is provably the mapping the paper printed, and the
round trip LogP -> LoPC -> LogP is checked.
"""

from __future__ import annotations

from repro.core.params import MachineParams, architectural_parameter_table
from repro.experiments.common import ExperimentResult, ShapeCheck, register

__all__ = ["run"]


@register("table-3.1")
def run() -> ExperimentResult:
    """Regenerate Table 3.1 and verify the LogP <-> LoPC round trip."""
    rows = [
        {"LoPC": lopc, "LogP": logp, "Description": desc}
        for lopc, logp, desc in architectural_parameter_table()
    ]

    # Round-trip check on a concrete parameter set (CM-5-flavoured LogP).
    machine = MachineParams.from_logp(L=6.0, o=2.2, P=64, g=4.0)
    logp_view = machine.to_logp()
    round_trip_ok = (
        machine.latency == 6.0
        and machine.handler_time == 2.2
        and machine.processors == 64
        and logp_view == {"L": 6.0, "o": 2.2, "g": 4.0, "P": 64.0}
    )
    checks = [
        ShapeCheck(
            name="logp-round-trip",
            passed=round_trip_ok,
            detail=f"from_logp(L=6, o=2.2, P=64, g=4).to_logp() == {logp_view}",
        ),
        ShapeCheck(
            name="table-shape",
            passed=len(rows) == 5 and rows[0]["LoPC"] == "St",
            detail="five parameter rows, St/So/g/P/C2 as in the paper",
        ),
    ]
    return ExperimentResult(
        experiment_id="table-3.1",
        title="Architectural parameters of the LoPC model (vs LogP)",
        parameters={},
        columns=["LoPC", "LogP", "Description"],
        rows=rows,
        checks=checks,
        notes=(
            "LoPC takes St=L and So=o directly from LogP; g is dropped "
            "(balanced network interfaces) and C2 is LoPC's optional "
            "handler-variability parameter.",
        ),
    )
