"""Experiment runners: one per table/figure in the paper's evaluation.

Each runner returns an :class:`~repro.experiments.common.ExperimentResult`
holding the rows/series the paper reports, plus automated shape checks
(who wins, by what factor, where the optimum falls).  The CLI
(:mod:`repro.cli`) renders them as ASCII tables and CSV.

Registry
--------
``table-3.1``  Architectural parameter mapping (LoPC vs LogP).
``fig-5.1``    Contention fraction vs handler C^2 (model).
``fig-5.2``    All-to-all response time vs W: bounds + LoPC + simulator.
``fig-5.3``    Contention components vs W: LoPC vs simulator.
``fig-6.2``    Workpile throughput vs server count: LoPC + simulator +
               Eq. 6.8 optimum + LogP bounds.
``claims``     The paper's accuracy claims, measured on this
               reproduction.
``cm5-drift``  The introduction's CM-5 story: schedule drift under
               variance and barrier resynchronisation.
``fig-4.2``    The blocking-request timeline, regenerated from a traced
               simulation (exactness proof of the timing model).
``holt-occupancy``  The Holt et al. occupancy-vs-latency study via the
               shared-memory variant.
"""

from repro.experiments.common import (
    ExperimentResult,
    ShapeCheck,
    format_table,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments import (
    claims,
    drift,
    fig4_timeline,
    fig5_1,
    fig5_2,
    fig5_3,
    fig6_2,
    holt_occupancy,
    table3_1,
)

__all__ = [
    "ExperimentResult",
    "ShapeCheck",
    "claims",
    "drift",
    "fig4_timeline",
    "fig5_1",
    "fig5_2",
    "fig5_3",
    "fig6_2",
    "format_table",
    "get_experiment",
    "holt_occupancy",
    "list_experiments",
    "run_experiment",
    "table3_1",
]
