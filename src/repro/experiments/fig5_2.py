"""Figure 5-2: all-to-all response time vs work, with Eq. 5.12 bounds.

The paper's figure shows, for a 32-node machine with 200-cycle
deterministic handlers (``C^2 = 0``), four series over a work sweep:

* the contention-free lower bound ``W + 2 St + 2 So`` (= naive LogP);
* the rule-of-thumb upper bound ``W + 2 St + 3.46 So``;
* the numerical solution of the LoPC model;
* the measured response time from the event-driven simulator.

Reproduced shape claims (checked automatically): the bounds bracket both
the model and the measurement; LoPC is pessimistic by at most ~6-7 %;
the contention-free model *under*-predicts badly at small ``W`` (~37 %
at ``W = 0``) and its error stays ~ one handler time even at large ``W``.

``St`` is not stated in the paper; we use the Alewife-like ``St = 40``.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.alltoall import AllToAllModel
from repro.core.params import MachineParams
from repro.core.rule_of_thumb import contention_bounds
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sim.machine import MachineConfig
from repro.workloads.alltoall import run_alltoall

__all__ = ["run", "DEFAULT_WORK_SWEEP"]

DEFAULT_WORK_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


@register("fig-5.2")
def run(
    works: Sequence[float] = DEFAULT_WORK_SWEEP,
    processors: int = 32,
    latency: float = 40.0,
    handler_time: float = 200.0,
    handler_cv2: float = 0.0,
    cycles: int = 300,
    seed: int = 20250611,
) -> ExperimentResult:
    """Run the Figure 5-2 sweep: bounds + model + simulation."""
    machine = MachineParams(
        latency=latency,
        handler_time=handler_time,
        processors=processors,
        handler_cv2=handler_cv2,
    )
    model = AllToAllModel(machine)
    config = MachineConfig(
        processors=processors,
        latency=latency,
        handler_time=handler_time,
        handler_cv2=handler_cv2,
        seed=seed,
    )

    rows = []
    lopc_errors = []
    cfree_errors = []
    bracket_ok = True
    for work in works:
        lower, upper = contention_bounds(machine, work)
        solution = model.solve_work(work)
        measured = run_alltoall(config, work=work, cycles=cycles)
        lopc_err = 100.0 * (solution.response_time - measured.response_time) / (
            measured.response_time
        )
        cfree_err = 100.0 * (lower - measured.response_time) / measured.response_time
        lopc_errors.append(lopc_err)
        cfree_errors.append(cfree_err)
        bracket_ok &= lower <= solution.response_time <= upper + 1e-9
        rows.append(
            {
                "W": work,
                "lower bound (LogP)": lower,
                "LoPC": solution.response_time,
                "upper bound": upper,
                "simulator": measured.response_time,
                "LoPC err %": lopc_err,
                "cfree err %": cfree_err,
            }
        )

    checks = [
        ShapeCheck(
            "bounds-bracket-model",
            bracket_ok,
            "W+2St+2So <= R* <= W+2St+3.46So for every W (Eq. 5.12)",
        ),
        ShapeCheck(
            "lopc-within-about-6pct",
            max(abs(e) for e in lopc_errors) <= 8.0,
            f"max |LoPC error| = {max(abs(e) for e in lopc_errors):.2f}% "
            "(paper: <= ~6%)",
        ),
        ShapeCheck(
            "lopc-pessimistic",
            all(e >= -2.0 for e in lopc_errors),
            "LoPC errs on the pessimistic side (Bard's approximation)",
        ),
        ShapeCheck(
            "contention-free-underpredicts",
            min(cfree_errors) <= -25.0 and all(e <= 0.5 for e in cfree_errors),
            f"contention-free model underpredicts everywhere; worst "
            f"{min(cfree_errors):.1f}% (paper: -37% at W=0)",
        ),
        ShapeCheck(
            "contention-free-error-persists",
            cfree_errors[-1] <= -5.0,
            f"at W={works[-1]} the contention-free error is still "
            f"{cfree_errors[-1]:.1f}% (paper: ~-13% at W=1024)",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-5.2",
        title=(
            "Response time of all-to-all communication "
            f"(So={handler_time:g}, C2={handler_cv2:g})"
        ),
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "C2": handler_cv2,
            "cycles": cycles,
            "seed": seed,
        },
        columns=[
            "W",
            "lower bound (LogP)",
            "LoPC",
            "upper bound",
            "simulator",
            "LoPC err %",
            "cfree err %",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "St not stated in the paper; Alewife-like St=40 used "
            "(EXPERIMENTS.md).  The simulator stands in for the paper's "
            "simulator + Alewife measurements.",
        ),
    )
