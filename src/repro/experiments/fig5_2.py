"""Figure 5-2: all-to-all response time vs work, with Eq. 5.12 bounds.

The paper's figure shows, for a 32-node machine with 200-cycle
deterministic handlers (``C^2 = 0``), four series over a work sweep:

* the contention-free lower bound ``W + 2 St + 2 So`` (= naive LogP);
* the rule-of-thumb upper bound ``W + 2 St + 3.46 So``;
* the numerical solution of the LoPC model;
* the measured response time from the event-driven simulator.

Reproduced shape claims (checked automatically): the bounds bracket both
the model and the measurement; LoPC is pessimistic by at most ~6-7 %;
the contention-free model *under*-predicts badly at small ``W`` (~37 %
at ``W = 0``) and its error stays ~ one handler time even at large ``W``.

``St`` is not stated in the paper; we use the Alewife-like ``St = 40``.
"""

from __future__ import annotations

from typing import Sequence

from repro.api import Study, scenario
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sweep import SweepSpec
from repro.sweep.runner import CacheLike

__all__ = ["run", "DEFAULT_WORK_SWEEP", "sweep_specs"]

DEFAULT_WORK_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)


def _studies(
    works: Sequence[float],
    processors: int,
    latency: float,
    handler_time: float,
    handler_cv2: float,
    cycles: int,
    seed: int,
    **run_options: object,
) -> tuple[Study, Study]:
    """One all-to-all scenario, two studies: analytic/bounds and sim.

    The single construction point for the figure, so the exported
    :func:`sweep_specs` view and the executed :func:`run` sweep cannot
    drift apart.
    """
    sc = scenario("alltoall", P=processors, St=latency, So=handler_time,
                  C2=handler_cv2)
    study = sc.study(W=tuple(works), **run_options)
    sim_study = sc.with_params(cycles=cycles, seed=seed).study(
        W=tuple(works), **run_options
    )
    return study, sim_study


def sweep_specs(
    works: Sequence[float],
    processors: int,
    latency: float,
    handler_time: float,
    handler_cv2: float,
    cycles: int,
    seed: int,
) -> tuple[SweepSpec, SweepSpec, SweepSpec]:
    """The figure's three sweeps: Eq. 5.12 bounds, LoPC model, simulator.

    Compiled from one scenario rather than one fused per-point
    evaluator, so the simulator grid's cache records are shared with
    Figure 5-3, which sweeps the identical machine.
    """
    study, sim_study = _studies(works, processors, latency, handler_time,
                                handler_cv2, cycles, seed)
    return (
        study.spec("bounds", name="fig-5.2/bounds"),
        study.spec("analytic", name="fig-5.2/model"),
        sim_study.spec("sim", name="fig-5.2/sim"),
    )


@register("fig-5.2")
def run(
    works: Sequence[float] = DEFAULT_WORK_SWEEP,
    processors: int = 32,
    latency: float = 40.0,
    handler_time: float = 200.0,
    handler_cv2: float = 0.0,
    cycles: int = 300,
    seed: int = 20250611,
    jobs: int = 1,
    cache: CacheLike = None,
) -> ExperimentResult:
    """Run the Figure 5-2 sweep: bounds + model + simulation."""
    study, sim_study = _studies(works, processors, latency, handler_time,
                                handler_cv2, cycles, seed,
                                jobs=jobs, cache=cache)
    bounds = study.bounds(name="fig-5.2/bounds")
    model = study.analytic(name="fig-5.2/model")
    sim = sim_study.simulate(name="fig-5.2/sim")

    rows = []
    lopc_errors = []
    cfree_errors = []
    bracket_ok = True
    for work, b, m, s in zip(works, bounds, model, sim):
        lower, upper = b["lower"], b["upper"]
        lopc_r, sim_r = m["R"], s["R"]
        lopc_err = 100.0 * (lopc_r - sim_r) / sim_r
        cfree_err = 100.0 * (lower - sim_r) / sim_r
        lopc_errors.append(lopc_err)
        cfree_errors.append(cfree_err)
        bracket_ok &= lower <= lopc_r <= upper + 1e-9
        rows.append(
            {
                "W": work,
                "lower bound (LogP)": lower,
                "LoPC": lopc_r,
                "upper bound": upper,
                "simulator": sim_r,
                "LoPC err %": lopc_err,
                "cfree err %": cfree_err,
            }
        )

    checks = [
        ShapeCheck(
            "bounds-bracket-model",
            bracket_ok,
            "W+2St+2So <= R* <= W+2St+3.46So for every W (Eq. 5.12)",
        ),
        ShapeCheck(
            "lopc-within-about-6pct",
            max(abs(e) for e in lopc_errors) <= 8.0,
            f"max |LoPC error| = {max(abs(e) for e in lopc_errors):.2f}% "
            "(paper: <= ~6%)",
        ),
        ShapeCheck(
            "lopc-pessimistic",
            all(e >= -2.0 for e in lopc_errors),
            "LoPC errs on the pessimistic side (Bard's approximation)",
        ),
        ShapeCheck(
            "contention-free-underpredicts",
            min(cfree_errors) <= -25.0 and all(e <= 0.5 for e in cfree_errors),
            f"contention-free model underpredicts everywhere; worst "
            f"{min(cfree_errors):.1f}% (paper: -37% at W=0)",
        ),
        ShapeCheck(
            "contention-free-error-persists",
            cfree_errors[-1] <= -5.0,
            f"at W={works[-1]} the contention-free error is still "
            f"{cfree_errors[-1]:.1f}% (paper: ~-13% at W=1024)",
        ),
    ]
    return ExperimentResult(
        experiment_id="fig-5.2",
        title=(
            "Response time of all-to-all communication "
            f"(So={handler_time:g}, C2={handler_cv2:g})"
        ),
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "C2": handler_cv2,
            "cycles": cycles,
            "seed": seed,
        },
        columns=[
            "W",
            "lower bound (LogP)",
            "LoPC",
            "upper bound",
            "simulator",
            "LoPC err %",
            "cfree err %",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "St not stated in the paper; Alewife-like St=40 used "
            "(EXPERIMENTS.md).  The simulator stands in for the paper's "
            "simulator + Alewife measurements.",
        ),
    )
