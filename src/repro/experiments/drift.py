"""The introduction's CM-5 narrative, as a quantitative experiment.

Not a numbered figure, but the paper's motivating evidence (Chapter 1):

* Brewer & Kuszmaul: carefully interleaved all-to-all schedules on the
  CM-5 "quickly became virtually random, largely due to small variances
  in the interconnect";
* the original LogP paper: its all-to-all estimate holds only if "extra
  barriers are inserted to resynchronize the communication pattern",
  and such low-latency barriers are expensive hardware few machines own.

This experiment runs the phased permutation all-to-all in four
configurations (deterministic / stochastic handlers x with / without
barriers) and reports where each lands between the LogP (contention
free) and LoPC (fully random) predictions.
"""

from __future__ import annotations

from repro.core.alltoall import AllToAllModel
from repro.core.logp import LogPModel
from repro.core.params import MachineParams
from repro.experiments.common import ExperimentResult, ShapeCheck, register
from repro.sim.machine import MachineConfig
from repro.workloads.barrier import run_barrier_alltoall

__all__ = ["run"]


@register("cm5-drift")
def run(
    processors: int = 16,
    latency: float = 40.0,
    handler_time: float = 200.0,
    work: float = 400.0,
    phases: int = 150,
    seed: int = 5,
) -> ExperimentResult:
    """Four-way drift/resynchronisation comparison."""
    machine0 = MachineParams(latency=latency, handler_time=handler_time,
                             processors=processors, handler_cv2=0.0)
    machine1 = machine0.with_cv2(1.0)
    logp = LogPModel(machine0).cycle_time(work)
    lopc = AllToAllModel(machine1).solve_work(work).response_time

    rows = []
    results = {}
    for cv2, barriers in ((0.0, False), (0.0, True), (1.0, False),
                          (1.0, True)):
        config = MachineConfig(processors=processors, latency=latency,
                               handler_time=handler_time, handler_cv2=cv2,
                               seed=seed)
        m = run_barrier_alltoall(config, work=work, phases=phases,
                                 use_barriers=barriers)
        # Where does the measurement sit between LogP (0) and LoPC (1)?
        position = (m.response_time - logp) / (lopc - logp)
        results[(cv2, barriers)] = (m, position)
        rows.append(
            {
                "handlers": "deterministic" if cv2 == 0.0 else "exponential",
                "barriers": barriers,
                "put cycle R": m.response_time,
                "contention": m.total_contention,
                "barrier cost": m.barrier_time,
                "LogP->LoPC position": position,
            }
        )

    det_free = results[(0.0, False)][1]
    drifted = results[(1.0, False)][1]
    resynced = results[(1.0, True)][1]
    checks = [
        ShapeCheck(
            "deterministic-schedule-is-contention-free",
            abs(det_free) < 0.05,
            f"variance-free machine sits at LogP ({det_free:+.2f} of the "
            "LogP->LoPC span) with no barriers needed",
        ),
        ShapeCheck(
            "variance-randomises-schedule",
            drifted > 0.6,
            f"with exponential handlers and no barriers the schedule "
            f"drifts {drifted:.0%} of the way to the LoPC (random) "
            "prediction (Brewer & Kuszmaul)",
        ),
        ShapeCheck(
            "barriers-resynchronise",
            resynced < 0.6 * drifted,
            f"per-phase barriers pull the pattern back to {resynced:.0%} "
            "of the span (the LogP paper's fix)",
        ),
        ShapeCheck(
            "barriers-cost-real-time",
            results[(1.0, True)][0].barrier_time > 2 * latency * 0.8,
            f"each barrier episode costs "
            f"{results[(1.0, True)][0].barrier_time:.0f} cycles -- the "
            "hardware the paper notes few machines can afford",
        ),
    ]
    return ExperimentResult(
        experiment_id="cm5-drift",
        title="Schedule drift and barrier resynchronisation (Chapter 1)",
        parameters={
            "P": processors,
            "St": latency,
            "So": handler_time,
            "W": work,
            "phases": phases,
            "seed": seed,
            "LogP cycle": logp,
            "LoPC cycle": lopc,
        },
        columns=[
            "handlers",
            "barriers",
            "put cycle R",
            "contention",
            "barrier cost",
            "LogP->LoPC position",
        ],
        rows=rows,
        checks=checks,
        notes=(
            "Position 0 = contention-free LogP prediction; 1 = LoPC's "
            "fully-random prediction.",
        ),
    )
