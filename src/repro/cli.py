"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    lopc-repro list
    lopc-repro run fig-5.2 [--out results/] [--fast]
    lopc-repro run-all [--out results/] [--fast]

``--fast`` shrinks simulation lengths (for smoke testing); published
numbers should use the defaults.  With ``--out``, each experiment writes
``<id>.txt`` (ASCII table) and ``<id>.csv`` next to the printed output.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import (
    format_table,
    get_experiment,
    list_experiments,
)
from repro.experiments.common import ExperimentResult, to_csv

__all__ = ["main"]

_FAST_OVERRIDES: dict[str, dict[str, object]] = {
    "fig-5.2": {"cycles": 120, "works": (2, 32, 256, 1024)},
    "fig-5.3": {"cycles": 120, "works": (2, 32, 256, 1024)},
    "fig-6.2": {"chunks": 120, "servers": (2, 4, 8, 12, 16, 24)},
    "claims": {"cycles": 150},
    "cm5-drift": {"phases": 80},
}


def _write_outputs(result: ExperimentResult, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = result.experiment_id.replace(".", "_")
    (out_dir / f"{stem}.txt").write_text(format_table(result) + "\n")
    (out_dir / f"{stem}.csv").write_text(to_csv(result))


#: Chartable experiments and their series (figure-shaped results only).
_CHARTS: dict[str, tuple[str, tuple[str, ...]]] = {
    "fig-5.1": ("C2", ()),  # all handler columns
    "fig-5.2": ("W", ("lower bound (LogP)", "LoPC", "upper bound",
                      "simulator")),
    "fig-5.3": ("W", ("total model", "total sim")),
    "fig-6.2": ("Ps", ("simulator X", "LoPC X")),
}


def _run_one(
    experiment_id: str, fast: bool, out: Path | None, chart: bool = False
) -> bool:
    kwargs = _FAST_OVERRIDES.get(experiment_id, {}) if fast else {}
    start = time.perf_counter()
    result = get_experiment(experiment_id)(**kwargs)
    elapsed = time.perf_counter() - start
    print(format_table(result))
    if chart and experiment_id in _CHARTS:
        from repro.experiments.charts import chart_experiment

        x_col, series = _CHARTS[experiment_id]
        print()
        print(chart_experiment(result, x_column=x_col,
                               series_columns=list(series) or None))
    print(f"\n({experiment_id} completed in {elapsed:.1f}s)\n")
    if out is not None:
        _write_outputs(result, out)
    return result.all_checks_passed


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="lopc-repro",
        description=(
            "Reproduce the tables and figures of 'LoPC: Modeling "
            "Contention in Parallel Algorithms' (Frank, PPoPP 1997)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    run_p.add_argument("--out", type=Path, default=None,
                       help="directory for .txt/.csv outputs")
    run_p.add_argument("--fast", action="store_true",
                       help="smaller simulations (smoke test)")
    run_p.add_argument("--chart", action="store_true",
                       help="render figure experiments as ASCII charts")

    all_p = sub.add_parser("run-all", help="run every experiment")
    all_p.add_argument("--out", type=Path, default=None)
    all_p.add_argument("--fast", action="store_true")
    all_p.add_argument("--chart", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        ok = _run_one(args.experiment, args.fast, args.out, args.chart)
        return 0 if ok else 1

    if args.command == "run-all":
        all_ok = True
        for experiment_id in list_experiments():
            ok = _run_one(experiment_id, args.fast, args.out, args.chart)
            all_ok &= ok
        print("all shape checks passed" if all_ok
              else "SOME SHAPE CHECKS FAILED")
        return 0 if all_ok else 1

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
