"""Command-line interface: regenerate the paper's tables and figures.

Usage::

    lopc-repro list
    lopc-repro run fig-5.2 [--out results/] [--fast] [--jobs 4]
                           [--seed S] [--cache-dir .lopc-cache]
    lopc-repro run-all [--out results/] [--fast] [--jobs 4] [...]
    lopc-repro sweep spec.json [--jobs 4] [--cache-dir D] [--out results/]
                               [--warm-start]
    lopc-repro scenario --list
    lopc-repro scenario alltoall --describe
    lopc-repro scenario alltoall P=32 St=40 So=200 W=1000
    lopc-repro scenario alltoall P=32 St=40 So=200 --sweep W=2,32,512 \\
                        --backend sim [--jobs 4] [--cache-dir D]
    lopc-repro scenario alltoall --sweep W=2,32,512 ... \\
                        --metrics m.json --progress
    lopc-repro optimize alltoall minimize=R over.W=1:20000 P=32 St=10 ...
    lopc-repro optimize alltoall maximize=W over.W=1:20000 \\
                        P=32 St=10 So=131 C2=1 --subject-to "R <= 2000"
    lopc-repro stats m.json
    lopc-repro fuzz [--points 2000] [--seed S] [--scenario NAME ...]
                    [--budget SECONDS] [--report FILE] [--corpus DIR]
                    [--sim-points N] [--opt-queries N] [--no-shrink]
    lopc-repro serve [--host H] [--port P] [--workers N]
                     [--cache-dir D] [--cache-backend sqlite|files]
    lopc-repro submit spec.json --url http://H:P [--warm-start] [--wait]
    lopc-repro status JOB --url http://H:P [--since N]
    lopc-repro fetch JOB --url http://H:P [--out results/]
    lopc-repro query alltoall P=32 St=40 So=200 W=1000 --url http://H:P
    lopc-repro query alltoall minimize=R over.W=100:20000 P=32 ... \\
                    --url http://H:P
    lopc-repro cache migrate SRC DST

``--fast`` shrinks simulation lengths (for smoke testing); published
numbers should use the defaults.  With ``--out``, each experiment writes
``<id>.txt`` (ASCII table) and ``<id>.csv`` next to the printed output.

``--metrics FILE`` records solver/simulator/cache telemetry
(:mod:`repro.obs`) during a ``sweep`` or ``scenario`` run and writes the
snapshot as JSON; ``--progress`` prints live per-chunk progress lines to
stderr; ``--events FILE`` streams structured JSONL events.  ``stats``
renders a ``--metrics`` file back into tables.  Telemetry never changes
results -- values and cache keys are bit-identical either way.

``--jobs N`` evaluates sweep points on ``N`` worker processes (``0`` =
one per CPU); ``--seed`` overrides the experiment's simulation seed so
runs are bit-reproducible; ``--cache-dir`` enables the content-addressed
result cache, so repeated and overlapping runs skip already-solved
points.  ``sweep`` runs a declarative :class:`~repro.sweep.SweepSpec`
from a JSON file (see :mod:`repro.sweep.spec` for the format).

``scenario`` is the CLI face of the :mod:`repro.api` facade: name a
registered scenario, give ``KEY=VALUE`` parameters in the paper's
notation, pick a backend (``analytic`` default, ``bounds``, ``sim``),
and optionally sweep axes with ``--sweep KEY=V1,V2,...`` (repeatable;
multiple axes cross-product, sharing the sweep cache with the figure
experiments).

``optimize`` runs an inverse query (:mod:`repro.opt`): name an objective
(``minimize=COL`` / ``maximize=COL`` / ``knee=COL``), a search box
(``over.NAME=LO:HI``, repeatable), optional ``--subject-to`` constraints,
and fixed parameters as ``KEY=VALUE``.  Each optimizer iteration is one
batched solve; exit code 1 means no feasible point was found.

``fuzz`` runs a property-based campaign (:mod:`repro.fuzz`): thousands
of seeded random networks through the batch kernels with bulk invariant
checks, a sampled simulation cross-check, shrinking of failures to
minimal params, and an optional JSON report / repro-case corpus for CI.
Exit code 1 means at least one invariant violated.

``serve`` starts the long-lived query/sweep service
(:mod:`repro.serve`, wire protocol ``lopc-serve/1``); ``submit`` /
``status`` / ``fetch`` / ``query`` are its client verbs, each taking
``--url``.  Every ``--cache-dir`` flag pairs with ``--cache-backend
sqlite|files`` (a ``*.sqlite`` path implies sqlite), and ``cache
migrate SRC DST`` converts a cache between the two backends with
byte-exact verification.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
import time
from pathlib import Path

from repro.experiments import (
    format_table,
    get_experiment,
    list_experiments,
)
from repro.experiments.common import ExperimentResult, to_csv

__all__ = ["main"]

_FAST_OVERRIDES: dict[str, dict[str, object]] = {
    "fig-5.2": {"cycles": 120, "works": (2, 32, 256, 1024)},
    "fig-5.3": {"cycles": 120, "works": (2, 32, 256, 1024)},
    "fig-6.2": {"chunks": 120, "servers": (2, 4, 8, 12, 16, 24)},
    "claims": {"cycles": 150},
    "cm5-drift": {"phases": 80},
}


def _write_outputs(result: ExperimentResult, out_dir: Path) -> None:
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = result.experiment_id.replace(".", "_")
    (out_dir / f"{stem}.txt").write_text(format_table(result) + "\n")
    (out_dir / f"{stem}.csv").write_text(to_csv(result))


#: Chartable experiments and their series (figure-shaped results only).
_CHARTS: dict[str, tuple[str, tuple[str, ...]]] = {
    "fig-5.1": ("C2", ()),  # all handler columns
    "fig-5.2": ("W", ("lower bound (LogP)", "LoPC", "upper bound",
                      "simulator")),
    "fig-5.3": ("W", ("total model", "total sim")),
    "fig-6.2": ("Ps", ("simulator X", "LoPC X")),
}


def _experiment_kwargs(
    experiment_id: str, args: argparse.Namespace
) -> dict[str, object]:
    """Assemble runner kwargs: fast overrides + sweep/seed plumbing.

    ``--jobs``, ``--seed`` and ``--cache-dir`` only apply to runners
    whose signature accepts them (sweep-backed experiments take ``jobs``
    and ``cache``; anything stochastic takes ``seed``), so table-only
    experiments keep their minimal signatures.
    """
    kwargs: dict[str, object] = {}
    if getattr(args, "fast", False):
        kwargs.update(_FAST_OVERRIDES.get(experiment_id, {}))
    accepted = inspect.signature(get_experiment(experiment_id)).parameters
    if getattr(args, "jobs", None) is not None and "jobs" in accepted:
        kwargs["jobs"] = args.jobs
    if getattr(args, "seed", None) is not None and "seed" in accepted:
        kwargs["seed"] = args.seed
    if getattr(args, "cache_dir", None) is not None and "cache" in accepted:
        kwargs["cache"] = _cache_from_args(args)
    return kwargs


def _run_one(experiment_id: str, args: argparse.Namespace) -> bool:
    kwargs = _experiment_kwargs(experiment_id, args)
    start = time.perf_counter()
    result = get_experiment(experiment_id)(**kwargs)
    elapsed = time.perf_counter() - start
    print(format_table(result))
    if getattr(args, "chart", False) and experiment_id in _CHARTS:
        from repro.experiments.charts import chart_experiment

        x_col, series = _CHARTS[experiment_id]
        print()
        print(chart_experiment(result, x_column=x_col,
                               series_columns=list(series) or None))
    print(f"\n({experiment_id} completed in {elapsed:.1f}s)\n")
    if args.out is not None:
        _write_outputs(result, args.out)
    return result.all_checks_passed


def _cache_from_args(args: argparse.Namespace):
    """``--cache-dir``/``--cache-backend`` as one cache backend (or None)."""
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        return None
    from repro.sweep.cache import coerce_cache

    return coerce_cache(cache_dir, getattr(args, "cache_backend", None))


def _telemetry_kwargs(args: argparse.Namespace) -> dict[str, object]:
    """``--metrics`` / ``--progress`` / ``--events`` as run_sweep kwargs."""
    from repro.obs import ConsoleProgress

    kwargs: dict[str, object] = {}
    if getattr(args, "metrics", None) is not None:
        kwargs["metrics"] = True
    if getattr(args, "progress", False):
        kwargs["progress"] = ConsoleProgress()
    if getattr(args, "events", None) is not None:
        kwargs["events"] = args.events
    return kwargs


def _write_metrics(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _sweep_metrics_payload(result) -> dict:
    """The ``--metrics`` file for a sweep: registry + routing + cache."""
    meta = result.metadata
    payload = {
        "spec": meta.get("spec"),
        "evaluator": meta.get("evaluator"),
        "points": meta.get("points"),
        "cache": {
            "hits": meta.get("cache_hits", 0),
            "misses": meta.get("cache_misses", 0),
            "writes": meta.get("cache_writes", 0),
        },
        "routing": meta.get("routing"),
        "elapsed": meta.get("elapsed"),
        "metrics": meta.get("telemetry"),
    }
    if meta.get("warm_start") is not None:
        payload["warm_start"] = meta["warm_start"]
    return payload


def _run_sweep_file(args: argparse.Namespace) -> int:
    from repro.sweep import SweepSpec, run_sweep

    spec = SweepSpec.from_file(args.spec)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    result = run_sweep(spec, cache=_cache_from_args(args),
                       jobs=args.jobs if args.jobs is not None else 1,
                       warm_start=args.warm_start,
                       **_telemetry_kwargs(args))
    print(format_table(result.to_experiment_result()))
    print(f"\n({spec.name}: {result.summary()})\n")
    if args.metrics is not None:
        _write_metrics(args.metrics, _sweep_metrics_payload(result))
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        stem = spec.name.replace(".", "_").replace("/", "_")
        (args.out / f"{stem}.csv").write_text(result.to_csv())
    return 0


def _run_scenario(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    from repro.api import get_scenario_class, list_scenarios

    if args.list or args.name is None:
        for name in list_scenarios():
            cls = get_scenario_class(name)
            print(f"{name:<12} {cls.title}")
        return 0
    cls = get_scenario_class(args.name)
    if args.describe:
        print(cls.describe())
        return 0

    params: dict[str, object] = {}
    for item in args.params:
        key, sep, text = item.partition("=")
        if not sep:
            parser.error(f"scenario parameters are KEY=VALUE, got {item!r}")
        params[key] = cls.parse_value(key, text)
    sc = cls(**params)

    from repro.sweep import GridAxis

    axes: dict[str, object] = {}
    for item in args.sweep or ():
        key, sep, text = item.partition("=")
        if not sep:
            parser.error(f"--sweep takes KEY=V1,V2,..., got {item!r}")
        # Axis instances under a mangled keyword, so a swept `seed`
        # cannot collide with study()'s spec-level seed argument.
        axes[f"sweep_{key}"] = GridAxis(
            key, tuple(cls.parse_value(key, v) for v in text.split(","))
        )
        if key == "seed" and args.seed is not None:
            # The spec-level seed would derive one per-point seed and
            # clobber every swept value with it.
            parser.error(
                "--seed derives per-point seeds and cannot be combined "
                "with --sweep seed=...; drop one of the two"
            )

    if args.warm_start and not axes:
        parser.error(
            "--warm-start seeds solves from neighbouring sweep points; "
            "it needs at least one --sweep axis"
        )

    if axes:
        study = sc.study(jobs=args.jobs if args.jobs is not None else 1,
                         cache=_cache_from_args(args), seed=args.seed,
                         **axes)
        result = study.run(args.backend, warm_start=args.warm_start,
                           **_telemetry_kwargs(args))
        print(format_table(result.to_experiment_result()))
        print(f"\n({result.spec_name}: {result.summary()})\n")
        if args.metrics is not None:
            _write_metrics(args.metrics, _sweep_metrics_payload(result))
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            stem = f"{args.name}_{args.backend}"
            (args.out / f"{stem}.csv").write_text(result.to_csv())
        return 0

    solve = {"analytic": sc.analytic, "bounds": sc.bounds,
             "sim": sc.simulate}[args.backend]
    if args.metrics is not None or args.events is not None:
        from repro import obs

        with obs.telemetry(metrics=args.metrics is not None,
                           events=args.events) as tel:
            solution = solve()
        if args.metrics is not None:
            _write_metrics(args.metrics, {
                "scenario": args.name,
                "backend": args.backend,
                "metrics": tel.metrics.as_dict(),
            })
    else:
        solution = solve()
    print(f"scenario {solution.scenario} / {solution.backend} "
          f"(evaluator {solution.evaluator})")
    print("params: " + ", ".join(
        f"{k}={v}" for k, v in sorted(solution.params.items())))
    width = max(len(c) for c in solution.columns)
    for column in solution.columns:
        value = solution.values[column]
        rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
        print(f"  {column:<{width}}  {rendered}")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"{args.name}_{args.backend}.json"
        path.write_text(solution.to_json() + "\n")
    return 0


def _run_optimize(args: argparse.Namespace,
                  parser: argparse.ArgumentParser) -> int:
    """``optimize``: the CLI face of ``scenario(...).optimize(...)``."""
    from repro.api import get_scenario_class

    cls = get_scenario_class(args.name)
    mode: dict[str, str] = {}
    over: dict[str, tuple[object, object]] = {}
    params: dict[str, object] = {}
    for item in args.tokens:
        key, sep, text = item.partition("=")
        if not sep:
            parser.error(f"optimize arguments are KEY=VALUE, got {item!r}")
        if key in ("minimize", "maximize", "knee"):
            mode[key] = text
        elif key.startswith("over."):
            axis = key[len("over."):]
            lo_text, sep2, hi_text = text.partition(":")
            if not sep2:
                parser.error(
                    f"over.{axis} takes LO:HI (a search range), got {item!r}"
                )
            over[axis] = (cls.parse_value(axis, lo_text),
                          cls.parse_value(axis, hi_text))
        else:
            params[key] = cls.parse_value(key, text)
    if len(mode) != 1:
        parser.error(
            "pass exactly one objective: minimize=COL, maximize=COL "
            "or knee=COL"
        )
    if not over:
        parser.error(
            "optimize needs at least one search axis: over.NAME=LO:HI"
        )
    sc = cls(**params)
    result = sc.optimize(
        **mode,
        over=over,
        subject_to=args.subject_to or None,
        backend=args.backend,
        warm_start=args.warm_start,
        max_solves=args.max_solves,
        metrics=args.metrics is not None,
        events=args.events,
    )
    print(f"scenario {result.scenario} / {result.backend} "
          f"(evaluator {result.evaluator})")
    print(result.summary())
    if result.constraints:
        print("subject to: " + "; ".join(result.constraints))
    if result.feasible:
        width = max(len(c) for c in result.best_values)
        for column in sorted(result.best_values):
            print(f"  {column:<{width}}  {result.best_values[column]:.6f}")
    else:
        print("no feasible point in the search box")
    if args.metrics is not None:
        _write_metrics(args.metrics, {
            "scenario": result.scenario,
            "backend": result.backend,
            "metrics": result.meta.get("telemetry"),
        })
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        path = args.out / f"{args.name}_optimize.json"
        path.write_text(result.to_json() + "\n")
    return 0 if result.feasible else 1


def _run_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import run_fuzz

    cache = _cache_from_args(args)
    report = run_fuzz(
        points=args.points,
        seed=args.seed,
        scenarios=args.scenario or None,
        sim_points=args.sim_points,
        opt_queries=args.opt_queries,
        budget=args.budget,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus,
        report_path=args.report,
        cache=cache,
    )
    width = max((len(n) for n in report.scenarios), default=8)
    for name, entry in report.scenarios.items():
        print(f"  {name:<{width}}  {entry['checked']:>6} checked  "
              f"{entry['rejected']:>4} rejected  "
              f"{entry['violations']:>4} violation(s)")
    if report.sim_checked:
        print(f"  {'sim':<{width}}  {report.sim_checked:>6} checked")
    if report.opt_checked:
        print(f"  {'opt':<{width}}  {report.opt_checked:>6} checked")
    print(
        f"fuzz seed={report.seed}: {report.checked} point(s) checked, "
        f"{report.rejected} rejected, {report.total_violations} "
        f"violation(s) in {report.elapsed:.1f}s "
        f"({report.points_per_second:.0f} points/s)"
        + (" [budget exhausted]" if report.budget_exhausted else "")
    )
    if cache is not None:
        stats = cache.stats
        print(f"sim cache: {stats.hits} hit(s) / {stats.misses} miss(es) "
              f"/ {stats.writes} write(s)")
    for case in report.cases:
        print(f"  VIOLATION {case['scenario']}/{case['invariant']}: "
              f"{case['message']}")
        print(f"    minimal params: {case['params']}")
    if args.report is not None:
        print(f"report written to {args.report}")
    if args.corpus is not None and report.cases:
        print(f"repro cases written to {args.corpus}")
    return 0 if report.ok else 1


def _run_serve(args: argparse.Namespace) -> int:
    """``serve``: boot the long-lived HTTP query/sweep service."""
    from repro.serve import PROTOCOL, SweepService, make_server

    service = SweepService(
        _cache_from_args(args),
        workers=args.workers,
        batch_window=args.batch_window,
    )
    server = make_server(service, args.host, args.port,
                         quiet=not args.verbose)
    host, port = server.server_address[:2]
    cache_name = (
        type(service.cache).__name__ if service.cache is not None else "none"
    )
    print(f"{PROTOCOL} listening on http://{host}:{port} "
          f"(workers={service.workers}, cache={cache_name})", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()
        service.close()
    return 0


def _serve_client(args: argparse.Namespace):
    from repro.serve import Client

    return Client(args.url, timeout=args.timeout)


def _print_sweep_result(result, out: Path | None, stem: str) -> None:
    print(format_table(result.to_experiment_result()))
    print(f"\n({result.spec_name}: {result.summary()})\n")
    if out is not None:
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{stem}.csv").write_text(result.to_csv())


def _run_submit(args: argparse.Namespace) -> int:
    """``submit``: send a sweep spec to a server; prints the job id."""
    from repro.sweep import SweepSpec

    spec = SweepSpec.from_file(args.spec)
    if args.seed is not None:
        spec = spec.with_seed(args.seed)
    client = _serve_client(args)
    job_id = client.submit(spec, warm_start=args.warm_start)
    print(job_id)
    if args.wait:
        result = client.wait(job_id, timeout=args.timeout)
        stem = spec.name.replace(".", "_").replace("/", "_")
        _print_sweep_result(result, args.out, stem)
    return 0


def _print_job_status(status: dict) -> None:
    progress = status.get("progress") or {}
    line = (f"{status['job']}: {status['state']}  "
            f"[{progress.get('done', 0)}/{progress.get('total', '?')} "
            f"points, route {status.get('route', '?')}]")
    if status.get("elapsed") is not None:
        line += f" in {status['elapsed']:.2f}s"
    if status.get("error"):
        line += f"  error: {status['error']}"
    print(line)


def _run_status(args: argparse.Namespace) -> int:
    """``status``: one job (with event stream) or all jobs."""
    client = _serve_client(args)
    if not args.job:
        jobs = client.jobs()
        if not jobs:
            print("no jobs")
            return 0
        for status in jobs:
            _print_job_status(status)
        return 0
    status = client.status(args.job, since=args.since)
    _print_job_status(status)
    stream = status.get("stream") or {}
    for event in stream.get("events", ()):
        fields = ", ".join(
            f"{k}={v}" for k, v in event.items()
            if k not in ("kind", "time") and not isinstance(v, (dict, list))
        )
        print(f"  {event.get('kind', '?'):<16} {fields}")
    if stream.get("events"):
        print(f"  (next --since {stream.get('next')})")
    return 1 if status["state"] == "error" else 0


def _run_fetch(args: argparse.Namespace) -> int:
    """``fetch``: download a finished job's SweepResult and render it."""
    client = _serve_client(args)
    if args.wait:
        result = client.wait(args.job, timeout=args.timeout)
    else:
        result = client.result(args.job)
    stem = result.spec_name.replace(".", "_").replace("/", "_")
    _print_sweep_result(result, args.out, stem)
    return 0


def _run_query(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    """``query``: point or inverse query against a server.

    Plain ``KEY=VALUE`` tokens make a point query (one Solution);
    ``minimize=``/``maximize=``/``knee=`` plus ``over.NAME=LO:HI``
    tokens make it an optimize query (one OptResult) -- the same token
    grammar as the in-process ``optimize`` subcommand.
    """
    from repro.api import get_scenario_class

    cls = get_scenario_class(args.name)
    mode: dict[str, str] = {}
    over: dict[str, tuple[object, object]] = {}
    params: dict[str, object] = {}
    for item in args.tokens:
        key, sep, text = item.partition("=")
        if not sep:
            parser.error(f"query arguments are KEY=VALUE, got {item!r}")
        if key in ("minimize", "maximize", "knee"):
            mode[key] = text
        elif key.startswith("over."):
            axis = key[len("over."):]
            lo_text, sep2, hi_text = text.partition(":")
            if not sep2:
                parser.error(
                    f"over.{axis} takes LO:HI (a search range), got {item!r}"
                )
            over[axis] = (cls.parse_value(axis, lo_text),
                          cls.parse_value(axis, hi_text))
        else:
            params[key] = cls.parse_value(key, text)
    if len(mode) > 1:
        parser.error("pass at most one of minimize=/maximize=/knee=")
    if bool(mode) != bool(over):
        if mode:
            parser.error("an inverse query needs a search axis: "
                         "over.NAME=LO:HI")
        parser.error("over.NAME=LO:HI needs an objective: minimize=COL, "
                     "maximize=COL or knee=COL")
    client = _serve_client(args)

    if mode:
        result = client.optimize(
            args.name, params, **mode, over=over,
            subject_to=args.subject_to or None, backend=args.backend,
        )
        print(f"scenario {result.scenario} / {result.backend} "
              f"(evaluator {result.evaluator})")
        print(result.summary())
        if result.feasible:
            width = max(len(c) for c in result.best_values)
            for column in sorted(result.best_values):
                print(f"  {column:<{width}}  "
                      f"{result.best_values[column]:.6f}")
        else:
            print("no feasible point in the search box")
        return 0 if result.feasible else 1

    solution = client.point(scenario=args.name, backend=args.backend,
                            **params)
    print(f"scenario {solution.scenario} / {solution.backend} "
          f"(evaluator {solution.evaluator})"
          + ("  [cached]" if solution.meta.get("cached") else ""))
    width = max(len(c) for c in solution.columns)
    for column in solution.columns:
        value = solution.values[column]
        rendered = f"{value:.6f}" if isinstance(value, float) else str(value)
        print(f"  {column:<{width}}  {rendered}")
    return 0


def _run_cache(args: argparse.Namespace,
               parser: argparse.ArgumentParser) -> int:
    """``cache migrate``: verified conversion between cache backends."""
    if args.cache_command == "migrate":
        from repro.serve import migrate_cache

        report = migrate_cache(
            args.src, args.dst,
            source_backend=args.src_backend,
            destination_backend=args.dst_backend,
        )
        print(report.summary())
        return 0
    parser.error(f"unknown cache command {args.cache_command!r}")
    return 2  # pragma: no cover


def _render_stats_section(title: str, rows: list[tuple[str, str]]) -> None:
    if not rows:
        return
    width = max(len(name) for name, _ in rows)
    print(f"{title}:")
    for name, rendered in rows:
        print(f"  {name:<{width}}  {rendered}")


def _render_serve_stats(registry: dict) -> None:
    """The serve-side view: endpoints, coalescing, queue, route split."""
    counters = registry.get("counters", {})
    gauges = registry.get("gauges", {})
    if not any(name.startswith("serve.") for name in counters) and not any(
        name.startswith("serve.") for name in gauges
    ):
        return
    prefix = "serve.requests."
    requests = {
        name[len(prefix):]: count
        for name, count in counters.items() if name.startswith(prefix)
    }
    if requests:
        total = sum(requests.values())
        print(f"serve requests: {total:,} total — " + ", ".join(
            f"{count} {endpoint}"
            for endpoint, count in sorted(
                requests.items(), key=lambda kv: -kv[1]
            )
        ))
    coalesced = counters.get("serve.coalesced", 0)
    merged = counters.get("serve.batch.merged", 0)
    solves = counters.get("serve.batch.solves", 0)
    batch_requests = counters.get("serve.batch.requests", 0)
    if coalesced or merged or solves:
        line = f"serve coalescing: {coalesced:,} deduped in-flight"
        if batch_requests:
            line += (f", {batch_requests:,} batched request(s) in "
                     f"{solves:,} kernel solve(s) ({merged:,} merged)")
        print(line)
    routes = {
        name.rsplit(".", 1)[-1]: count
        for name, count in counters.items()
        if name.startswith("serve.jobs.route.")
    }
    if routes:
        print("serve jobs: " + ", ".join(
            f"{count} {route}" for route, count in sorted(routes.items())
        ))
    high_water = gauges.get("serve.jobs.queue_depth_high_water")
    if high_water is not None:
        print(f"serve queue depth high-water: {high_water:g}")


def _run_stats(args: argparse.Namespace) -> int:
    """Render a ``--metrics`` JSON file back into readable tables."""
    data = json.loads(Path(args.metrics_file).read_text())
    # Accept both the sweep payload (registry under "metrics") and a
    # bare MetricsRegistry.as_dict() dump.
    registry = data.get("metrics") if "metrics" in data else data
    header = [
        f"{key}={data[key]}"
        for key in ("spec", "scenario", "evaluator", "backend", "points")
        if data.get(key) is not None
    ]
    if header:
        print(" ".join(header))
    cache = data.get("cache")
    if cache:
        print(
            f"cache: {cache.get('hits', 0)} hit(s) / "
            f"{cache.get('misses', 0)} miss(es) / "
            f"{cache.get('writes', 0)} write(s)"
        )
    routing = data.get("routing")
    if routing:
        print("routing: " + ", ".join(
            f"{count} {route}" for route, count in sorted(routing.items())
            if count
        ))
    warm = data.get("warm_start")
    if warm:
        print(
            f"warm-start: {warm.get('seeded', 0)} seeded / "
            f"{warm.get('cold', 0)} cold over {warm.get('chunks', 0)} chunk(s)"
        )
    if not isinstance(registry, dict) or not any(
        registry.get(k) for k in ("counters", "gauges", "stats", "timers")
    ):
        print("(no metrics recorded)")
        return 0
    _render_serve_stats(registry)
    _render_stats_section("counters", [
        (name, f"{value:,}")
        for name, value in sorted(registry.get("counters", {}).items())
    ])
    _render_stats_section("gauges", [
        (name, f"{value:g}")
        for name, value in sorted(registry.get("gauges", {}).items())
    ])
    _render_stats_section("stats", [
        (
            name,
            f"count={s['count']:,} mean={s['mean']:g} "
            f"min={s['min']:g} max={s['max']:g}",
        )
        for name, s in sorted(registry.get("stats", {}).items())
    ])
    _render_stats_section("timers", [
        (
            name,
            f"count={s['count']:,} total={s['total']:.3f}s "
            f"mean={s['mean']:.3f}s",
        )
        for name, s in sorted(registry.get("timers", {}).items())
    ])
    return 0


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics", type=Path, default=None, metavar="FILE",
                        help="record telemetry and write the snapshot as "
                             "JSON (render it with `lopc-repro stats`)")
    parser.add_argument("--progress", action="store_true",
                        help="print live progress lines to stderr")
    parser.add_argument("--events", type=Path, default=None, metavar="FILE",
                        help="stream structured JSONL events to FILE")


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out", type=Path, default=None,
                        help="directory for .txt/.csv outputs")
    parser.add_argument("--fast", action="store_true",
                        help="smaller simulations (smoke test)")
    parser.add_argument("--chart", action="store_true",
                        help="render figure experiments as ASCII charts")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="evaluate sweep points on N worker processes "
                             "(0 = one per CPU)")
    parser.add_argument("--seed", type=int, default=None, metavar="S",
                        help="override the simulation seed (bit-reproducible "
                             "runs)")
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="content-addressed result cache directory "
                             "(reuse + resume)")
    _add_cache_backend_option(parser)


def _add_cache_backend_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--cache-backend", default=None,
                        choices=("sqlite", "files"),
                        help="cache store for --cache-dir: one sqlite "
                             "database (safe under concurrent writers) or "
                             "one JSON file per record (default: files, "
                             "or sqlite for *.sqlite paths)")


def _add_client_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--url", required=True, metavar="URL",
                        help="server base URL, e.g. http://127.0.0.1:8421")
    parser.add_argument("--timeout", type=float, default=120.0,
                        metavar="SECONDS",
                        help="request / wait timeout (default: 120)")


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="lopc-repro",
        description=(
            "Reproduce the tables and figures of 'LoPC: Modeling "
            "Contention in Parallel Algorithms' (Frank, PPoPP 1997)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (see `list`)")
    _add_run_options(run_p)

    all_p = sub.add_parser("run-all", help="run every experiment")
    _add_run_options(all_p)

    sweep_p = sub.add_parser(
        "sweep", help="run a declarative parameter sweep from a JSON spec"
    )
    sweep_p.add_argument("spec", type=Path, help="SweepSpec JSON file")
    sweep_p.add_argument("--out", type=Path, default=None,
                         help="directory for the .csv export")
    sweep_p.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker processes (0 = one per CPU)")
    sweep_p.add_argument("--seed", type=int, default=None, metavar="S",
                         help="spec-level seed (derives per-point seeds)")
    sweep_p.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                         help="content-addressed result cache directory")
    _add_cache_backend_option(sweep_p)
    sweep_p.add_argument("--warm-start", action="store_true",
                         help="seed each solve from neighbouring sweep "
                              "points (same results and cache keys, "
                              "fewer solver iterations)")
    _add_telemetry_options(sweep_p)

    scenario_p = sub.add_parser(
        "scenario",
        help="evaluate a scenario through the fluent facade (repro.api)",
    )
    scenario_p.add_argument("name", nargs="?", default=None,
                            help="scenario name (see --list)")
    scenario_p.add_argument("params", nargs="*", metavar="KEY=VALUE",
                            help="scenario parameters in the paper's "
                                 "notation (P=32 St=40 So=200 W=1000 ...)")
    scenario_p.add_argument("--list", action="store_true",
                            help="list registered scenarios and exit")
    scenario_p.add_argument("--describe", action="store_true",
                            help="print the scenario's parameter schema "
                                 "and backends")
    scenario_p.add_argument("--backend", default="analytic",
                            choices=("analytic", "bounds", "sim"),
                            help="which backend to evaluate "
                                 "(default: analytic)")
    scenario_p.add_argument("--sweep", action="append", metavar="KEY=V1,V2",
                            help="sweep an axis (repeatable; axes "
                                 "cross-product into a cached study)")
    scenario_p.add_argument("--jobs", type=int, default=None, metavar="N",
                            help="worker processes for study cache misses "
                                 "(0 = one per CPU)")
    scenario_p.add_argument("--seed", type=int, default=None, metavar="S",
                            help="study-level seed (derives per-point "
                                 "seeds; for a single run pass seed=S as "
                                 "a parameter)")
    scenario_p.add_argument("--cache-dir", type=Path, default=None,
                            metavar="DIR",
                            help="content-addressed result cache directory")
    _add_cache_backend_option(scenario_p)
    scenario_p.add_argument("--warm-start", action="store_true",
                            help="seed each solve from neighbouring sweep "
                                 "points (same results and cache keys, "
                                 "fewer solver iterations)")
    scenario_p.add_argument("--out", type=Path, default=None,
                            help="directory for the .csv (study) or "
                                 ".json (single point) export")
    _add_telemetry_options(scenario_p)

    optimize_p = sub.add_parser(
        "optimize",
        help="answer an inverse query over a scenario (repro.opt): "
             "minimize/maximize a column or locate a knee",
    )
    optimize_p.add_argument("name", help="scenario name (see scenario --list)")
    optimize_p.add_argument(
        "tokens", nargs="*", metavar="TOKEN",
        help="minimize=COL | maximize=COL | knee=COL, search axes as "
             "over.NAME=LO:HI (repeatable), fixed parameters as KEY=VALUE",
    )
    optimize_p.add_argument("--subject-to", action="append", metavar="PRED",
                            help="constraint like 'R <= 1000' (repeatable)")
    optimize_p.add_argument("--backend", default="analytic",
                            help="backend role to solve with "
                                 "(default: analytic)")
    optimize_p.add_argument("--warm-start", action="store_true",
                            help="seed each batch solve from the nearest "
                                 "already-solved point")
    optimize_p.add_argument("--max-solves", type=int, default=48, metavar="N",
                            help="batch-solve budget (default: 48)")
    optimize_p.add_argument("--out", type=Path, default=None,
                            help="directory for the OptResult .json export")
    optimize_p.add_argument("--metrics", type=Path, default=None,
                            metavar="FILE",
                            help="record opt.* telemetry and write the "
                                 "snapshot as JSON")
    optimize_p.add_argument("--events", type=Path, default=None,
                            metavar="FILE",
                            help="stream opt.step/opt.query events as JSONL")

    stats_p = sub.add_parser(
        "stats", help="render a --metrics JSON file as readable tables"
    )
    stats_p.add_argument("metrics_file", type=Path,
                         help="file written by --metrics")

    fuzz_p = sub.add_parser(
        "fuzz",
        help="bulk-validate model invariants over random networks "
             "(property-based fuzzing; exit 1 on violation)",
    )
    fuzz_p.add_argument("--points", type=int, default=2000, metavar="N",
                        help="analytic points to generate and check "
                             "(default: 2000)")
    fuzz_p.add_argument("--seed", type=int, default=0, metavar="S",
                        help="master seed; point j of scenario s depends "
                             "only on (s, S, j), so any failure replays "
                             "(default: 0)")
    fuzz_p.add_argument("--scenario", action="append", metavar="NAME",
                        help="restrict to one scenario (repeatable; "
                             "default: all with an invariant suite)")
    fuzz_p.add_argument("--budget", type=float, default=None,
                        metavar="SECONDS",
                        help="soft wall-clock limit; stops between chunks")
    fuzz_p.add_argument("--report", type=Path, default=None, metavar="FILE",
                        help="write the campaign report as JSON")
    fuzz_p.add_argument("--corpus", type=Path, default=None, metavar="DIR",
                        help="write shrunken repro-case files here")
    fuzz_p.add_argument("--sim-points", type=int, default=12, metavar="N",
                        help="sampled simulation cross-checks (default: 12; "
                             "0 disables)")
    fuzz_p.add_argument("--opt-queries", type=int, default=0, metavar="N",
                        help="optimizer-vs-grid cross-checks: N fuzzed "
                             "parameter sets per inverse query "
                             "(default: 0, disabled)")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="report raw failing params without shrinking")
    fuzz_p.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="share the sweep result cache for the sampled "
                             "simulation cross-checks")
    _add_cache_backend_option(fuzz_p)

    serve_p = sub.add_parser(
        "serve",
        help="start the long-lived HTTP query/sweep service (repro.serve)",
    )
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8421, metavar="P",
                         help="bind port; 0 picks a free one "
                              "(default: 8421)")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="worker threads for sim points and pool jobs "
                              "(default: 2)")
    serve_p.add_argument("--cache-dir", type=Path, default=None,
                         metavar="DIR",
                         help="shared content-addressed result cache "
                              "(recommended: a *.sqlite path)")
    _add_cache_backend_option(serve_p)
    serve_p.add_argument("--batch-window", type=float, default=0.002,
                         metavar="SECONDS",
                         help="co-arrival window merged into one batched "
                              "kernel solve (default: 0.002)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")

    submit_p = sub.add_parser(
        "submit", help="submit a sweep spec to a server; prints the job id"
    )
    submit_p.add_argument("spec", type=Path, help="SweepSpec JSON file")
    submit_p.add_argument("--seed", type=int, default=None, metavar="S",
                          help="spec-level seed (derives per-point seeds)")
    submit_p.add_argument("--warm-start", action="store_true",
                          help="ask the server to warm-start the solves")
    submit_p.add_argument("--wait", action="store_true",
                          help="block until done and print the result")
    submit_p.add_argument("--out", type=Path, default=None,
                          help="with --wait: directory for the .csv export")
    _add_client_options(submit_p)

    status_p = sub.add_parser(
        "status", help="show job status (all jobs when JOB is omitted)"
    )
    status_p.add_argument("job", nargs="?", default=None,
                          help="job id from `submit`")
    status_p.add_argument("--since", type=int, default=0, metavar="N",
                          help="stream progress events from sequence N")
    _add_client_options(status_p)

    fetch_p = sub.add_parser(
        "fetch", help="download a finished sweep job's result"
    )
    fetch_p.add_argument("job", help="job id from `submit`")
    fetch_p.add_argument("--wait", action="store_true",
                         help="poll until the job completes first")
    fetch_p.add_argument("--out", type=Path, default=None,
                         help="directory for the .csv export")
    _add_client_options(fetch_p)

    query_p = sub.add_parser(
        "query",
        help="query a scenario point (or inverse query) on a server",
    )
    query_p.add_argument("name", help="scenario name (see scenario --list)")
    query_p.add_argument(
        "tokens", nargs="*", metavar="TOKEN",
        help="KEY=VALUE parameters; add minimize=COL/maximize=COL/knee=COL "
             "and over.NAME=LO:HI to make it an inverse query",
    )
    query_p.add_argument("--backend", default="analytic",
                         help="backend role (default: analytic)")
    query_p.add_argument("--subject-to", action="append", metavar="PRED",
                         help="inverse-query constraint like 'R <= 1000' "
                              "(repeatable)")
    _add_client_options(query_p)

    cache_p = sub.add_parser(
        "cache", help="cache maintenance (migrate between backends)"
    )
    cache_sub = cache_p.add_subparsers(dest="cache_command", required=True)
    migrate_p = cache_sub.add_parser(
        "migrate",
        help="copy a cache to another backend with byte-exact verification",
    )
    migrate_p.add_argument("src", type=Path,
                           help="source cache (directory or *.sqlite)")
    migrate_p.add_argument("dst", type=Path,
                           help="destination cache (directory or *.sqlite)")
    migrate_p.add_argument("--src-backend", default=None,
                           choices=("sqlite", "files"),
                           help="source backend when the path is ambiguous")
    migrate_p.add_argument("--dst-backend", default=None,
                           choices=("sqlite", "files"),
                           help="destination backend when the path is "
                                "ambiguous")

    args = parser.parse_args(argv)

    if args.command == "list":
        for experiment_id in list_experiments():
            print(experiment_id)
        return 0

    if args.command == "run":
        ok = _run_one(args.experiment, args)
        return 0 if ok else 1

    if args.command == "run-all":
        all_ok = True
        for experiment_id in list_experiments():
            ok = _run_one(experiment_id, args)
            all_ok &= ok
        print("all shape checks passed" if all_ok
              else "SOME SHAPE CHECKS FAILED")
        return 0 if all_ok else 1

    if args.command == "sweep":
        return _run_sweep_file(args)

    if args.command == "scenario":
        return _run_scenario(args, parser)

    if args.command == "optimize":
        return _run_optimize(args, parser)

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "fuzz":
        return _run_fuzz(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command in ("submit", "status", "fetch", "query"):
        from repro.serve import ServeError

        handlers = {
            "submit": lambda: _run_submit(args),
            "status": lambda: _run_status(args),
            "fetch": lambda: _run_fetch(args),
            "query": lambda: _run_query(args, parser),
        }
        try:
            return handlers[args.command]()
        except (ServeError, TimeoutError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.command == "cache":
        return _run_cache(args, parser)

    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
