"""Sweep orchestration: expand, consult cache, dispatch, assemble.

:func:`run_sweep` is the one entry point the experiments and CLI use:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into points;
2. look every point up in the (optional) content-addressed cache;
3. evaluate the misses -- through the evaluator's *batch companion*
   when it advertises one (one vectorized in-process call over the
   whole miss list; the analytic LoPC evaluators do), otherwise through
   the executor (serial, or a process pool when ``jobs > 1``), in point
   order;
4. persist fresh records back to the cache (so an interrupted sweep
   resumes, and overlapping sweeps share work);
5. assemble a :class:`~repro.sweep.results.SweepResult` whose metadata
   reports cache traffic, total simulator events, and per-point compute
   time -- the numbers benchmark JSONs track across PRs.

Batch and scalar paths produce bit-identical values (the batch solvers
replicate the scalar fixed-point updates with per-point masking), so
records cached by either are interchangeable; ``batch=False`` forces
the scalar path for parity testing and benchmarking.

Telemetry (:mod:`repro.obs`) threads through three keyword arguments --
``metrics``, ``progress``, ``events`` -- merged with any ambient bundle
an enclosing ``obs.telemetry(...)`` block installed (explicit wins).
The bundle is activated around evaluation so every instrumented layer
underneath (solver loops, batch kernels, simulator, executors) reports
into it.  Cache misses are evaluated in chunks *only* when a progress
reporter or event sink is attached -- chunking a batch kernel changes
wall-clock bookkeeping but never values or cache keys, and the
metrics-only path stays single-shot so the disabled/metrics overhead
gate measures the same dispatch shape.
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Union

import numpy as np

from repro.obs import EventLog, MetricsRegistry, Telemetry, as_progress
from repro.obs import context as _obs_context
from repro.sweep.cache import (
    SOLVER_VERSION,
    CacheBackend,
    ResultCache,
    coerce_cache,
    point_key,
)
from repro.sweep.evaluators import (
    evaluate_batch,
    evaluate_batch_warm,
    evaluator_defaults,
    get_batch_evaluator,
    get_evaluator,
    get_warm_evaluator,
    warm_supports_staging,
)
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor
from repro.sweep.results import PointRecord, SweepResult
from repro.sweep.spec import SweepSpec

__all__ = ["run_sweep"]

CacheLike = Union[CacheBackend, ResultCache, str, Path, None]

#: Target number of progress updates over a sweep's cache misses.
_PROGRESS_CHUNKS = 20

#: Keys of the routing split, in reporting order.
_ROUTES = ("cached", "batch", "scalar", "sim")

#: Strides of the coarse-to-fine refinement passes along the primary
#: axis: every 16th point of a column solves cold in the first pass,
#: then each pass halves the spacing, seeded from the states solved so
#: far.  Refinement exists for *wall clock*, not just iteration counts:
#: a handful of wide dispatches keeps the batch kernels' vectorization
#: economics (many narrow sequential chunks lose the iteration savings
#: back to per-dispatch numpy overhead), and interior points are
#: bracketed by donors, so the polynomial interpolates instead of
#: extrapolating.
_WARM_STRIDES = (16, 8, 4, 2, 1)

#: Donor states per seed: the interpolation runs through at most this
#: many solved states nearest along the primary axis.  The damped fixed
#: points converge *linearly* (a constant number of iterations per
#: decade of seed error), so seed quality -- not proximity -- is what
#: buys iterations: copying the neighbouring point's state lands ~1e-2
#: off and saves almost nothing, while a high-degree polynomial through
#: a dozen bracketing states lands orders of magnitude closer (the
#: final refinement pass converges in ~6 iterations vs ~52 cold on the
#: benchmark grid; widening the window past 12 measured flat).
_WARM_WINDOW = 12

#: Reject a synthesised seed that strays more than this relative
#: distance from the nearest donor state (a discontinuity, e.g. a
#: saturation knee, makes polynomial interpolation overshoot); the
#: point falls back to copying that donor.
_WARM_GUARD = 0.5

#: A donor is *ready* to seed dependents inside a staged solve once its
#: relative step residual drops to this (or it retires).  Above solver
#: tolerances -- a seed only moves a point's first iterate, so waiting
#: for full convergence would serialise the refinement passes -- but
#: tight enough that donor error stays below the interpolation error:
#: a looser threshold (1e-6) measurably inflates seeded points'
#: iteration counts, because every lost decade of donor accuracy costs
#: the dependents ~1/log10(damping) extra iterations.
_WARM_READY = 1e-9


def _refinement_level(position: int) -> int:
    """Refinement pass of the ``position``-th point along its column."""
    for level, stride in enumerate(_WARM_STRIDES):
        if position % stride == 0:
            return level
    return len(_WARM_STRIDES) - 1  # unreachable: the last stride is 1


def _lagrange_seeds(xs: np.ndarray, states: np.ndarray,
                    targets: np.ndarray) -> np.ndarray:
    """Guarded polynomial seeds for many columns sharing donor abscissae.

    ``xs`` is the ``(d,)`` donor positions along the primary axis,
    ``states`` the ``(columns, d, dim)`` converged donor states, and
    ``targets`` the ``(t,)`` positions to seed; returns
    ``(columns, t, dim)`` seeds.  For every target: pick the
    :data:`_WARM_WINDOW` donors nearest along the primary axis,
    evaluate the Lagrange interpolating polynomial through them, and
    keep the result only where it is finite, non-negative, and within
    :data:`_WARM_GUARD` relative distance of the nearest donor state --
    otherwise copy that donor.  The window selection and basis weights
    depend only on ``(xs, targets)``, so one evaluation seeds every
    column of a regular grid at once; that batching is what makes
    synthesising a thousand seeds cheaper than the solver iterations
    they save.
    """
    xs, first = np.unique(xs, return_index=True)  # drop duplicate abscissae
    states = states[:, first, :]
    distance = np.abs(xs[np.newaxis, :] - targets[:, np.newaxis])  # (t, d)
    nearest = states[:, np.argmin(distance, axis=1), :]  # (columns, t, dim)
    k = min(_WARM_WINDOW, len(xs))
    if k < 2:
        return nearest.copy()
    window = np.argpartition(distance, k - 1, axis=1)[:, :k]  # (t, k)
    nodes = xs[window]
    diff = targets[:, np.newaxis] - nodes
    pairwise = nodes[:, :, np.newaxis] - nodes[:, np.newaxis, :]
    pairwise[:, np.arange(k), np.arange(k)] = 1.0
    # Lagrange basis: prod_{j != i}(x - x_j) / prod_{j != i}(x_i - x_j).
    # A target coinciding with a node makes this 0/0 -> NaN, which the
    # finiteness guard routes to the nearest-donor copy -- the exact
    # value of that node.
    with np.errstate(divide="ignore", invalid="ignore"):
        weights = (
            diff.prod(axis=1, keepdims=True) / diff
        ) / pairwise.prod(axis=2)
        seeds = np.einsum("tk,ctkd->ctd", weights, states[:, window, :])
    deviation = np.max(
        np.abs(seeds - nearest) / np.maximum(1.0, np.abs(nearest)),
        axis=2,
    )
    keep = (
        np.isfinite(seeds).all(axis=2)
        & (seeds >= 0.0).all(axis=2)
        & (deviation <= _WARM_GUARD)
    )
    return np.where(keep[:, :, np.newaxis], seeds, nearest)


def _column_seeds(donors: "list[tuple[float, np.ndarray]]",
                  targets: np.ndarray) -> "list[np.ndarray]":
    """Seeds for one column's ``targets`` (see :func:`_lagrange_seeds`)."""
    shape = donors[0][1].shape
    xs = np.array([x for x, _ in donors])
    states = np.stack([state for _, state in donors])
    seeds = _lagrange_seeds(
        xs, states.reshape(1, len(donors), -1), targets
    )[0]
    return [row.reshape(shape).copy() for row in seeds]


def _sig_value(value):
    """A hashable stand-in for a parameter value in a signature tuple."""
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


class _WarmScheduler:
    """Orders cache misses and synthesises per-point solver seeds.

    Misses are grouped by *categorical signature* -- every varying
    parameter that is not numeric, plus any keyset difference -- and
    points sharing every coordinate but the first ordered numeric
    parameter (the *primary* axis, spec-axis order first) form a column
    along it.  Each column is scheduled coarse-to-fine
    (:data:`_WARM_STRIDES`): the sparse first pass solves cold, later
    passes are seeded by guarded polynomial interpolation
    (:func:`_lagrange_seeds`) through the nearest already-converged states
    of the same column, which by construction *bracket* them.  The
    passes are the chunk boundaries (:attr:`boundaries`), so each
    dispatch stays wide enough for the batch kernels to vectorize over.
    Columns with a single usable donor copy it; columns with none copy
    the nearest solved point of the same signature in span-normalized
    parameter space; points with no usable donor start cold (seed
    ``None``).  Seeding never crosses signatures, so a method or
    structure change along a sweep is a natural cold-start boundary.
    """

    def __init__(self, spec: SweepSpec,
                 misses: "list[tuple[int, str, dict]]") -> None:
        params_list = [params for _, _, params in misses]
        first_keys = params_list[0].keys()
        uniform = all(p.keys() == first_keys for p in params_list)
        if uniform:
            keysets = [frozenset(first_keys)] * len(params_list)
        else:
            keysets = [frozenset(p) for p in params_list]
        common = frozenset.intersection(*keysets)
        numeric_names = set()
        numeric_values: dict[str, np.ndarray] = {}
        varying = []  # common non-numeric keys whose values differ
        for name in common:
            values = [p[name] for p in params_list]
            try:
                arr = np.asarray(values)
            except ValueError:  # ragged sequence values
                arr = None
            if (arr is not None and arr.ndim == 1
                    and arr.dtype.kind in "iuf"):  # bools ('b') fall out
                if np.unique(arr).size >= 2:
                    numeric_names.add(name)
                    numeric_values[name] = arr.astype(float)
                continue
            first = _sig_value(values[0])
            if any(_sig_value(v) != first for v in values[1:]):
                varying.append(name)
        varying.sort()
        axis_order = [
            name
            for axis in spec.axes
            for name in axis.names
            if name in numeric_names
        ]
        self.numeric = axis_order + sorted(numeric_names - set(axis_order))
        coords: "list[tuple]"
        if self.numeric:
            coords = [
                tuple(row)
                for row in np.column_stack(
                    [numeric_values[name] for name in self.numeric]
                ).tolist()
            ]
        else:
            coords = [()] * len(misses)
        # The signature is a cheap per-point tuple (constant params are
        # dropped; a repr over every item measurably dragged on dense
        # grids): a keyset id, the varying categorical values, and --
        # only for points whose keyset differs from the intersection --
        # the sorted extra items.
        if uniform and not varying:
            entries = [
                ((0,), coord, miss) for coord, miss in zip(coords, misses)
            ]
        else:
            keyset_ids: dict[frozenset, int] = {}
            entries = []
            for i, miss in enumerate(misses):
                params = miss[2]
                kid = keyset_ids.setdefault(keysets[i], len(keyset_ids))
                signature = (kid,) + tuple(
                    _sig_value(params[name]) for name in varying
                )
                if keysets[i] != common:
                    signature += tuple(sorted(
                        (key, _sig_value(params[key]))
                        for key in keysets[i] - common
                    ))
                entries.append((signature, coords[i], miss))
        if self.numeric:
            columns: dict[tuple, list] = {}
            for entry in entries:
                signature, coord, _ = entry
                columns.setdefault((signature,) + coord[1:], []).append(entry)
            leveled = []
            for column in columns.values():
                column.sort(key=lambda entry: entry[1][0])
                for position, entry in enumerate(column):
                    leveled.append((_refinement_level(position),) + entry)
            # repr() the signature for the sort only: tuples of unlike
            # lengths/types (keyset extras) do not compare directly.
            leveled.sort(key=lambda item: (item[0], repr(item[1]), item[2]))
            self.entries = [item[1:] for item in leveled]
            #: Refinement level per entry of :attr:`order` (staging input).
            self.levels = [item[0] for item in leveled]
            lo = 0
            #: Chunk ranges over :attr:`order`, one per refinement pass.
            self.boundaries: list[tuple[int, int]] = []
            for level in range(len(_WARM_STRIDES)):
                hi = lo + sum(1 for item in leveled if item[0] == level)
                if hi > lo:
                    self.boundaries.append((lo, hi))
                lo = hi
            coords = np.array([coord for _, coord, _ in self.entries])
            spans = coords.max(axis=0) - coords.min(axis=0)
            self._spans = np.where(spans > 0.0, spans, 1.0)
        else:
            entries.sort(key=lambda entry: (repr(entry[0]), entry[1]))
            self.entries = entries
            self.boundaries = [(0, len(entries))] if entries else []
            self.levels = [0] * len(entries)
            self._spans = None
        #: The misses in evaluation order (seeding works front to back).
        self.order = [miss for _, _, miss in self.entries]
        self._columns: dict[tuple, list[tuple[float, np.ndarray]]] = {}
        self._solved: dict[tuple, list[tuple[tuple, np.ndarray]]] = {}

    def seeds(self, lo: int, hi: int) -> "list[np.ndarray | None]":
        """Seeds for ``order[lo:hi]`` from the state absorbed so far.

        Vectorized across columns: every target in a column shares the
        same donor pool, and on a regular grid every column of a pass
        shares the same donor *positions* and target positions, so the
        window selection, Lagrange weights and guard all run as one
        batched numpy computation per cluster of alike columns
        (:func:`_lagrange_seeds`) -- per-point Python seeding
        measurably ate the kernel-side iteration savings on dense
        grids.
        """
        out: "list[np.ndarray | None]" = [None] * (hi - lo)
        if not self.numeric:
            return out
        groups: dict[tuple, list[int]] = {}
        for offset, (signature, coord, _) in enumerate(self.entries[lo:hi]):
            groups.setdefault((signature,) + coord[1:], []).append(offset)
        clusters: dict[tuple, list[tuple[list[int], list]]] = {}
        for column, offsets in groups.items():
            donors = self._columns.get(column)
            if not donors:
                for o in offsets:
                    signature, coord, _ = self.entries[lo + o]
                    out[o] = self._nearest_solved(signature, coord)
                continue
            xs = tuple(x for x, _ in donors)
            targets = tuple(self.entries[lo + o][1][0] for o in offsets)
            shape = donors[0][1].shape
            clusters.setdefault((xs, targets, shape), []).append(
                (offsets, donors)
            )
        for (xs, targets, shape), members in clusters.items():
            stacked = np.array(
                [[state for _, state in donors] for _, donors in members]
            )
            seeds = _lagrange_seeds(
                np.array(xs),
                stacked.reshape(len(members), len(xs), -1),
                np.array(targets),
            )
            for (offsets, _), rows in zip(members, seeds):
                for o, row in zip(offsets, rows):
                    out[o] = row.reshape(shape).copy()
        return out

    def _nearest_solved(self, signature: tuple,
                        coord: tuple) -> "np.ndarray | None":
        """Copy the closest solved same-signature point (any column)."""
        solved = self._solved.get(signature)
        if not solved:
            return None
        target = np.asarray(coord)
        nearest = min(
            solved,
            key=lambda donor: float(np.sum(
                ((np.asarray(donor[0]) - target) / self._spans) ** 2
            )),
        )
        return nearest[1].copy()

    def absorb(self, lo: int, hi: int, states: "list[object]") -> None:
        """Record the converged states of ``order[lo:hi]`` for later seeds."""
        # One batched finiteness check per state shape: a per-point
        # ``np.isfinite(...).all()`` costs more than the seeds save on
        # the evaluators whose whole batch solve is a few milliseconds.
        by_shape: dict[tuple, list[tuple[int, np.ndarray]]] = {}
        for offset, state in enumerate(states):
            if state is None:
                continue
            arr = np.asarray(state, dtype=float)
            by_shape.setdefault(arr.shape, []).append((offset, arr))
        for shaped in by_shape.values():
            block = np.stack([arr for _, arr in shaped])
            finite = np.isfinite(block.reshape(len(shaped), -1)).all(axis=1)
            for (offset, arr), ok in zip(shaped, finite):
                if not ok:
                    continue
                signature, coord, _ = self.entries[lo + offset]
                if self.numeric:
                    column = (signature,) + coord[1:]
                    self._columns.setdefault(column, []).append(
                        (coord[0], arr)
                    )
                self._solved.setdefault(signature, []).append((coord, arr))

    def stager(self) -> "_WarmStager | None":
        """An in-solve activation stager over :attr:`order`, or ``None``.

        ``None`` when there is nothing to stage (no numeric axis, or a
        single refinement pass), in which case the caller should fall
        back to the chunked pass-by-pass dispatch.
        """
        if not self.numeric or len(self.boundaries) < 2:
            return None
        return _WarmStager(self)


class _StageGroup:
    """One column's points at one refinement level, awaiting donors."""

    __slots__ = ("rows", "targets", "donor_rows", "donor_xs", "pending")

    def __init__(self, rows, targets, donor_rows, donor_xs):
        self.rows = rows
        self.targets = targets
        self.donor_rows = donor_rows
        self.donor_xs = donor_xs
        self.pending = len(donor_rows)


class _WarmStager:
    """Stages point activation inside one batched fixed-point solve.

    The pass-by-pass warm loop pays one solver call per refinement
    level, and every pass runs as long as its slowest point -- a
    handful of hard points near a saturation knee pin each pass at
    near-cold depth, so the passes' tails serialise.  Staging instead
    hands the *whole* miss set to one masked solve: level-0 points
    start active (cold), every finer-level group stays dormant until
    each of its donor points is *ready* -- retired, or within
    :data:`_WARM_READY` relative residual -- and then activates with
    guarded polynomial seeds interpolated from the donors' current
    iterates (:func:`_lagrange_seeds`).  Columns progress
    independently, so one column's straggler no longer stalls
    another's refinement, and the per-call dispatch cost is paid once.

    Implements the ``stager`` protocol of
    :func:`repro.core.solver.solve_fixed_point_batch`:
    :attr:`initial_active` plus :meth:`poll`.  A donor that diverges
    never turns ready; its dependents are force-activated cold by the
    solver once every active point retires, so staging cannot stall a
    solve.  Seeds from nearly-converged donors are safe for the same
    reason all warm seeds are: a seed only moves a point's first
    iterate, never the fixed point it converges to.
    """

    def __init__(self, scheduler: _WarmScheduler) -> None:
        entries = scheduler.entries
        levels = scheduler.levels
        n = len(entries)
        self.initial_active = np.array([lvl == 0 for lvl in levels])
        #: Points handed finite seeds at activation (telemetry).
        self.seeded = 0
        columns: dict[tuple, list[int]] = {}
        for i, (signature, coord, _) in enumerate(entries):
            columns.setdefault((signature,) + coord[1:], []).append(i)
        self._groups: list[_StageGroup] = []
        #: donor row -> indices of groups waiting on it.
        self._watchers: dict[int, list[int]] = {}
        self._watched = np.zeros(n, dtype=bool)
        self._ready = np.zeros(n, dtype=bool)
        for members in columns.values():
            by_level: dict[int, list[int]] = {}
            for i in members:
                by_level.setdefault(levels[i], []).append(i)
            if len(by_level) < 2:
                continue  # single-level column: all points start active
            # Position 0 of every column is level 0, so each group's
            # donor pool (every coarser level of the column) is
            # non-empty by construction.
            donor_rows: list[int] = by_level[0]
            for level in sorted(by_level)[1:]:
                rows = by_level[level]
                group = _StageGroup(
                    rows=np.array(rows, dtype=np.int64),
                    targets=np.array([entries[i][1][0] for i in rows]),
                    donor_rows=np.array(donor_rows, dtype=np.int64),
                    donor_xs=np.array(
                        [entries[i][1][0] for i in donor_rows]
                    ),
                )
                index = len(self._groups)
                self._groups.append(group)
                for donor in donor_rows:
                    self._watched[donor] = True
                    self._watchers.setdefault(donor, []).append(index)
                donor_rows = donor_rows + rows

    def poll(self, x, residuals, active, dormant):
        """Activations triggered by donors that became ready this step.

        Yields ``(rows, seeds)`` for every group whose last pending
        donor just turned ready.  A retired-but-diverged donor counts
        as ready too: its non-finite state propagates through the seed
        guards into non-finite seed rows, which the solver starts cold
        -- strictly better than holding the group dormant.
        """
        fresh = (
            self._watched
            & ~self._ready
            & ~dormant
            & (~active | (residuals <= _WARM_READY))
        )
        if not fresh.any():
            return
        self._ready |= fresh
        for donor in np.flatnonzero(fresh):
            for index in self._watchers[donor]:
                group = self._groups[index]
                group.pending -= 1
                if group.pending == 0:
                    yield self._activate(group, x)

    def _activate(self, group: _StageGroup, x: np.ndarray):
        donors = x[group.donor_rows]
        seeds = _lagrange_seeds(
            group.donor_xs,
            donors.reshape(1, len(donors), -1),
            group.targets,
        )[0].reshape((len(group.rows),) + donors.shape[1:])
        self.seeded += int(
            np.isfinite(seeds.reshape(len(seeds), -1)).all(axis=1).sum()
        )
        return group.rows, seeds


def _resolve_telemetry(
    metrics: "MetricsRegistry | bool | None",
    progress: object,
    events: object,
) -> tuple[Telemetry, bool]:
    """Merge explicit telemetry arguments with the ambient bundle.

    Explicit arguments win; ``None`` falls back to whatever an enclosing
    ``obs.telemetry(...)`` block installed.  ``metrics=True`` creates a
    fresh registry (read it back from ``SweepResult`` metadata).
    Returns the bundle plus whether this call opened the event sink
    (and therefore must close it).
    """
    ambient = _obs_context.active()
    if metrics is True:
        registry = MetricsRegistry()
    elif metrics is False:
        registry = None
    elif metrics is not None:
        registry = metrics
    else:
        registry = ambient.metrics if ambient is not None else None
    own_events = False
    if events is not None:
        own_events = not isinstance(events, EventLog)
        log = EventLog.coerce(events)
    else:
        log = ambient.events if ambient is not None else None
    if progress is not None:
        reporter = as_progress(progress)
    else:
        reporter = ambient.progress if ambient is not None else None
    tel = Telemetry(metrics=registry, events=log, progress=reporter)
    return tel, own_events


def _route(meta: dict) -> str:
    """Which path produced a record: cached / batch / scalar / sim."""
    if meta.get("cached"):
        return "cached"
    if meta.get("batched"):
        return "batch"
    if "events" in meta:
        return "sim"
    return "scalar"


def run_sweep(
    spec: SweepSpec,
    *,
    cache: CacheLike = None,
    jobs: int = 1,
    executor: Union[SerialExecutor, ParallelExecutor, None] = None,
    batch: bool = True,
    warm_start: bool = False,
    metrics: "MetricsRegistry | bool | None" = None,
    progress: object = None,
    events: object = None,
) -> SweepResult:
    """Evaluate every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    spec:
        The sweep description.  ``spec.evaluator`` must be registered
        (checked up front, before any work is dispatched).
    cache:
        A cache backend (:class:`ResultCache`,
        :class:`~repro.sweep.cache.SqliteCache`, or anything satisfying
        :class:`~repro.sweep.cache.CacheBackend`), a cache *directory*,
        a ``*.sqlite`` path, or ``None`` (no caching); see
        :func:`~repro.sweep.cache.coerce_cache`.  Pass an instance to
        read hit/miss statistics after the run -- they accumulate on
        ``cache.stats`` and the run's share lands in the result
        metadata.
    jobs:
        Worker processes for cache-miss evaluation.  ``1`` (default)
        runs serially in-process; ``0`` means one worker per CPU.
        Ignored when ``executor`` is given, and by evaluators that take
        the vectorized batch path.
    executor:
        Explicit executor instance (overrides ``jobs``).  Passing one is
        an instruction to dispatch through it, so it also disables the
        batch fast path.
    batch:
        If True (default) and the evaluator advertises a batch
        companion, all cache misses are evaluated in one vectorized
        in-process call (bit-identical values, no pool dispatch).
        ``False`` forces per-point evaluation through the executor.
    warm_start:
        If True and the evaluator advertises a warm-start companion
        (the analytic LoPC evaluators do), cache misses are reordered
        along the swept numeric axes and evaluated in chunks, each
        chunk's solver iterations seeded by polynomial extrapolation of
        the previously converged chunks' states -- same fixed points to
        within solver tolerance, in roughly half the AMVA iterations on
        dense grids.  Warm-starting is an execution strategy, not a
        model parameter: cache keys are unchanged, so warm and cold
        records are interchangeable.  The default ``False`` preserves
        the cold path bit for bit.  Ignored (cold path) for evaluators
        without a warm companion, and when ``batch``/``executor``
        disable the batch fast path.
    metrics:
        A :class:`~repro.obs.MetricsRegistry`, ``True`` for a fresh one,
        or ``None`` to inherit the ambient bundle's.  The registry
        snapshot is folded into the result metadata under
        ``"telemetry"``.
    progress:
        A :class:`~repro.obs.ProgressReporter`, a bare ``(done, total,
        info)`` callable, or ``None``.  Attaching one switches miss
        evaluation to chunks so updates arrive while the sweep runs.
    events:
        An :class:`~repro.obs.EventLog`, a JSONL path, an open file, or
        ``None``.  A path opened here is closed before returning.

    Telemetry never changes results: enabled and disabled runs produce
    byte-identical value tables and cache keys (asserted by the
    bit-identity tests).
    """
    tel, own_events = _resolve_telemetry(metrics, progress, events)
    if not tel.enabled:
        return _run_sweep(spec, cache, jobs, executor, batch, warm_start, None)
    try:
        with _obs_context.activate(tel):
            return _run_sweep(
                spec, cache, jobs, executor, batch, warm_start, tel
            )
    finally:
        if own_events and tel.events is not None:
            tel.events.close()


def _run_sweep(
    spec: SweepSpec,
    cache: CacheLike,
    jobs: int,
    executor: Union[SerialExecutor, ParallelExecutor, None],
    batch: bool,
    warm_start: bool,
    tel: Telemetry | None,
) -> SweepResult:
    get_evaluator(spec.evaluator)  # fail fast on unknown evaluators
    defaults = evaluator_defaults(spec.evaluator)
    use_batch = batch and executor is None
    if executor is None:
        executor = get_executor(jobs)
    store = coerce_cache(cache)
    registry = tel.metrics if tel is not None else None

    started = time.perf_counter()
    writes_before = store.stats.writes if store is not None else 0
    points = spec.points()
    records: dict[int, PointRecord] = {}
    misses: list[tuple[int, str, dict]] = []  # (index, key, params)

    span = (
        registry.span("sweep.run") if registry is not None else nullcontext()
    )
    with span:
        for point in points:
            # Fill in the evaluator's declared defaults so omitted and
            # explicit-default parameters share one cache record.
            params = point.params
            params.update(
                (k, v) for k, v in defaults.items() if k not in params
            )
            # Content hashing is pure overhead without a store (~20% of
            # the batch fast path's wall time on dense analytic grids).
            key = (
                point_key(spec.evaluator, params) if store is not None else None
            )
            cached = store.get(key) if store is not None else None
            if cached is not None:
                records[point.index] = PointRecord(
                    index=point.index,
                    params=params,
                    values=cached.get("values", {}),
                    meta=dict(cached.get("meta", {}), cached=True, key=key),
                )
            else:
                misses.append((point.index, key, params))

        batch_func = get_batch_evaluator(spec.evaluator) if use_batch else None
        warm_func = (
            get_warm_evaluator(spec.evaluator)
            if warm_start and use_batch
            else None
        )
        total = len(points)
        hits = total - len(misses)

        def absorb(index: int, key: "str | None", params: dict,
                   outcome: dict) -> None:
            values, meta = outcome["values"], outcome["meta"]
            if store is not None:
                store.put(
                    key,
                    {
                        "evaluator": spec.evaluator,
                        "params": params,
                        "values": values,
                        "meta": meta,
                        "solver_version": SOLVER_VERSION,
                    },
                )
            fresh_meta = dict(meta, cached=False)
            if key is not None:
                fresh_meta["key"] = key
            records[index] = PointRecord(
                index=index,
                params=params,
                values=values,
                meta=fresh_meta,
            )

        def evaluate(chunk: "list[tuple[int, str, dict]]") -> list[dict]:
            params_list = [p for _, _, p in chunk]
            if batch_func is not None:
                return evaluate_batch(spec.evaluator, params_list)
            return executor.map([(spec.evaluator, p) for p in params_list])

        def report(done: int, eta: "float | None") -> None:
            if tel is None or tel.progress is None:
                return
            routing = dict.fromkeys(_ROUTES, 0)
            for record in records.values():
                routing[_route(record.meta)] += 1
            tel.progress.update(
                done,
                total,
                {
                    "spec": spec.name,
                    "cache_hits": hits if store is not None else 0,
                    "routing": routing,
                    "eta": eta,
                },
            )

        if tel is not None and tel.events is not None:
            tel.events.emit(
                "sweep.start",
                spec=spec.name,
                evaluator=spec.evaluator,
                points=total,
                cache_hits=hits if store is not None else 0,
                cache_misses=len(misses),
                batched=batch_func is not None,
            )

        # Chunked evaluation exists for live feedback only: the
        # metrics-only (and disabled) paths keep the one-shot dispatch
        # the overhead gate times.  Chunking the batch kernels is safe
        # because per-point masking makes every point's trajectory
        # independent of its batch-mates.  The warm-start path is
        # *always* chunked, at the scheduler's refinement passes --
        # later passes are seeded from earlier passes' converged
        # states, so the feedback loop needs exactly those boundaries
        # (and each pass stays wide enough to vectorize over).
        live = tel is not None and (
            tel.progress is not None or tel.events is not None
        )
        warm_stats: "dict[str, object] | None" = None
        if warm_func is not None and misses:
            scheduler = _WarmScheduler(spec, misses)
            done = hits
            report(done, None)
            miss_started = time.perf_counter()
            seeded_total = 0
            chunk_seeded: list[int] = []
            stager = (
                scheduler.stager()
                if warm_supports_staging(spec.evaluator)
                else None
            )
            if stager is not None:
                # Staged activation: every refinement pass rides one
                # solver call -- later levels sit dormant inside the
                # masked solve and wake with interpolated seeds as
                # their donors converge, so one column's straggler
                # cannot pin every pass's depth and the per-call
                # dispatch cost is paid once.
                chunk = scheduler.order
                fresh, _ = evaluate_batch_warm(
                    spec.evaluator,
                    [p for _, _, p in chunk],
                    [None] * len(chunk),
                    stager=stager,
                )
                for (index, key, params), outcome in zip(chunk, fresh):
                    absorb(index, key, params, outcome)
                seeded_total = stager.seeded
                chunk_seeded.append(seeded_total)
                done = total
                if tel is not None and tel.events is not None:
                    tel.events.emit(
                        "sweep.chunk",
                        spec=spec.name,
                        done=done,
                        total=total,
                        chunk_points=len(chunk),
                        eta=0.0,
                    )
                report(done, 0.0)
            else:
                for lo, hi in scheduler.boundaries:
                    chunk = scheduler.order[lo:hi]
                    seeds = scheduler.seeds(lo, hi)
                    fresh, states = evaluate_batch_warm(
                        spec.evaluator, [p for _, _, p in chunk], seeds
                    )
                    scheduler.absorb(lo, hi, states)
                    for (index, key, params), outcome in zip(chunk, fresh):
                        absorb(index, key, params, outcome)
                    n_seeded = sum(1 for seed in seeds if seed is not None)
                    seeded_total += n_seeded
                    chunk_seeded.append(n_seeded)
                    done += len(chunk)
                    done_misses = done - hits
                    elapsed_miss = time.perf_counter() - miss_started
                    eta = (
                        (len(misses) - done_misses)
                        * elapsed_miss / done_misses
                        if done_misses
                        else None
                    )
                    if tel is not None and tel.events is not None:
                        tel.events.emit(
                            "sweep.chunk",
                            spec=spec.name,
                            done=done,
                            total=total,
                            chunk_points=len(chunk),
                            eta=eta,
                        )
                    report(done, eta)
            warm_stats = {
                "chunks": len(chunk_seeded),
                "seeded": seeded_total,
                "cold": len(misses) - seeded_total,
                "chunk_seeded": chunk_seeded,
            }
            if registry is not None:
                registry.inc("sweep.warm_start.seeded", seeded_total)
                registry.inc(
                    "sweep.warm_start.cold", len(misses) - seeded_total
                )
            if tel is not None and tel.events is not None:
                tel.events.emit(
                    "sweep.warm_start",
                    spec=spec.name,
                    points=len(misses),
                    seeded=seeded_total,
                    cold=len(misses) - seeded_total,
                    chunk_seeded=chunk_seeded,
                )
        elif not live or not misses:
            report(hits, None)
            fresh = evaluate(misses)
            for (index, key, params), outcome in zip(misses, fresh):
                absorb(index, key, params, outcome)
            report(total, 0.0 if misses else None)
        else:
            chunk_size = max(1, math.ceil(len(misses) / _PROGRESS_CHUNKS))
            if batch_func is None:
                # Keep pool workers saturated: never dispatch a chunk
                # smaller than one round of tasks per worker.
                chunk_size = max(chunk_size, 4 * getattr(executor, "jobs", 1))
            done = hits
            report(done, None)
            miss_started = time.perf_counter()
            for lo in range(0, len(misses), chunk_size):
                chunk = misses[lo:lo + chunk_size]
                for (index, key, params), outcome in zip(
                    chunk, evaluate(chunk)
                ):
                    absorb(index, key, params, outcome)
                done += len(chunk)
                done_misses = done - hits
                elapsed_miss = time.perf_counter() - miss_started
                eta = (
                    (len(misses) - done_misses) * elapsed_miss / done_misses
                    if done_misses
                    else None
                )
                if tel is not None and tel.events is not None:
                    tel.events.emit(
                        "sweep.chunk",
                        spec=spec.name,
                        done=done,
                        total=total,
                        chunk_points=len(chunk),
                        eta=eta,
                    )
                report(done, eta)

    ordered = tuple(records[point.index] for point in points)
    routing = dict.fromkeys(_ROUTES, 0)
    for record in ordered:
        routing[_route(record.meta)] += 1
    events_total = sum(
        int(r.meta["events"]) for r in ordered if "events" in r.meta
    )
    wall = sum(
        float(r.meta["wall_time"]) for r in ordered if "wall_time" in r.meta
    )
    elapsed = time.perf_counter() - started
    cache_hits = len(ordered) - len(misses) if store is not None else 0
    cache_misses = len(misses) if store is not None else len(ordered)

    if registry is not None:
        registry.inc("sweep.runs")
        registry.inc("sweep.points", len(ordered))
        registry.inc("sweep.cache_hits", cache_hits)
        registry.inc("sweep.cache_misses", cache_misses)

    metadata: dict[str, object] = {
        "spec": spec.name,
        "evaluator": spec.evaluator,
        "points": len(ordered),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_writes": (
            store.stats.writes - writes_before if store is not None else 0
        ),
        "cache_enabled": store is not None,
        "batched": batch_func is not None,
        "jobs": getattr(executor, "jobs", 1),
        "events_processed": events_total,
        "wall_time": wall,
        "elapsed": elapsed,
        "solver_version": SOLVER_VERSION,
        "routing": routing,
    }
    if warm_stats is not None:
        # Only present when the warm path actually ran, so cold-mode
        # metadata stays byte-identical to pre-warm-start runs.
        metadata["warm_start"] = warm_stats
    if store is not None:
        metadata["cache_stats"] = store.stats.as_dict()
    if registry is not None:
        # Snapshot after the span closed so sweep.run's timing is in.
        metadata["telemetry"] = registry.as_dict()

    if tel is not None and tel.events is not None:
        tel.events.emit(
            "sweep.finish",
            spec=spec.name,
            points=len(ordered),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            routing=routing,
            elapsed=elapsed,
        )

    return SweepResult(
        spec_name=spec.name,
        evaluator=spec.evaluator,
        records=ordered,
        metadata=metadata,
    )
