"""Sweep orchestration: expand, consult cache, dispatch, assemble.

:func:`run_sweep` is the one entry point the experiments and CLI use:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into points;
2. look every point up in the (optional) content-addressed cache;
3. ship the misses to the executor (serial, or a process pool when
   ``jobs > 1``), in point order;
4. persist fresh records back to the cache (so an interrupted sweep
   resumes, and overlapping sweeps share work);
5. assemble a :class:`~repro.sweep.results.SweepResult` whose metadata
   reports cache traffic, total simulator events, and per-point compute
   time -- the numbers benchmark JSONs track across PRs.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Union

from repro.sweep.cache import SOLVER_VERSION, ResultCache, point_key
from repro.sweep.evaluators import evaluator_defaults, get_evaluator
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor
from repro.sweep.results import PointRecord, SweepResult
from repro.sweep.spec import SweepSpec

__all__ = ["run_sweep"]

CacheLike = Union[ResultCache, str, Path, None]


def run_sweep(
    spec: SweepSpec,
    *,
    cache: CacheLike = None,
    jobs: int = 1,
    executor: Union[SerialExecutor, ParallelExecutor, None] = None,
) -> SweepResult:
    """Evaluate every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    spec:
        The sweep description.  ``spec.evaluator`` must be registered
        (checked up front, before any work is dispatched).
    cache:
        A :class:`ResultCache`, a cache *directory*, or ``None`` (no
        caching).  Pass an instance to read hit/miss statistics after
        the run -- they accumulate on ``cache.stats``.
    jobs:
        Worker processes for cache-miss evaluation.  ``1`` (default)
        runs serially in-process; ``0`` means one worker per CPU.
        Ignored when ``executor`` is given.
    executor:
        Explicit executor instance (overrides ``jobs``).
    """
    get_evaluator(spec.evaluator)  # fail fast on unknown evaluators
    defaults = evaluator_defaults(spec.evaluator)
    if executor is None:
        executor = get_executor(jobs)
    store = ResultCache.coerce(cache)

    started = time.perf_counter()
    points = spec.points()
    records: dict[int, PointRecord] = {}
    misses: list[tuple[int, str, dict]] = []  # (index, key, params)

    for point in points:
        # Fill in the evaluator's declared defaults so omitted and
        # explicit-default parameters share one cache record.
        params = point.params
        params.update((k, v) for k, v in defaults.items() if k not in params)
        key = point_key(spec.evaluator, params)
        cached = store.get(key) if store is not None else None
        if cached is not None:
            records[point.index] = PointRecord(
                index=point.index,
                params=params,
                values=cached.get("values", {}),
                meta=dict(cached.get("meta", {}), cached=True, key=key),
            )
        else:
            misses.append((point.index, key, params))

    fresh = executor.map([(spec.evaluator, params) for _, _, params in misses])
    for (index, key, params), outcome in zip(misses, fresh):
        values, meta = outcome["values"], outcome["meta"]
        if store is not None:
            store.put(
                key,
                {
                    "evaluator": spec.evaluator,
                    "params": params,
                    "values": values,
                    "meta": meta,
                    "solver_version": SOLVER_VERSION,
                },
            )
        records[index] = PointRecord(
            index=index,
            params=params,
            values=values,
            meta=dict(meta, cached=False, key=key),
        )

    ordered = tuple(records[point.index] for point in points)
    events = sum(
        int(r.meta["events"]) for r in ordered if "events" in r.meta
    )
    wall = sum(
        float(r.meta["wall_time"]) for r in ordered if "wall_time" in r.meta
    )
    metadata: dict[str, object] = {
        "spec": spec.name,
        "evaluator": spec.evaluator,
        "points": len(ordered),
        "cache_hits": len(ordered) - len(misses) if store is not None else 0,
        "cache_misses": len(misses) if store is not None else len(ordered),
        "cache_enabled": store is not None,
        "jobs": getattr(executor, "jobs", 1),
        "events_processed": events,
        "wall_time": wall,
        "elapsed": time.perf_counter() - started,
        "solver_version": SOLVER_VERSION,
    }
    return SweepResult(
        spec_name=spec.name,
        evaluator=spec.evaluator,
        records=ordered,
        metadata=metadata,
    )
