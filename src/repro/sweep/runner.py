"""Sweep orchestration: expand, consult cache, dispatch, assemble.

:func:`run_sweep` is the one entry point the experiments and CLI use:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into points;
2. look every point up in the (optional) content-addressed cache;
3. evaluate the misses -- through the evaluator's *batch companion*
   when it advertises one (one vectorized in-process call over the
   whole miss list; the analytic LoPC evaluators do), otherwise through
   the executor (serial, or a process pool when ``jobs > 1``), in point
   order;
4. persist fresh records back to the cache (so an interrupted sweep
   resumes, and overlapping sweeps share work);
5. assemble a :class:`~repro.sweep.results.SweepResult` whose metadata
   reports cache traffic, total simulator events, and per-point compute
   time -- the numbers benchmark JSONs track across PRs.

Batch and scalar paths produce bit-identical values (the batch solvers
replicate the scalar fixed-point updates with per-point masking), so
records cached by either are interchangeable; ``batch=False`` forces
the scalar path for parity testing and benchmarking.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Union

from repro.sweep.cache import SOLVER_VERSION, ResultCache, point_key
from repro.sweep.evaluators import (
    evaluate_batch,
    evaluator_defaults,
    get_batch_evaluator,
    get_evaluator,
)
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor
from repro.sweep.results import PointRecord, SweepResult
from repro.sweep.spec import SweepSpec

__all__ = ["run_sweep"]

CacheLike = Union[ResultCache, str, Path, None]


def run_sweep(
    spec: SweepSpec,
    *,
    cache: CacheLike = None,
    jobs: int = 1,
    executor: Union[SerialExecutor, ParallelExecutor, None] = None,
    batch: bool = True,
) -> SweepResult:
    """Evaluate every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    spec:
        The sweep description.  ``spec.evaluator`` must be registered
        (checked up front, before any work is dispatched).
    cache:
        A :class:`ResultCache`, a cache *directory*, or ``None`` (no
        caching).  Pass an instance to read hit/miss statistics after
        the run -- they accumulate on ``cache.stats``.
    jobs:
        Worker processes for cache-miss evaluation.  ``1`` (default)
        runs serially in-process; ``0`` means one worker per CPU.
        Ignored when ``executor`` is given, and by evaluators that take
        the vectorized batch path.
    executor:
        Explicit executor instance (overrides ``jobs``).  Passing one is
        an instruction to dispatch through it, so it also disables the
        batch fast path.
    batch:
        If True (default) and the evaluator advertises a batch
        companion, all cache misses are evaluated in one vectorized
        in-process call (bit-identical values, no pool dispatch).
        ``False`` forces per-point evaluation through the executor.
    """
    get_evaluator(spec.evaluator)  # fail fast on unknown evaluators
    defaults = evaluator_defaults(spec.evaluator)
    use_batch = batch and executor is None
    if executor is None:
        executor = get_executor(jobs)
    store = ResultCache.coerce(cache)

    started = time.perf_counter()
    points = spec.points()
    records: dict[int, PointRecord] = {}
    misses: list[tuple[int, str, dict]] = []  # (index, key, params)

    for point in points:
        # Fill in the evaluator's declared defaults so omitted and
        # explicit-default parameters share one cache record.
        params = point.params
        params.update((k, v) for k, v in defaults.items() if k not in params)
        # Content hashing is pure overhead without a store (~20% of the
        # batch fast path's wall time on dense analytic grids).
        key = point_key(spec.evaluator, params) if store is not None else None
        cached = store.get(key) if store is not None else None
        if cached is not None:
            records[point.index] = PointRecord(
                index=point.index,
                params=params,
                values=cached.get("values", {}),
                meta=dict(cached.get("meta", {}), cached=True, key=key),
            )
        else:
            misses.append((point.index, key, params))

    batch_func = get_batch_evaluator(spec.evaluator) if use_batch else None
    if batch_func is not None:
        fresh = evaluate_batch(
            spec.evaluator, [params for _, _, params in misses]
        )
    else:
        fresh = executor.map(
            [(spec.evaluator, params) for _, _, params in misses]
        )
    for (index, key, params), outcome in zip(misses, fresh):
        values, meta = outcome["values"], outcome["meta"]
        if store is not None:
            store.put(
                key,
                {
                    "evaluator": spec.evaluator,
                    "params": params,
                    "values": values,
                    "meta": meta,
                    "solver_version": SOLVER_VERSION,
                },
            )
        fresh_meta = dict(meta, cached=False)
        if key is not None:
            fresh_meta["key"] = key
        records[index] = PointRecord(
            index=index,
            params=params,
            values=values,
            meta=fresh_meta,
        )

    ordered = tuple(records[point.index] for point in points)
    events = sum(
        int(r.meta["events"]) for r in ordered if "events" in r.meta
    )
    wall = sum(
        float(r.meta["wall_time"]) for r in ordered if "wall_time" in r.meta
    )
    metadata: dict[str, object] = {
        "spec": spec.name,
        "evaluator": spec.evaluator,
        "points": len(ordered),
        "cache_hits": len(ordered) - len(misses) if store is not None else 0,
        "cache_misses": len(misses) if store is not None else len(ordered),
        "cache_enabled": store is not None,
        "batched": batch_func is not None,
        "jobs": getattr(executor, "jobs", 1),
        "events_processed": events,
        "wall_time": wall,
        "elapsed": time.perf_counter() - started,
        "solver_version": SOLVER_VERSION,
    }
    return SweepResult(
        spec_name=spec.name,
        evaluator=spec.evaluator,
        records=ordered,
        metadata=metadata,
    )
