"""Sweep orchestration: expand, consult cache, dispatch, assemble.

:func:`run_sweep` is the one entry point the experiments and CLI use:

1. expand the :class:`~repro.sweep.spec.SweepSpec` into points;
2. look every point up in the (optional) content-addressed cache;
3. evaluate the misses -- through the evaluator's *batch companion*
   when it advertises one (one vectorized in-process call over the
   whole miss list; the analytic LoPC evaluators do), otherwise through
   the executor (serial, or a process pool when ``jobs > 1``), in point
   order;
4. persist fresh records back to the cache (so an interrupted sweep
   resumes, and overlapping sweeps share work);
5. assemble a :class:`~repro.sweep.results.SweepResult` whose metadata
   reports cache traffic, total simulator events, and per-point compute
   time -- the numbers benchmark JSONs track across PRs.

Batch and scalar paths produce bit-identical values (the batch solvers
replicate the scalar fixed-point updates with per-point masking), so
records cached by either are interchangeable; ``batch=False`` forces
the scalar path for parity testing and benchmarking.

Telemetry (:mod:`repro.obs`) threads through three keyword arguments --
``metrics``, ``progress``, ``events`` -- merged with any ambient bundle
an enclosing ``obs.telemetry(...)`` block installed (explicit wins).
The bundle is activated around evaluation so every instrumented layer
underneath (solver loops, batch kernels, simulator, executors) reports
into it.  Cache misses are evaluated in chunks *only* when a progress
reporter or event sink is attached -- chunking a batch kernel changes
wall-clock bookkeeping but never values or cache keys, and the
metrics-only path stays single-shot so the disabled/metrics overhead
gate measures the same dispatch shape.
"""

from __future__ import annotations

import math
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Union

from repro.obs import EventLog, MetricsRegistry, Telemetry, as_progress
from repro.obs import context as _obs_context
from repro.sweep.cache import SOLVER_VERSION, ResultCache, point_key
from repro.sweep.evaluators import (
    evaluate_batch,
    evaluator_defaults,
    get_batch_evaluator,
    get_evaluator,
)
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor
from repro.sweep.results import PointRecord, SweepResult
from repro.sweep.spec import SweepSpec

__all__ = ["run_sweep"]

CacheLike = Union[ResultCache, str, Path, None]

#: Target number of progress updates over a sweep's cache misses.
_PROGRESS_CHUNKS = 20

#: Keys of the routing split, in reporting order.
_ROUTES = ("cached", "batch", "scalar", "sim")


def _resolve_telemetry(
    metrics: "MetricsRegistry | bool | None",
    progress: object,
    events: object,
) -> tuple[Telemetry, bool]:
    """Merge explicit telemetry arguments with the ambient bundle.

    Explicit arguments win; ``None`` falls back to whatever an enclosing
    ``obs.telemetry(...)`` block installed.  ``metrics=True`` creates a
    fresh registry (read it back from ``SweepResult`` metadata).
    Returns the bundle plus whether this call opened the event sink
    (and therefore must close it).
    """
    ambient = _obs_context.active()
    if metrics is True:
        registry = MetricsRegistry()
    elif metrics is False:
        registry = None
    elif metrics is not None:
        registry = metrics
    else:
        registry = ambient.metrics if ambient is not None else None
    own_events = False
    if events is not None:
        own_events = not isinstance(events, EventLog)
        log = EventLog.coerce(events)
    else:
        log = ambient.events if ambient is not None else None
    if progress is not None:
        reporter = as_progress(progress)
    else:
        reporter = ambient.progress if ambient is not None else None
    tel = Telemetry(metrics=registry, events=log, progress=reporter)
    return tel, own_events


def _route(meta: dict) -> str:
    """Which path produced a record: cached / batch / scalar / sim."""
    if meta.get("cached"):
        return "cached"
    if meta.get("batched"):
        return "batch"
    if "events" in meta:
        return "sim"
    return "scalar"


def run_sweep(
    spec: SweepSpec,
    *,
    cache: CacheLike = None,
    jobs: int = 1,
    executor: Union[SerialExecutor, ParallelExecutor, None] = None,
    batch: bool = True,
    metrics: "MetricsRegistry | bool | None" = None,
    progress: object = None,
    events: object = None,
) -> SweepResult:
    """Evaluate every point of ``spec`` and return the assembled result.

    Parameters
    ----------
    spec:
        The sweep description.  ``spec.evaluator`` must be registered
        (checked up front, before any work is dispatched).
    cache:
        A :class:`ResultCache`, a cache *directory*, or ``None`` (no
        caching).  Pass an instance to read hit/miss statistics after
        the run -- they accumulate on ``cache.stats`` and the run's
        share lands in the result metadata.
    jobs:
        Worker processes for cache-miss evaluation.  ``1`` (default)
        runs serially in-process; ``0`` means one worker per CPU.
        Ignored when ``executor`` is given, and by evaluators that take
        the vectorized batch path.
    executor:
        Explicit executor instance (overrides ``jobs``).  Passing one is
        an instruction to dispatch through it, so it also disables the
        batch fast path.
    batch:
        If True (default) and the evaluator advertises a batch
        companion, all cache misses are evaluated in one vectorized
        in-process call (bit-identical values, no pool dispatch).
        ``False`` forces per-point evaluation through the executor.
    metrics:
        A :class:`~repro.obs.MetricsRegistry`, ``True`` for a fresh one,
        or ``None`` to inherit the ambient bundle's.  The registry
        snapshot is folded into the result metadata under
        ``"telemetry"``.
    progress:
        A :class:`~repro.obs.ProgressReporter`, a bare ``(done, total,
        info)`` callable, or ``None``.  Attaching one switches miss
        evaluation to chunks so updates arrive while the sweep runs.
    events:
        An :class:`~repro.obs.EventLog`, a JSONL path, an open file, or
        ``None``.  A path opened here is closed before returning.

    Telemetry never changes results: enabled and disabled runs produce
    byte-identical value tables and cache keys (asserted by the
    bit-identity tests).
    """
    tel, own_events = _resolve_telemetry(metrics, progress, events)
    if not tel.enabled:
        return _run_sweep(spec, cache, jobs, executor, batch, None)
    try:
        with _obs_context.activate(tel):
            return _run_sweep(spec, cache, jobs, executor, batch, tel)
    finally:
        if own_events and tel.events is not None:
            tel.events.close()


def _run_sweep(
    spec: SweepSpec,
    cache: CacheLike,
    jobs: int,
    executor: Union[SerialExecutor, ParallelExecutor, None],
    batch: bool,
    tel: Telemetry | None,
) -> SweepResult:
    get_evaluator(spec.evaluator)  # fail fast on unknown evaluators
    defaults = evaluator_defaults(spec.evaluator)
    use_batch = batch and executor is None
    if executor is None:
        executor = get_executor(jobs)
    store = ResultCache.coerce(cache)
    registry = tel.metrics if tel is not None else None

    started = time.perf_counter()
    writes_before = store.stats.writes if store is not None else 0
    points = spec.points()
    records: dict[int, PointRecord] = {}
    misses: list[tuple[int, str, dict]] = []  # (index, key, params)

    span = (
        registry.span("sweep.run") if registry is not None else nullcontext()
    )
    with span:
        for point in points:
            # Fill in the evaluator's declared defaults so omitted and
            # explicit-default parameters share one cache record.
            params = point.params
            params.update(
                (k, v) for k, v in defaults.items() if k not in params
            )
            # Content hashing is pure overhead without a store (~20% of
            # the batch fast path's wall time on dense analytic grids).
            key = (
                point_key(spec.evaluator, params) if store is not None else None
            )
            cached = store.get(key) if store is not None else None
            if cached is not None:
                records[point.index] = PointRecord(
                    index=point.index,
                    params=params,
                    values=cached.get("values", {}),
                    meta=dict(cached.get("meta", {}), cached=True, key=key),
                )
            else:
                misses.append((point.index, key, params))

        batch_func = get_batch_evaluator(spec.evaluator) if use_batch else None
        total = len(points)
        hits = total - len(misses)

        def absorb(index: int, key: "str | None", params: dict,
                   outcome: dict) -> None:
            values, meta = outcome["values"], outcome["meta"]
            if store is not None:
                store.put(
                    key,
                    {
                        "evaluator": spec.evaluator,
                        "params": params,
                        "values": values,
                        "meta": meta,
                        "solver_version": SOLVER_VERSION,
                    },
                )
            fresh_meta = dict(meta, cached=False)
            if key is not None:
                fresh_meta["key"] = key
            records[index] = PointRecord(
                index=index,
                params=params,
                values=values,
                meta=fresh_meta,
            )

        def evaluate(chunk: "list[tuple[int, str, dict]]") -> list[dict]:
            params_list = [p for _, _, p in chunk]
            if batch_func is not None:
                return evaluate_batch(spec.evaluator, params_list)
            return executor.map([(spec.evaluator, p) for p in params_list])

        def report(done: int, eta: "float | None") -> None:
            if tel is None or tel.progress is None:
                return
            routing = dict.fromkeys(_ROUTES, 0)
            for record in records.values():
                routing[_route(record.meta)] += 1
            tel.progress.update(
                done,
                total,
                {
                    "spec": spec.name,
                    "cache_hits": hits if store is not None else 0,
                    "routing": routing,
                    "eta": eta,
                },
            )

        if tel is not None and tel.events is not None:
            tel.events.emit(
                "sweep.start",
                spec=spec.name,
                evaluator=spec.evaluator,
                points=total,
                cache_hits=hits if store is not None else 0,
                cache_misses=len(misses),
                batched=batch_func is not None,
            )

        # Chunked evaluation exists for live feedback only: the
        # metrics-only (and disabled) paths keep the one-shot dispatch
        # the overhead gate times.  Chunking the batch kernels is safe
        # because per-point masking makes every point's trajectory
        # independent of its batch-mates.
        live = tel is not None and (
            tel.progress is not None or tel.events is not None
        )
        if not live or not misses:
            report(hits, None)
            fresh = evaluate(misses)
            for (index, key, params), outcome in zip(misses, fresh):
                absorb(index, key, params, outcome)
            report(total, 0.0 if misses else None)
        else:
            chunk_size = max(1, math.ceil(len(misses) / _PROGRESS_CHUNKS))
            if batch_func is None:
                # Keep pool workers saturated: never dispatch a chunk
                # smaller than one round of tasks per worker.
                chunk_size = max(chunk_size, 4 * getattr(executor, "jobs", 1))
            done = hits
            report(done, None)
            miss_started = time.perf_counter()
            for lo in range(0, len(misses), chunk_size):
                chunk = misses[lo:lo + chunk_size]
                for (index, key, params), outcome in zip(
                    chunk, evaluate(chunk)
                ):
                    absorb(index, key, params, outcome)
                done += len(chunk)
                done_misses = done - hits
                elapsed_miss = time.perf_counter() - miss_started
                eta = (
                    (len(misses) - done_misses) * elapsed_miss / done_misses
                    if done_misses
                    else None
                )
                if tel is not None and tel.events is not None:
                    tel.events.emit(
                        "sweep.chunk",
                        spec=spec.name,
                        done=done,
                        total=total,
                        chunk_points=len(chunk),
                        eta=eta,
                    )
                report(done, eta)

    ordered = tuple(records[point.index] for point in points)
    routing = dict.fromkeys(_ROUTES, 0)
    for record in ordered:
        routing[_route(record.meta)] += 1
    events_total = sum(
        int(r.meta["events"]) for r in ordered if "events" in r.meta
    )
    wall = sum(
        float(r.meta["wall_time"]) for r in ordered if "wall_time" in r.meta
    )
    elapsed = time.perf_counter() - started
    cache_hits = len(ordered) - len(misses) if store is not None else 0
    cache_misses = len(misses) if store is not None else len(ordered)

    if registry is not None:
        registry.inc("sweep.runs")
        registry.inc("sweep.points", len(ordered))
        registry.inc("sweep.cache_hits", cache_hits)
        registry.inc("sweep.cache_misses", cache_misses)

    metadata: dict[str, object] = {
        "spec": spec.name,
        "evaluator": spec.evaluator,
        "points": len(ordered),
        "cache_hits": cache_hits,
        "cache_misses": cache_misses,
        "cache_writes": (
            store.stats.writes - writes_before if store is not None else 0
        ),
        "cache_enabled": store is not None,
        "batched": batch_func is not None,
        "jobs": getattr(executor, "jobs", 1),
        "events_processed": events_total,
        "wall_time": wall,
        "elapsed": elapsed,
        "solver_version": SOLVER_VERSION,
        "routing": routing,
    }
    if store is not None:
        metadata["cache_stats"] = store.stats.as_dict()
    if registry is not None:
        # Snapshot after the span closed so sweep.run's timing is in.
        metadata["telemetry"] = registry.as_dict()

    if tel is not None and tel.events is not None:
        tel.events.emit(
            "sweep.finish",
            spec=spec.name,
            points=len(ordered),
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            routing=routing,
            elapsed=elapsed,
        )

    return SweepResult(
        spec_name=spec.name,
        evaluator=spec.evaluator,
        records=ordered,
        metadata=metadata,
    )
