"""Executors: how a sweep's cache-miss tasks actually run.

Both executors consume ``(evaluator_name, params_dict)`` tasks -- plain
picklable tuples, so the same task list feeds either backend -- and
return records in task order.

:class:`SerialExecutor`
    Runs everything in-process.  The default, and what ``jobs == 1``
    resolves to; also the fallback while debugging evaluators (a worker
    traceback is much less readable than an in-process one).
:class:`ParallelExecutor`
    A :class:`concurrent.futures.ProcessPoolExecutor` wrapper with
    chunked dispatch: tasks are shipped to workers in contiguous chunks
    (default: enough chunks for ~4 rounds per worker) to amortise IPC
    overhead on large grids of cheap points.  Because evaluators are
    pure functions of their params and every stochastic point carries an
    explicit seed, parallel and serial execution produce bit-identical
    results.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.obs import context as _obs_context
from repro.sweep.evaluators import evaluate_point

__all__ = ["ParallelExecutor", "SerialExecutor", "get_executor"]

Task = tuple[str, dict]


def _record_dispatch(metrics, workers: int, records: list[dict],
                     elapsed: float) -> None:
    """Fold one executor dispatch into the active metrics registry.

    Worker processes never see the parent's registry; utilization is
    reconstructed parent-side from the per-record ``wall_time`` meta the
    evaluators already report (busy worker-seconds over the dispatch's
    worker-second budget).
    """
    metrics.gauge("sweep.executor.workers", workers)
    metrics.inc("sweep.executor.dispatches")
    metrics.inc("sweep.executor.tasks", len(records))
    busy = sum(
        float(r["meta"]["wall_time"])
        for r in records
        if "wall_time" in r.get("meta", {})
    )
    if elapsed > 0.0 and workers > 0:
        metrics.observe(
            "sweep.executor.utilization", busy / (workers * elapsed)
        )


@dataclass(frozen=True)
class SerialExecutor:
    """Evaluate tasks one after another in the calling process."""

    jobs: int = 1

    def map(self, tasks: Sequence[Task]) -> list[dict]:
        metrics = _obs_context.current_metrics()
        if metrics is None:
            return [evaluate_point(task) for task in tasks]
        started = time.perf_counter()
        records = [evaluate_point(task) for task in tasks]
        _record_dispatch(
            metrics, 1, records, time.perf_counter() - started
        )
        return records


@dataclass(frozen=True)
class ParallelExecutor:
    """Evaluate tasks on a process pool with chunked dispatch.

    Attributes
    ----------
    jobs:
        Worker process count (>= 1; capped at the CPU count makes sense
        but is not enforced -- simulation points are CPU-bound).
    chunksize:
        Tasks per dispatch unit; ``None`` picks ``ceil(n / (4 * jobs))``
        so each worker sees ~4 chunks (load balance vs IPC overhead).
    """

    jobs: int
    chunksize: int | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.chunksize is not None and self.chunksize < 1:
            raise ValueError(
                f"chunksize must be >= 1, got {self.chunksize!r}"
            )

    def _chunksize(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_tasks / (4 * self.jobs)))

    def map(self, tasks: Sequence[Task]) -> list[dict]:
        if not tasks:
            return []
        workers = min(self.jobs, len(tasks))
        if workers == 1:
            return SerialExecutor().map(tasks)
        metrics = _obs_context.current_metrics()
        started = time.perf_counter()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            records = list(
                pool.map(evaluate_point, tasks,
                         chunksize=self._chunksize(len(tasks)))
            )
        if metrics is not None:
            _record_dispatch(
                metrics, workers, records, time.perf_counter() - started
            )
        return records


def get_executor(jobs: int | None) -> SerialExecutor | ParallelExecutor:
    """Executor for a ``--jobs`` value (``0``/``None`` = all CPUs)."""
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs!r}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs=jobs)
