"""Parameter-sweep engine: declarative grids, parallel execution, caching.

The paper's entire evaluation is a family of parameter sweeps (``W``,
``C^2``, ``L``, server counts) over the LoPC/LogP model family and the
validating simulator.  This package makes that workload first-class:

``repro.sweep.spec``
    :class:`SweepSpec` -- a declarative description of a sweep: named
    axes (grid / zip / random-sampled) expanded over a base parameter
    set into concrete :class:`SweepPoint`\\ s, with deterministic
    per-point seed derivation and a JSON wire format.
``repro.sweep.evaluators``
    A registry of named point evaluators (model solves, simulator runs,
    closed-form bounds) -- plain top-level functions so they pickle into
    worker processes.
``repro.sweep.executors``
    :class:`SerialExecutor` and the
    :class:`~concurrent.futures.ProcessPoolExecutor`-backed
    :class:`ParallelExecutor` (chunked dispatch, order-preserving).
``repro.sweep.cache``
    Content-addressed on-disk cache: a stable hash of
    ``(evaluator, params, solver version)`` keys a JSON record, so
    re-runs and *overlapping* sweeps (e.g. Figures 5-2 and 5-3 share
    their simulator points) skip already-solved points, and interrupted
    sweeps resume where they stopped.
``repro.sweep.results``
    :class:`SweepResult` -- a columnar store over the evaluated points
    with filtering/grouping, CSV export and a bridge into the existing
    :class:`~repro.experiments.common.ExperimentResult` machinery.
``repro.sweep.runner``
    :func:`run_sweep` -- expand, consult the cache, dispatch misses to
    an executor, persist, and assemble the :class:`SweepResult`.

Quick start
-----------
>>> from repro.sweep import GridAxis, SweepSpec, run_sweep
>>> spec = SweepSpec(
...     name="demo",
...     evaluator="alltoall-model",
...     base={"P": 32, "St": 40.0, "So": 200.0, "C2": 0.0},
...     axes=(GridAxis("W", (64.0, 256.0, 1024.0)),),
... )
>>> result = run_sweep(spec)
>>> [round(r, 1) for r in result.column("R")]  # doctest: +SKIP
[704.5, 859.3, 1510.3]
"""

from repro.sweep.cache import (
    SOLVER_VERSION,
    CacheBackend,
    CacheStats,
    ResultCache,
    SqliteCache,
    canonical_json,
    coerce_cache,
    point_key,
)
from repro.sweep.evaluators import (
    evaluate_batch,
    evaluate_batch_warm,
    evaluate_point,
    get_batch_evaluator,
    get_evaluator,
    get_warm_evaluator,
    list_evaluators,
    register_batch_evaluator,
    register_evaluator,
    register_warm_evaluator,
    warm_supports_staging,
)
from repro.sweep.executors import ParallelExecutor, SerialExecutor, get_executor
from repro.sweep.results import PointRecord, SweepResult
from repro.sweep.runner import run_sweep
from repro.sweep.spec import (
    GridAxis,
    RandomAxis,
    SweepPoint,
    SweepSpec,
    ZipAxis,
    derive_point_seed,
)

__all__ = [
    "CacheBackend",
    "CacheStats",
    "GridAxis",
    "ParallelExecutor",
    "PointRecord",
    "RandomAxis",
    "ResultCache",
    "SOLVER_VERSION",
    "SerialExecutor",
    "SqliteCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "ZipAxis",
    "canonical_json",
    "coerce_cache",
    "derive_point_seed",
    "evaluate_batch",
    "evaluate_batch_warm",
    "evaluate_point",
    "get_batch_evaluator",
    "get_evaluator",
    "get_executor",
    "get_warm_evaluator",
    "list_evaluators",
    "point_key",
    "register_batch_evaluator",
    "register_evaluator",
    "register_warm_evaluator",
    "run_sweep",
    "warm_supports_staging",
]
