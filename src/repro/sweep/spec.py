"""Declarative sweep specifications.

A :class:`SweepSpec` names an evaluator (see
:mod:`repro.sweep.evaluators`), a ``base`` parameter mapping shared by
every point, and a tuple of axes.  Expansion takes the cross product of
the axes (each axis contributing one or more named parameters per step)
and merges each combination over ``base`` into a :class:`SweepPoint`.

Axes
----
:class:`GridAxis`
    One parameter, an explicit list of values.
:class:`ZipAxis`
    Several parameters advanced in lockstep (rows of a table) -- the
    cross product is taken *between* axes, never within one.
:class:`RandomAxis`
    One parameter sampled from a (optionally log-spaced) range with its
    own seed, so randomised sweeps are reproducible by construction.

Parameter values are restricted to JSON scalars so points hash stably
(cache keys) and pickle cheaply (worker dispatch).

Seeding
-------
If ``spec.seed`` is set, every expanded point receives a
``seed_param`` (default ``"seed"``) derived deterministically from the
spec seed and the point's other parameters via SHA-256
(:func:`derive_point_seed`).  Two sweeps with the same spec seed agree
point-by-point regardless of axis order or executor, which is what makes
parallel and serial runs bit-identical.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator, Mapping, Sequence, Union

import numpy as np

__all__ = [
    "GridAxis",
    "RandomAxis",
    "SweepPoint",
    "SweepSpec",
    "ZipAxis",
    "derive_point_seed",
]

#: Parameter values must be JSON scalars (hash stably, pickle cheaply).
Scalar = Union[str, int, float, bool, None]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(name: str, value: object) -> Scalar:
    # Accept numpy scalars by converting them; reject containers.
    if isinstance(value, np.generic):
        value = value.item()
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"axis/base parameter {name!r} must be a JSON scalar "
            f"(str/int/float/bool/None), got {type(value).__name__}: {value!r}"
        )
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError(f"parameter {name!r} must be finite, got {value!r}")
    return value


def derive_point_seed(base_seed: int, params: Mapping[str, Scalar]) -> int:
    """Deterministic per-point seed from a spec seed and point params.

    Stable across processes and Python versions (SHA-256 of the
    canonical JSON of ``(base_seed, params)``), returned as a 63-bit
    non-negative integer suitable for :class:`numpy.random.SeedSequence`.
    """
    payload = json.dumps(
        {"base_seed": int(base_seed), "params": dict(sorted(params.items()))},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GridAxis:
    """One named parameter swept over an explicit list of values."""

    name: str
    values: Sequence[Scalar]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        vals = tuple(_check_scalar(self.name, v) for v in self.values)
        if not vals:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", vals)

    @property
    def names(self) -> tuple[str, ...]:
        return (self.name,)

    def steps(self) -> list[dict[str, Scalar]]:
        return [{self.name: v} for v in self.values]

    def to_json_dict(self) -> dict[str, object]:
        return {"type": "grid", "name": self.name, "values": list(self.values)}


@dataclass(frozen=True)
class ZipAxis:
    """Several parameters advanced in lockstep (one row per step)."""

    names: tuple[str, ...]
    rows: Sequence[Sequence[Scalar]]

    def __post_init__(self) -> None:
        names = tuple(self.names)
        if not names:
            raise ValueError("ZipAxis needs at least one parameter name")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate names within ZipAxis: {names}")
        rows = tuple(tuple(r) for r in self.rows)
        if not rows:
            raise ValueError(f"ZipAxis {names} has no rows")
        for row in rows:
            if len(row) != len(names):
                raise ValueError(
                    f"ZipAxis row {row!r} does not match names {names}"
                )
            for name, value in zip(names, row):
                _check_scalar(name, value)
        object.__setattr__(self, "names", names)
        object.__setattr__(self, "rows", rows)

    def steps(self) -> list[dict[str, Scalar]]:
        return [dict(zip(self.names, row)) for row in self.rows]

    def to_json_dict(self) -> dict[str, object]:
        return {
            "type": "zip",
            "names": list(self.names),
            "rows": [list(r) for r in self.rows],
        }


@dataclass(frozen=True)
class RandomAxis:
    """One parameter sampled uniformly (or log-uniformly) from a range.

    Sampling is performed with a dedicated :class:`numpy.random.Generator`
    seeded from ``seed`` at expansion time, so the same axis always
    expands to the same values -- randomised sweeps stay reproducible
    and cacheable.
    """

    name: str
    low: float
    high: float
    count: int
    seed: int = 0
    log: bool = False
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count!r}")
        if not self.low <= self.high:
            raise ValueError(
                f"need low <= high, got [{self.low!r}, {self.high!r}]"
            )
        if self.log and self.low <= 0:
            raise ValueError("log-spaced sampling needs low > 0")

    @property
    def names(self) -> tuple[str, ...]:
        return (self.name,)

    def sample(self) -> tuple[Scalar, ...]:
        rng = np.random.default_rng(self.seed)
        if self.integer:
            vals = rng.integers(int(self.low), int(self.high), size=self.count,
                                endpoint=True)
            return tuple(int(v) for v in vals)
        if self.log:
            lo, hi = math.log(self.low), math.log(self.high)
            return tuple(float(math.exp(v))
                         for v in rng.uniform(lo, hi, size=self.count))
        return tuple(float(v)
                     for v in rng.uniform(self.low, self.high, size=self.count))

    def steps(self) -> list[dict[str, Scalar]]:
        return [{self.name: v} for v in self.sample()]

    def to_json_dict(self) -> dict[str, object]:
        return {
            "type": "random",
            "name": self.name,
            "low": self.low,
            "high": self.high,
            "count": self.count,
            "seed": self.seed,
            "log": self.log,
            "integer": self.integer,
        }


Axis = Union[GridAxis, ZipAxis, RandomAxis]

_AXIS_TYPES: dict[str, type] = {
    "grid": GridAxis,
    "zip": ZipAxis,
    "random": RandomAxis,
}


def _axis_from_json(data: Mapping[str, object]) -> Axis:
    kind = data.get("type")
    if kind not in _AXIS_TYPES:
        known = ", ".join(sorted(_AXIS_TYPES))
        raise ValueError(f"unknown axis type {kind!r}; known: {known}")
    payload = {k: v for k, v in data.items() if k != "type"}
    if kind == "grid":
        return GridAxis(name=payload["name"], values=payload["values"])
    if kind == "zip":
        return ZipAxis(names=tuple(payload["names"]), rows=payload["rows"])
    return RandomAxis(**payload)  # random


# ---------------------------------------------------------------------------
# Points and specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One concrete parameter assignment of a sweep.

    Parameters are stored as a sorted tuple of ``(name, value)`` pairs so
    points are hashable and order-insensitive; :attr:`params` gives the
    mapping view.
    """

    index: int
    items: tuple[tuple[str, Scalar], ...]

    @classmethod
    def from_params(cls, index: int, params: Mapping[str, Scalar]) -> "SweepPoint":
        return cls(index=index, items=tuple(sorted(params.items())))

    @property
    def params(self) -> dict[str, Scalar]:
        return dict(self.items)

    def __getitem__(self, name: str) -> Scalar:
        for key, value in self.items:
            if key == name:
                return value
        raise KeyError(name)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative sweep: evaluator + base parameters + axes.

    Attributes
    ----------
    name:
        Human-readable sweep id (report labels; not part of cache keys,
        so overlapping sweeps under different names share results).
    evaluator:
        Registered evaluator name (:mod:`repro.sweep.evaluators`).
    base:
        Parameters shared by every point.  Axis parameters must not
        collide with base ones -- a collision is almost always a spec
        bug, so it raises.
    axes:
        Cross-producted axes; an empty tuple yields the single base
        point.
    seed:
        Optional spec-level seed.  When set, every point receives a
        derived ``seed_param`` (see :func:`derive_point_seed`),
        overriding any ``seed_param`` in ``base``.
    seed_param:
        Name of the injected per-point seed parameter.
    """

    name: str
    evaluator: str
    base: Mapping[str, Scalar] = field(default_factory=dict)
    axes: tuple[Axis, ...] = ()
    seed: int | None = None
    seed_param: str = "seed"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if not self.evaluator:
            raise ValueError("spec evaluator must be non-empty")
        base = {k: _check_scalar(k, v) for k, v in dict(self.base).items()}
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "axes", tuple(self.axes))
        seen: set[str] = set()
        for axis in self.axes:
            for axis_name in axis.names:
                if axis_name in seen:
                    raise ValueError(
                        f"parameter {axis_name!r} appears on two axes"
                    )
                if axis_name in base:
                    raise ValueError(
                        f"parameter {axis_name!r} is both in base and on an axis"
                    )
                seen.add(axis_name)

    # -- expansion -----------------------------------------------------
    def iter_points(self) -> Iterator[SweepPoint]:
        """Expand axes (cross product) over the base, in axis order."""

        def rec(i: int, acc: dict[str, Scalar]) -> Iterator[dict[str, Scalar]]:
            if i == len(self.axes):
                yield dict(acc)
                return
            for step in self.axes[i].steps():
                acc.update(step)
                yield from rec(i + 1, acc)

        for index, params in enumerate(rec(0, dict(self.base))):
            if self.seed is not None:
                bare = {k: v for k, v in params.items() if k != self.seed_param}
                params[self.seed_param] = derive_point_seed(self.seed, bare)
            yield SweepPoint.from_params(index, params)

    def points(self) -> list[SweepPoint]:
        return list(self.iter_points())

    def __len__(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.steps())
        return n

    def with_seed(self, seed: int | None) -> "SweepSpec":
        return replace(self, seed=seed)

    # -- JSON wire format ----------------------------------------------
    def to_json_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "name": self.name,
            "evaluator": self.evaluator,
            "base": dict(self.base),
            "axes": [axis.to_json_dict() for axis in self.axes],
        }
        if self.seed is not None:
            data["seed"] = self.seed
        if self.seed_param != "seed":
            data["seed_param"] = self.seed_param
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "SweepSpec":
        unknown = set(data) - {"name", "evaluator", "base", "axes", "seed",
                               "seed_param"}
        if unknown:
            raise ValueError(f"unknown spec keys: {sorted(unknown)}")
        return cls(
            name=str(data["name"]),
            evaluator=str(data["evaluator"]),
            base=dict(data.get("base", {})),
            axes=tuple(_axis_from_json(a) for a in data.get("axes", ())),
            seed=data.get("seed"),
            seed_param=str(data.get("seed_param", "seed")),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_json_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | Path) -> "SweepSpec":
        return cls.from_json(Path(path).read_text())
