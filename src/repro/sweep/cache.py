"""Content-addressed on-disk cache for sweep point results.

A point's cache key is the SHA-256 of the canonical JSON of
``(evaluator, params, versions)``.  Records are stored one JSON file per
key under a two-level fan-out (``root/ab/abcdef....json``) and written
atomically (temp file + :func:`os.replace`), so an interrupted sweep
leaves only complete records and simply resumes on the next run.

The key deliberately excludes the sweep's *name*: two different sweeps
that evaluate the same point (Figures 5-2 and 5-3 share their simulator
grid) hit the same record.  It deliberately *includes*
:data:`SOLVER_VERSION` -- bump that constant whenever model or simulator
semantics change so stale records are never reused.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Mapping

__all__ = [
    "CacheStats",
    "ResultCache",
    "SOLVER_VERSION",
    "canonical_json",
    "point_key",
]

#: Version of the model/simulator semantics baked into cache keys.
#: Bump on any change that alters solver or simulator *results*.
#: "2": bulk-drawn RNG streams changed the draw order of fixed-seed
#: simulations (repro.sim.streams), so pre-stream simulator records are
#: stale.
SOLVER_VERSION = "2"


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def point_key(
    evaluator: str,
    params: Mapping[str, object],
    solver_version: str = SOLVER_VERSION,
) -> str:
    """Stable content hash identifying one evaluated point."""
    payload = canonical_json(
        {
            "evaluator": evaluator,
            "params": dict(params),
            "solver_version": solver_version,
        }
    )
    return sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}


@dataclass
class ResultCache:
    """Filesystem-backed record store addressed by :func:`point_key`."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The record stored under ``key``, or None (counted as hit/miss).

        A corrupt record (interrupted write of a *non*-atomic producer,
        disk trouble) is treated as a miss and removed so the point is
        simply recomputed.
        """
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, object]) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(record, sort_keys=True, allow_nan=False)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    @classmethod
    def coerce(
        cls, cache: "ResultCache | str | Path | None"
    ) -> "ResultCache | None":
        """Accept a cache instance, a directory path, or None."""
        if cache is None or isinstance(cache, cls):
            return cache
        return cls(Path(cache))
