"""Content-addressed cache backends for sweep point results.

A point's cache key is the SHA-256 of the canonical JSON of
``(evaluator, params, versions)``.  Two interchangeable backends store
the records:

:class:`ResultCache`
    One JSON file per key under a two-level fan-out
    (``root/ab/abcdef....json``), written atomically (temp file +
    :func:`os.replace`), so an interrupted sweep leaves only complete
    records and simply resumes on the next run.
:class:`SqliteCache`
    One WAL-mode sqlite table keyed on the same hashes -- the
    concurrency-safe store the :mod:`repro.serve` service shares across
    clients.  Record JSON is byte-identical to the file backend's
    (same ``json.dumps`` settings), so :func:`repro.serve.migrate_cache`
    can convert either direction losslessly.

Both satisfy the :class:`CacheBackend` protocol the sweep runner
programs against; :func:`coerce_cache` turns user-facing cache
spellings (an instance, a directory, a ``*.sqlite`` path, ``None``)
into a backend.

The key deliberately excludes the sweep's *name*: two different sweeps
that evaluate the same point (Figures 5-2 and 5-3 share their simulator
grid) hit the same record.  It deliberately *includes*
:data:`SOLVER_VERSION` -- bump that constant whenever model or simulator
semantics change so stale records are never reused.
"""

from __future__ import annotations

import json
import os
import sqlite3
import tempfile
import threading
from dataclasses import dataclass, field
from hashlib import sha256
from pathlib import Path
from typing import Iterator, Mapping, Protocol, runtime_checkable

__all__ = [
    "CacheBackend",
    "CacheStats",
    "ResultCache",
    "SOLVER_VERSION",
    "SqliteCache",
    "canonical_json",
    "coerce_cache",
    "point_key",
]

#: Path suffixes routed to :class:`SqliteCache` by :func:`coerce_cache`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Version of the model/simulator semantics baked into cache keys.
#: Bump on any change that alters solver or simulator *results*.
#: "2": bulk-drawn RNG streams changed the draw order of fixed-seed
#: simulations (repro.sim.streams), so pre-stream simulator records are
#: stale.
SOLVER_VERSION = "2"


def canonical_json(obj: object) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def point_key(
    evaluator: str,
    params: Mapping[str, object],
    solver_version: str = SOLVER_VERSION,
) -> str:
    """Stable content hash identifying one evaluated point."""
    payload = canonical_json(
        {
            "evaluator": evaluator,
            "params": dict(params),
            "solver_version": solver_version,
        }
    )
    return sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/write counters accumulated over a cache's lifetime."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def __add__(self, other: "CacheStats") -> "CacheStats":
        """Fold per-worker counters into campaign totals."""
        if not isinstance(other, CacheStats):
            return NotImplemented
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            writes=self.writes + other.writes,
        )


@runtime_checkable
class CacheBackend(Protocol):
    """What the sweep runner (and the serve layer) need from a cache.

    Both built-in backends additionally offer ``keys()`` / ``raw(key)``
    (iteration and byte-exact record text, which the migration tool
    verifies against) and ``clear()``, but the runner itself only ever
    calls the members below.
    """

    stats: CacheStats

    def get(self, key: str) -> dict | None: ...

    def put(self, key: str, record: Mapping[str, object]) -> None: ...


@dataclass
class ResultCache:
    """Filesystem-backed record store addressed by :func:`point_key`."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        if len(key) < 3:
            raise ValueError(f"malformed cache key {key!r}")
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The record stored under ``key``, or None (counted as hit/miss).

        A corrupt record (interrupted write of a *non*-atomic producer,
        disk trouble) is treated as a miss and removed so the point is
        simply recomputed.
        """
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            path.unlink(missing_ok=True)
            return None
        self.stats.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, object]) -> None:
        """Atomically persist ``record`` under ``key``."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        data = json.dumps(record, sort_keys=True, allow_nan=False)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def keys(self) -> Iterator[str]:
        """Every stored record key (unordered)."""
        for path in self.root.glob("*/*.json"):
            yield path.stem

    def raw(self, key: str) -> str | None:
        """The exact serialized record text (no stats), or None."""
        try:
            return self._path(key).read_text()
        except OSError:
            return None

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    @classmethod
    def coerce(
        cls, cache: "ResultCache | str | Path | None"
    ) -> "ResultCache | None":
        """Accept a cache instance, a directory path, or None."""
        if cache is None or isinstance(cache, cls):
            return cache
        return cls(Path(cache))


class SqliteCache:
    """Sqlite-backed record store safe under concurrent writers.

    One WAL-mode table keyed on :func:`point_key` hashes.  The stored
    record text is byte-identical to what :class:`ResultCache` writes
    (same ``json.dumps`` settings), so the two backends interchange
    losslessly via :func:`repro.serve.migrate_cache`.

    Concurrency contract:

    * *threads* may share one instance -- connections are per-thread
      (sqlite objects must not cross threads) and the stats counters
      are lock-guarded;
    * *processes* each open their own instance on the same path; WAL
      journaling plus a busy timeout serialises writers without torn
      records, and identical-content rewrites are last-writer-wins.

    ``synchronous=NORMAL`` is the WAL-recommended setting: an OS crash
    can lose the tail of recently-acknowledged writes but never
    corrupts the store -- the right trade for a cache whose records are
    recomputable by definition.
    """

    def __init__(self, path: "str | Path",
                 stats: CacheStats | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.stats = stats if stats is not None else CacheStats()
        self._local = threading.local()
        self._stats_lock = threading.Lock()
        self._conn()  # create the table eagerly; fail fast on bad paths

    def _conn(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = sqlite3.connect(
                self.path, timeout=30.0, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS records ("
                "key TEXT PRIMARY KEY, record TEXT NOT NULL)"
            )
            self._local.conn = conn
        return conn

    def get(self, key: str) -> dict | None:
        """The record stored under ``key``, or None (counted hit/miss).

        Mirrors :meth:`ResultCache.get`: a record that fails to parse
        (foreign writer, disk trouble) is dropped and counted a miss so
        the point is simply recomputed.
        """
        row = self._conn().execute(
            "SELECT record FROM records WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            with self._stats_lock:
                self.stats.misses += 1
            return None
        try:
            record = json.loads(row[0])
        except json.JSONDecodeError:
            self._conn().execute(
                "DELETE FROM records WHERE key = ?", (key,)
            )
            with self._stats_lock:
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return record

    def put(self, key: str, record: Mapping[str, object]) -> None:
        """Persist ``record`` under ``key`` (atomic; upsert on replays)."""
        data = json.dumps(record, sort_keys=True, allow_nan=False)
        self._conn().execute(
            "INSERT INTO records (key, record) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET record = excluded.record",
            (key, data),
        )
        with self._stats_lock:
            self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        row = self._conn().execute(
            "SELECT 1 FROM records WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def __len__(self) -> int:
        return int(self._conn().execute(
            "SELECT COUNT(*) FROM records"
        ).fetchone()[0])

    def keys(self) -> Iterator[str]:
        """Every stored record key (unordered)."""
        for (key,) in self._conn().execute("SELECT key FROM records"):
            yield key

    def raw(self, key: str) -> str | None:
        """The exact serialized record text (no stats), or None."""
        row = self._conn().execute(
            "SELECT record FROM records WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        cursor = self._conn().execute("DELETE FROM records")
        return cursor.rowcount

    def close(self) -> None:
        """Close this thread's connection (others close on thread exit)."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None

    @classmethod
    def coerce(
        cls, cache: "SqliteCache | str | Path | None"
    ) -> "SqliteCache | None":
        """Accept a cache instance, a database path, or None."""
        if cache is None or isinstance(cache, cls):
            return cache
        return cls(Path(cache))


def coerce_cache(
    cache: "CacheBackend | str | Path | None",
    backend: str | None = None,
) -> "CacheBackend | None":
    """Turn any user-facing cache spelling into a backend instance.

    ``None`` and ready-made backends (anything with ``get``/``put`` and
    ``stats``) pass through.  A path becomes a :class:`SqliteCache` when
    ``backend="sqlite"`` or its suffix is one of
    :data:`SQLITE_SUFFIXES`, else a :class:`ResultCache` directory
    (``backend="files"``, or unstated).  This is the coercion behind
    ``run_sweep(cache=...)``, ``Study(cache=...)`` and the CLI's
    ``--cache-dir``/``--cache-backend`` flags.
    """
    if cache is None:
        return None
    if isinstance(cache, (ResultCache, SqliteCache)):
        return cache
    if not isinstance(cache, (str, Path)) and isinstance(cache, CacheBackend):
        return cache
    path = Path(cache)
    if backend not in (None, "sqlite", "files"):
        raise ValueError(
            f"unknown cache backend {backend!r}; pick 'sqlite' or 'files'"
        )
    if backend == "sqlite" or (
        backend is None and path.suffix in SQLITE_SUFFIXES
    ):
        if path.suffix not in SQLITE_SUFFIXES:
            path = path / "cache.sqlite"
        return SqliteCache(path)
    return ResultCache(path)
