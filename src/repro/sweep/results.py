"""Columnar result store for evaluated sweeps.

A :class:`SweepResult` holds one :class:`PointRecord` per sweep point --
the point's parameters, the evaluator's values, and per-point meta
(wall time, simulator events, cache provenance) -- plus sweep-level
metadata (cache hit/miss counts, total events, elapsed time).  It
offers the small set of table operations the experiment runners and CLI
need (column extraction, filtering, grouping, CSV export) and a bridge
into the existing :class:`~repro.experiments.common.ExperimentResult`
machinery so sweep output renders through ``format_table`` like every
other artifact.

Results also round-trip through JSON (:meth:`SweepResult.to_json` /
:meth:`SweepResult.from_json`, format tag ``lopc-sweep-result/1``) --
this is the wire format :mod:`repro.serve` ships sweep results over.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

if TYPE_CHECKING:  # imported lazily at runtime (experiments import sweep)
    from repro.experiments.common import ExperimentResult, ShapeCheck

__all__ = ["PointRecord", "RESULT_FORMAT", "SweepResult"]

#: Wire-format tag stamped into :meth:`SweepResult.to_dict` payloads.
RESULT_FORMAT = "lopc-sweep-result/1"


@dataclass(frozen=True)
class PointRecord:
    """One evaluated sweep point.

    ``meta`` carries per-point provenance: ``wall_time`` (seconds spent
    in the evaluator when the value was computed), ``events`` (simulator
    events processed, when the evaluator ran a simulation), ``cached``
    (whether this run got the record from the cache) and ``key`` (the
    content hash, when caching was active).
    """

    index: int
    params: Mapping[str, object]
    values: Mapping[str, object]
    meta: Mapping[str, object] = field(default_factory=dict)

    def row(self) -> dict[str, object]:
        """Parameters and values merged into one flat row."""
        merged = dict(self.params)
        merged.update(self.values)
        return merged

    def __getitem__(self, name: str) -> object:
        if name in self.values:
            return self.values[name]
        return self.params[name]

    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "index": self.index,
            "params": dict(self.params),
            "values": dict(self.values),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PointRecord":
        return cls(
            index=int(payload["index"]),  # type: ignore[arg-type]
            params=dict(payload.get("params", {})),  # type: ignore[arg-type]
            values=dict(payload.get("values", {})),  # type: ignore[arg-type]
            meta=dict(payload.get("meta", {})),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SweepResult:
    """All records of one sweep, in point order, plus sweep metadata."""

    spec_name: str
    evaluator: str
    records: tuple[PointRecord, ...]
    metadata: Mapping[str, object] = field(default_factory=dict)

    # -- table views ---------------------------------------------------
    @property
    def columns(self) -> list[str]:
        """Parameter names then value names, first-seen order."""
        cols: dict[str, None] = {}
        for record in self.records:
            for name in record.params:
                cols.setdefault(name, None)
        for record in self.records:
            for name in record.values:
                cols.setdefault(name, None)
        return list(cols)

    @property
    def rows(self) -> list[dict[str, object]]:
        return [record.row() for record in self.records]

    def column(self, name: str) -> list[object]:
        """One column across all records (params or values)."""
        return [record[name] for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    # -- filtering / grouping ------------------------------------------
    def filter(
        self,
        predicate: Callable[[PointRecord], bool] | None = None,
        **equals: object,
    ) -> "SweepResult":
        """Records matching a predicate and/or column equality tests."""

        def keep(record: PointRecord) -> bool:
            if predicate is not None and not predicate(record):
                return False
            return all(record[k] == v for k, v in equals.items())

        return SweepResult(
            spec_name=self.spec_name,
            evaluator=self.evaluator,
            records=tuple(r for r in self.records if keep(r)),
            metadata=dict(self.metadata, filtered=True),
        )

    def group_by(self, *names: str) -> dict[tuple, "SweepResult"]:
        """Partition records by the values of one or more columns."""
        if not names:
            raise ValueError("group_by needs at least one column name")
        groups: dict[tuple, list[PointRecord]] = {}
        for record in self.records:
            key = tuple(record[n] for n in names)
            groups.setdefault(key, []).append(record)
        return {
            key: SweepResult(
                spec_name=self.spec_name,
                evaluator=self.evaluator,
                records=tuple(records),
                metadata=dict(self.metadata, group=dict(zip(names, key))),
            )
            for key, records in groups.items()
        }

    def lookup(self, **equals: object) -> PointRecord:
        """The single record matching the equality tests (or raise)."""
        matches = [
            r for r in self.records
            if all(r[k] == v for k, v in equals.items())
        ]
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one record for {equals!r}, "
                f"found {len(matches)}"
            )
        return matches[0]

    def best(
        self,
        *,
        minimize: str | None = None,
        maximize: str | None = None,
        where: Callable[[PointRecord], bool] | None = None,
        **equals: object,
    ):
        """The winning row as a typed :class:`~repro.api.Solution`.

        The sweep-side sibling of ``scenario(...).optimize(...)``: pick
        the record extremising one column -- ``minimize=``/``maximize=``
        name any parameter or value column -- optionally restricted by a
        ``where`` predicate and/or column equality tests (the same
        filters :meth:`filter` takes).  Non-finite entries never win.

        The evaluator name is reverse-looked-up in the scenario registry
        so the Solution carries full provenance; for evaluators
        registered outside the facade the scenario/backend fields fall
        back to the evaluator name and ``"custom"``.
        """
        import math

        from repro.api.solution import Solution

        if (minimize is None) == (maximize is None):
            raise ValueError("pass exactly one of minimize= or maximize=")
        column = minimize if minimize is not None else maximize
        pool = self.filter(where, **equals) if (where or equals) else self
        if not pool.records:
            raise ValueError(
                f"best(): no records"
                + (" match the filter" if (where or equals) else "")
            )

        def score(record: PointRecord) -> float:
            try:
                value = float(record[column])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                known = ", ".join(self.columns)
                raise KeyError(
                    f"best(): no numeric column {column!r}; "
                    f"columns: {known}"
                ) from None
            if not math.isfinite(value):
                return math.inf
            return value if minimize is not None else -value

        winner = min(pool.records, key=score)
        if not math.isfinite(score(winner)):
            raise ValueError(
                f"best(): every candidate has non-finite {column!r}"
            )
        from repro.api.scenario import find_backend

        found = find_backend(self.evaluator)
        if found is not None:
            scenario_name, role = found[0].name, found[1].role
        else:
            scenario_name, role = self.evaluator, "custom"
        return Solution(
            scenario=scenario_name,
            backend=role,
            evaluator=self.evaluator,
            params=winner.params,
            values=winner.values,
            meta=dict(
                winner.meta,
                best={
                    "column": column,
                    "mode": "minimize" if minimize is not None else "maximize",
                    "candidates": len(pool.records),
                },
            ),
        )

    # -- wire format ---------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """JSON-ready mapping tagged ``lopc-sweep-result/1``."""
        return {
            "format": RESULT_FORMAT,
            "spec_name": self.spec_name,
            "evaluator": self.evaluator,
            "records": [record.to_dict() for record in self.records],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepResult":
        tag = payload.get("format", RESULT_FORMAT)
        if tag != RESULT_FORMAT:
            raise ValueError(
                f"unsupported sweep-result format {tag!r} "
                f"(expected {RESULT_FORMAT!r})"
            )
        return cls(
            spec_name=str(payload["spec_name"]),
            evaluator=str(payload["evaluator"]),
            records=tuple(
                PointRecord.from_dict(rec)
                for rec in payload.get("records", ())  # type: ignore[union-attr]
            ),
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize for transport/storage (inverse of :meth:`from_json`)."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=True)

    @classmethod
    def from_json(cls, text: str) -> "SweepResult":
        return cls.from_dict(json.loads(text))

    # -- export --------------------------------------------------------
    def to_csv(self, columns: Sequence[str] | None = None) -> str:
        from repro.experiments.common import to_csv

        return to_csv(self.to_experiment_result(columns=columns))

    def to_experiment_result(
        self,
        experiment_id: str | None = None,
        title: str | None = None,
        columns: Sequence[str] | None = None,
        checks: "Sequence[ShapeCheck]" = (),
        notes: Sequence[str] = (),
        parameters: Mapping[str, object] | None = None,
    ) -> "ExperimentResult":
        """View the sweep through the experiment-result machinery."""
        from repro.experiments.common import ExperimentResult

        if parameters is not None:
            params = dict(parameters)
        else:
            # The nested telemetry/routing dicts would render raw in the
            # one-line "parameters:" header; the stats subcommand and
            # --metrics output are their home.
            params = {
                k: v
                for k, v in self.metadata.items()
                if k not in ("telemetry", "cache_stats", "routing")
            }
        return ExperimentResult(
            experiment_id=experiment_id or self.spec_name,
            title=title or f"sweep {self.spec_name} ({self.evaluator})",
            parameters=params,
            columns=list(columns) if columns is not None else self.columns,
            rows=self.rows,
            checks=tuple(checks),
            notes=tuple(notes),
        )

    # -- aggregate provenance ------------------------------------------
    def summary(self) -> str:
        """One-line human summary: points, cache traffic, throughput."""
        meta = self.metadata
        parts = [f"{len(self.records)} point(s)"]
        if "cache_hits" in meta or "cache_misses" in meta:
            line = (
                f"cache {meta.get('cache_hits', 0)} hit(s) / "
                f"{meta.get('cache_misses', 0)} miss(es)"
            )
            if meta.get("cache_enabled"):
                line += f" / {meta.get('cache_writes', 0)} write(s)"
            parts.append(line)
        routing = meta.get("routing")
        if routing and meta.get("points"):
            split = "/".join(
                f"{routing[k]} {k}" for k in ("batch", "scalar", "sim")
                if routing.get(k)
            )
            if split:
                parts.append(split)
        events = meta.get("events_processed")
        if events:
            parts.append(f"{events:,} simulator event(s)")
        wall = meta.get("wall_time")
        if wall is not None:
            parts.append(f"{wall:.2f}s point-compute")
        elapsed = meta.get("elapsed")
        if elapsed is not None:
            parts.append(f"{elapsed:.2f}s elapsed")
        return ", ".join(parts)
