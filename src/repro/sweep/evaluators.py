"""Named point evaluators: the functions a sweep maps over its grid.

An evaluator is a plain top-level function ``params -> values`` where
both sides are flat JSON-serialisable mappings -- top-level so it
pickles into :class:`~concurrent.futures.ProcessPoolExecutor` workers,
JSON-flat so results cache and export without adapters.  Value keys
beginning with ``_`` (e.g. ``_events``) are lifted into the record's
``meta`` by :func:`evaluate_point` rather than appearing as columns.

Parameter naming follows the paper's symbols throughout: ``P``, ``St``,
``So``, ``C2`` for the machine; ``W`` for work; ``Ps`` for the workpile
server count; plus simulation controls (``cycles`` / ``chunks``,
``seed``, ``work_cv2``).

Built-in evaluators
-------------------
``alltoall-model``    LoPC AMVA solution of the Section-5 all-to-all.
``alltoall-sim``      Event-driven simulation of the same workload.
``alltoall-bounds``   Eq. 5.12 contention-free / rule-of-thumb bounds.
``workpile-model``    LoPC client-server workpile solution (Chapter 6).
``workpile-sim``      Simulated workpile for one ``(Ps, Pc)`` split.
``workpile-bounds``   LogP-style optimistic saturation bounds.

Batch capability
----------------
Analytic evaluators can additionally *advertise batch capability* via
:func:`register_batch_evaluator`: a companion function that takes the
whole list of cache-miss parameter dicts and evaluates them in one
vectorized call (the LoPC models route through
:func:`repro.core.alltoall.solve_batch` /
:func:`repro.core.client_server.solve_workpile_batch`).  The sweep
runner prefers the batch path when one is registered -- one masked numpy
fixed point instead of thousands of scalar solves or process-pool
round-trips -- and the values are bit-identical to the scalar
evaluator's, so cache records from either path are interchangeable.
Simulation evaluators register no batch function and keep the pool.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

from repro.core.alltoall import AllToAllModel, solve_batch
from repro.core.client_server import ClientServerModel, solve_workpile_batch
from repro.core.logp import LogPModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.rule_of_thumb import contention_bounds
from repro.sim.machine import MachineConfig

__all__ = [
    "evaluate_batch",
    "evaluate_point",
    "evaluator_defaults",
    "get_batch_evaluator",
    "get_evaluator",
    "list_evaluators",
    "machine_from_params",
    "register_batch_evaluator",
    "register_evaluator",
]

Evaluator = Callable[[Mapping[str, object]], dict[str, object]]
BatchEvaluator = Callable[[Sequence[Mapping[str, object]]], "list[dict[str, object]]"]

_EVALUATORS: dict[str, Evaluator] = {}
_BATCH_EVALUATORS: dict[str, BatchEvaluator] = {}
_DEFAULTS: dict[str, dict[str, object]] = {}


def register_evaluator(
    name: str, defaults: Mapping[str, object] | None = None
) -> Callable[[Evaluator], Evaluator]:
    """Decorator adding a point evaluator to the registry.

    ``defaults`` declares result-affecting parameters the evaluator
    fills in when a spec omits them.  The runner merges them into each
    point's params *before* cache keying and dispatch, so an omitted
    parameter and its explicit default hit the same cache record, and a
    later change to a default cannot silently reuse stale records.

    Evaluators registered at runtime (outside this module) are only
    visible to ``jobs > 1`` pools on fork-start platforms (Linux);
    spawn-start workers re-import this module and see just the
    built-ins.  Register in an importable module if that matters.
    """

    def deco(func: Evaluator) -> Evaluator:
        if name in _EVALUATORS:
            raise ValueError(f"evaluator {name!r} already registered")
        _EVALUATORS[name] = func
        if defaults:
            _DEFAULTS[name] = dict(defaults)
        return func

    return deco


def register_batch_evaluator(
    name: str,
) -> Callable[[BatchEvaluator], BatchEvaluator]:
    """Decorator advertising batch capability for a registered evaluator.

    The decorated function receives the full list of parameter dicts of
    a sweep's cache misses and must return one value dict per point, in
    order, with exactly the values the scalar evaluator would produce
    (the runner caches them under the same keys).  Only register a batch
    function whose output is bit-identical to the scalar path --
    anything else silently forks cached and fresh results.
    """

    def deco(func: BatchEvaluator) -> BatchEvaluator:
        get_evaluator(name)  # batch capability extends a scalar evaluator
        if name in _BATCH_EVALUATORS:
            raise ValueError(f"batch evaluator {name!r} already registered")
        _BATCH_EVALUATORS[name] = func
        return func

    return deco


def get_batch_evaluator(name: str) -> BatchEvaluator | None:
    """The batch companion of evaluator ``name``, or None."""
    get_evaluator(name)  # consistent unknown-name behaviour
    return _BATCH_EVALUATORS.get(name)


def evaluator_defaults(name: str) -> dict[str, object]:
    """Declared result-affecting defaults of a registered evaluator."""
    get_evaluator(name)
    return dict(_DEFAULTS.get(name, {}))


def get_evaluator(name: str) -> Evaluator:
    try:
        return _EVALUATORS[name]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS)) or "(none)"
        raise KeyError(f"unknown evaluator {name!r}; known: {known}") from None


def list_evaluators() -> list[str]:
    return sorted(_EVALUATORS)


def evaluate_point(task: tuple[str, dict]) -> dict[str, object]:
    """Worker entry point: evaluate one ``(evaluator, params)`` task.

    Returns a record ``{"values": ..., "meta": ...}``; the meta side
    carries the wall time of the evaluation and any ``_``-prefixed
    values the evaluator emitted (``_events`` becomes ``meta["events"]``).
    Top-level (not a closure) so it pickles into pool workers.
    """
    name, params = task
    func = get_evaluator(name)
    start = time.perf_counter()
    raw = func(params)
    wall = time.perf_counter() - start
    return _split_record(raw, wall)


def _split_record(raw: Mapping[str, object], wall: float,
                  batched: bool = False) -> dict[str, object]:
    values = {k: v for k, v in raw.items() if not k.startswith("_")}
    meta: dict[str, object] = {"wall_time": wall}
    if batched:
        meta["batched"] = True
    for key, value in raw.items():
        if key.startswith("_"):
            meta[key[1:]] = value
    return {"values": values, "meta": meta}


def evaluate_batch(
    name: str, params_list: Sequence[Mapping[str, object]]
) -> list[dict[str, object]]:
    """Evaluate many points through an evaluator's batch companion.

    Returns records shaped exactly like :func:`evaluate_point`'s, in
    input order.  ``meta["wall_time"]`` is each point's share of the one
    vectorized call (the quantity sweeps aggregate), and
    ``meta["batched"]`` marks the provenance.
    """
    func = _BATCH_EVALUATORS.get(name)
    if func is None:
        raise KeyError(f"evaluator {name!r} has no batch companion")
    if not params_list:
        return []
    start = time.perf_counter()
    raw_values = func(params_list)
    wall = time.perf_counter() - start
    if len(raw_values) != len(params_list):
        raise ValueError(
            f"batch evaluator {name!r} returned {len(raw_values)} records "
            f"for {len(params_list)} points"
        )
    share = wall / len(params_list)
    return [_split_record(raw, share, batched=True) for raw in raw_values]


# ---------------------------------------------------------------------------
# Shared parameter plumbing
# ---------------------------------------------------------------------------
def machine_from_params(params: Mapping[str, object]) -> MachineParams:
    """Build :class:`MachineParams` from paper-notation sweep parameters."""
    return MachineParams(
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        processors=int(params["P"]),
        handler_cv2=float(params.get("C2", 0.0)),
    )


def _config_from_params(params: Mapping[str, object]) -> MachineConfig:
    return MachineConfig(
        processors=int(params["P"]),
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        handler_cv2=float(params.get("C2", 0.0)),
        latency_cv2=float(params.get("latency_cv2", 0.0)),
        seed=int(params.get("seed", 0)),
    )


# ---------------------------------------------------------------------------
# All-to-all (paper Section 5)
# ---------------------------------------------------------------------------
def _alltoall_values(sol) -> dict[str, object]:
    """The ``alltoall-model`` value columns of one :class:`ModelSolution`."""
    return {
        "R": sol.response_time,
        "Rw": sol.compute_residence,
        "Rq": sol.request_residence,
        "Ry": sol.reply_residence,
        "X": sol.throughput,
        "Uq": sol.request_utilization,
        "Uy": sol.reply_utilization,
        "total_contention": sol.total_contention,
        "compute_contention": sol.compute_contention,
        "request_contention": sol.request_contention,
        "reply_contention": sol.reply_contention,
        "contention_fraction": sol.contention_fraction,
    }


@register_evaluator("alltoall-model")
def _alltoall_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    sol = AllToAllModel(machine).solve_work(float(params["W"]))
    return _alltoall_values(sol)


@register_batch_evaluator("alltoall-model")
def _alltoall_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    return [_alltoall_values(sol) for sol in solve_batch(grid)]


@register_evaluator("alltoall-bounds")
def _alltoall_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    lower, upper = contention_bounds(machine, float(params["W"]))
    return {"lower": lower, "upper": upper}


@register_batch_evaluator("alltoall-bounds")
def _alltoall_bounds_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Closed forms: the only iterative work is the Eq. 5.12 constant
    # kappa(C^2), lru-cached per distinct C^2 (upper_bound_constant), so
    # one Brent solve serves the whole grid.  Batch capability here buys
    # in-process dispatch (no pool round-trip per point).
    return [_alltoall_bounds(params) for params in params_list]


@register_evaluator(
    "alltoall-sim",
    defaults={"cycles": 300, "seed": 0, "work_cv2": 0.0, "latency_cv2": 0.0},
)
def _alltoall_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.alltoall import run_alltoall

    config = _config_from_params(params)
    measured = run_alltoall(
        config,
        work=float(params["W"]),
        cycles=int(params.get("cycles", 300)),
        work_cv2=float(params.get("work_cv2", 0.0)),
    )
    return {
        "R": measured.response_time,
        "Rw": measured.compute_residence,
        "Rq": measured.request_residence,
        "Ry": measured.reply_residence,
        "X": measured.throughput,
        "Uq": measured.request_utilization,
        "Uy": measured.reply_utilization,
        "total_contention": measured.total_contention,
        "compute_contention": measured.compute_contention,
        "request_contention": measured.request_contention,
        "reply_contention": measured.reply_contention,
        "handler_queue": measured.handler_queue,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


# ---------------------------------------------------------------------------
# Client-server workpile (paper Chapter 6)
# ---------------------------------------------------------------------------
def _workpile_values(sol) -> dict[str, object]:
    """The ``workpile-model`` value columns of one :class:`WorkpileSolution`."""
    return {
        "X": sol.throughput,
        "R": sol.response_time,
        "Rs": sol.server_residence,
        "Qs": sol.server_queue,
        "Us": sol.server_utilization,
    }


@register_evaluator("workpile-model")
def _workpile_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    model = ClientServerModel(machine, work=float(params["W"]))
    sol = model.solve(int(params["Ps"]))
    return _workpile_values(sol)


@register_batch_evaluator("workpile-model")
def _workpile_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Validate each machine exactly like the scalar path before the
    # vectorized solve.
    for params in params_list:
        machine_from_params(params)
    solutions = solve_workpile_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [float(p.get("C2", 0.0)) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
    )
    return [_workpile_values(sol) for sol in solutions]


@register_evaluator(
    "workpile-sim",
    # chunks matches fig-6.2's default, not run_workpile's 300.
    defaults={"chunks": 250, "seed": 0, "work_cv2": 0.0, "latency_cv2": 0.0},
)
def _workpile_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.workpile import run_workpile

    config = _config_from_params(params)
    measured = run_workpile(
        config,
        servers=int(params["Ps"]),
        work=float(params["W"]),
        chunks=int(params.get("chunks", 250)),
        work_cv2=float(params.get("work_cv2", 0.0)),
    )
    return {
        "X": measured.throughput,
        "wall_X": measured.wall_throughput,
        "R": measured.response_time,
        "Rs": measured.server_residence,
        "Qs": measured.server_queue,
        "Us": measured.server_utilization,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


@register_evaluator("workpile-bounds")
def _workpile_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    logp = LogPModel(machine)
    servers = int(params["Ps"])
    clients = machine.processors - servers
    return {
        "server_bound": logp.workpile_server_bound(servers),
        "client_bound": logp.workpile_client_bound(clients, float(params["W"])),
    }
