"""Named point evaluators: the functions a sweep maps over its grid.

An evaluator is a plain top-level function ``params -> values`` where
both sides are flat JSON-serialisable mappings -- top-level so it
pickles into :class:`~concurrent.futures.ProcessPoolExecutor` workers,
JSON-flat so results cache and export without adapters.  Value keys
beginning with ``_`` (e.g. ``_events``) are lifted into the record's
``meta`` by :func:`evaluate_point` rather than appearing as columns.

Parameter naming follows the paper's symbols throughout: ``P``, ``St``,
``So``, ``C2`` for the machine; ``W`` for work; ``Ps`` for the workpile
server count; plus simulation controls (``cycles`` / ``chunks``,
``seed``, ``work_cv2``).

Built-in evaluators
-------------------
``alltoall-model``    LoPC AMVA solution of the Section-5 all-to-all.
``alltoall-sim``      Event-driven simulation of the same workload.
``alltoall-bounds``   Eq. 5.12 contention-free / rule-of-thumb bounds.
``workpile-model``    LoPC client-server workpile solution (Chapter 6).
``workpile-sim``      Simulated workpile for one ``(Ps, Pc)`` split.
``workpile-bounds``   LogP-style optimistic saturation bounds.
``multiclass-mva``    Exact or approximate multi-class MVA (Chapter-6
                      heterogeneous studies); classes are encoded as
                      flat ``N{c}`` / ``Z{c}`` / ``D{c}_{k}`` scalars.

Batch capability
----------------
Analytic evaluators can additionally *advertise batch capability* via
:func:`register_batch_evaluator`: a companion function that takes the
whole list of cache-miss parameter dicts and evaluates them in one
vectorized call (the LoPC models route through
:func:`repro.core.alltoall.solve_batch` /
:func:`repro.core.client_server.solve_workpile_batch`, the bounds
through :func:`repro.core.client_server.workpile_bounds_batch`, and
multi-class networks through the :mod:`repro.mva.batch` multi-class
kernels).  The sweep
runner prefers the batch path when one is registered -- one masked numpy
fixed point instead of thousands of scalar solves or process-pool
round-trips -- and the values are bit-identical to the scalar
evaluator's, so cache records from either path are interchangeable.
Simulation evaluators register no batch function and keep the pool.
"""

from __future__ import annotations

import re
import time
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.alltoall import AllToAllModel, solve_batch
from repro.core.client_server import (
    ClientServerModel,
    solve_workpile_batch,
    workpile_bounds_batch,
)
from repro.core.logp import LogPModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.rule_of_thumb import contention_bounds
from repro.mva.batch import batch_multiclass_amva, batch_multiclass_mva
from repro.mva.multiclass import MultiClassAMVAResult, multiclass_amva, multiclass_mva
from repro.sim.machine import MachineConfig

__all__ = [
    "evaluate_batch",
    "evaluate_point",
    "evaluator_defaults",
    "get_batch_evaluator",
    "get_evaluator",
    "list_evaluators",
    "machine_from_params",
    "register_batch_evaluator",
    "register_evaluator",
]

Evaluator = Callable[[Mapping[str, object]], dict[str, object]]
BatchEvaluator = Callable[[Sequence[Mapping[str, object]]], "list[dict[str, object]]"]

_EVALUATORS: dict[str, Evaluator] = {}
_BATCH_EVALUATORS: dict[str, BatchEvaluator] = {}
_DEFAULTS: dict[str, dict[str, object]] = {}


def register_evaluator(
    name: str, defaults: Mapping[str, object] | None = None
) -> Callable[[Evaluator], Evaluator]:
    """Decorator adding a point evaluator to the registry.

    ``defaults`` declares result-affecting parameters the evaluator
    fills in when a spec omits them.  The runner merges them into each
    point's params *before* cache keying and dispatch, so an omitted
    parameter and its explicit default hit the same cache record, and a
    later change to a default cannot silently reuse stale records.

    Evaluators registered at runtime (outside this module) are only
    visible to ``jobs > 1`` pools on fork-start platforms (Linux);
    spawn-start workers re-import this module and see just the
    built-ins.  Register in an importable module if that matters.
    """

    def deco(func: Evaluator) -> Evaluator:
        if name in _EVALUATORS:
            raise ValueError(f"evaluator {name!r} already registered")
        _EVALUATORS[name] = func
        if defaults:
            _DEFAULTS[name] = dict(defaults)
        return func

    return deco


def register_batch_evaluator(
    name: str,
) -> Callable[[BatchEvaluator], BatchEvaluator]:
    """Decorator advertising batch capability for a registered evaluator.

    The decorated function receives the full list of parameter dicts of
    a sweep's cache misses and must return one value dict per point, in
    order, with exactly the values the scalar evaluator would produce
    (the runner caches them under the same keys).  Only register a batch
    function whose output is bit-identical to the scalar path --
    anything else silently forks cached and fresh results.
    """

    def deco(func: BatchEvaluator) -> BatchEvaluator:
        get_evaluator(name)  # batch capability extends a scalar evaluator
        if name in _BATCH_EVALUATORS:
            raise ValueError(f"batch evaluator {name!r} already registered")
        _BATCH_EVALUATORS[name] = func
        return func

    return deco


def get_batch_evaluator(name: str) -> BatchEvaluator | None:
    """The batch companion of evaluator ``name``, or None."""
    get_evaluator(name)  # consistent unknown-name behaviour
    return _BATCH_EVALUATORS.get(name)


def evaluator_defaults(name: str) -> dict[str, object]:
    """Declared result-affecting defaults of a registered evaluator."""
    get_evaluator(name)
    return dict(_DEFAULTS.get(name, {}))


def get_evaluator(name: str) -> Evaluator:
    try:
        return _EVALUATORS[name]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS)) or "(none)"
        raise KeyError(f"unknown evaluator {name!r}; known: {known}") from None


def list_evaluators() -> list[str]:
    return sorted(_EVALUATORS)


def evaluate_point(task: tuple[str, dict]) -> dict[str, object]:
    """Worker entry point: evaluate one ``(evaluator, params)`` task.

    Returns a record ``{"values": ..., "meta": ...}``; the meta side
    carries the wall time of the evaluation and any ``_``-prefixed
    values the evaluator emitted (``_events`` becomes ``meta["events"]``).
    Top-level (not a closure) so it pickles into pool workers.
    """
    name, params = task
    func = get_evaluator(name)
    start = time.perf_counter()
    raw = func(params)
    wall = time.perf_counter() - start
    return _split_record(raw, wall)


def _split_record(raw: Mapping[str, object], wall: float,
                  batched: bool = False) -> dict[str, object]:
    values = {k: v for k, v in raw.items() if not k.startswith("_")}
    meta: dict[str, object] = {"wall_time": wall}
    if batched:
        meta["batched"] = True
    for key, value in raw.items():
        if key.startswith("_"):
            meta[key[1:]] = value
    return {"values": values, "meta": meta}


def evaluate_batch(
    name: str, params_list: Sequence[Mapping[str, object]]
) -> list[dict[str, object]]:
    """Evaluate many points through an evaluator's batch companion.

    Returns records shaped exactly like :func:`evaluate_point`'s, in
    input order.  ``meta["wall_time"]`` is each point's share of the one
    vectorized call (the quantity sweeps aggregate), and
    ``meta["batched"]`` marks the provenance.
    """
    func = _BATCH_EVALUATORS.get(name)
    if func is None:
        raise KeyError(f"evaluator {name!r} has no batch companion")
    if not params_list:
        return []
    start = time.perf_counter()
    raw_values = func(params_list)
    wall = time.perf_counter() - start
    if len(raw_values) != len(params_list):
        raise ValueError(
            f"batch evaluator {name!r} returned {len(raw_values)} records "
            f"for {len(params_list)} points"
        )
    share = wall / len(params_list)
    return [_split_record(raw, share, batched=True) for raw in raw_values]


# ---------------------------------------------------------------------------
# Shared parameter plumbing
# ---------------------------------------------------------------------------
def machine_from_params(params: Mapping[str, object]) -> MachineParams:
    """Build :class:`MachineParams` from paper-notation sweep parameters."""
    return MachineParams(
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        processors=int(params["P"]),
        handler_cv2=float(params.get("C2", 0.0)),
    )


def _config_from_params(params: Mapping[str, object]) -> MachineConfig:
    return MachineConfig(
        processors=int(params["P"]),
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        handler_cv2=float(params.get("C2", 0.0)),
        latency_cv2=float(params.get("latency_cv2", 0.0)),
        seed=int(params.get("seed", 0)),
    )


# ---------------------------------------------------------------------------
# All-to-all (paper Section 5)
# ---------------------------------------------------------------------------
def _alltoall_values(sol) -> dict[str, object]:
    """The ``alltoall-model`` value columns of one :class:`ModelSolution`."""
    return {
        "R": sol.response_time,
        "Rw": sol.compute_residence,
        "Rq": sol.request_residence,
        "Ry": sol.reply_residence,
        "X": sol.throughput,
        "Uq": sol.request_utilization,
        "Uy": sol.reply_utilization,
        "total_contention": sol.total_contention,
        "compute_contention": sol.compute_contention,
        "request_contention": sol.request_contention,
        "reply_contention": sol.reply_contention,
        "contention_fraction": sol.contention_fraction,
    }


@register_evaluator("alltoall-model")
def _alltoall_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    sol = AllToAllModel(machine).solve_work(float(params["W"]))
    return _alltoall_values(sol)


@register_batch_evaluator("alltoall-model")
def _alltoall_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    return [_alltoall_values(sol) for sol in solve_batch(grid)]


@register_evaluator("alltoall-bounds")
def _alltoall_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    lower, upper = contention_bounds(machine, float(params["W"]))
    return {"lower": lower, "upper": upper}


@register_batch_evaluator("alltoall-bounds")
def _alltoall_bounds_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Closed forms: the only iterative work is the Eq. 5.12 constant
    # kappa(C^2), lru-cached per distinct C^2 (upper_bound_constant), so
    # one Brent solve serves the whole grid.  Batch capability here buys
    # in-process dispatch (no pool round-trip per point).
    return [_alltoall_bounds(params) for params in params_list]


@register_evaluator(
    "alltoall-sim",
    # `streams` is result-affecting (bulk draws change the trajectory a
    # fixed seed produces), so it lives in the cache key like any other
    # parameter; the pre-stream scalar path stays reachable as
    # streams=False.  Buffers are pre-sized from the expected per-point
    # event count (2 handler draws/node/cycle, 2 wire hops/cycle) by the
    # runner, so each stream refills once per point.
    defaults={"cycles": 300, "seed": 0, "work_cv2": 0.0, "latency_cv2": 0.0,
              "streams": True},
)
def _alltoall_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.alltoall import run_alltoall

    config = _config_from_params(params)
    measured = run_alltoall(
        config,
        work=float(params["W"]),
        cycles=int(params.get("cycles", 300)),
        work_cv2=float(params.get("work_cv2", 0.0)),
        use_streams=bool(params.get("streams", True)),
    )
    return {
        "R": measured.response_time,
        "Rw": measured.compute_residence,
        "Rq": measured.request_residence,
        "Ry": measured.reply_residence,
        "X": measured.throughput,
        "Uq": measured.request_utilization,
        "Uy": measured.reply_utilization,
        "total_contention": measured.total_contention,
        "compute_contention": measured.compute_contention,
        "request_contention": measured.request_contention,
        "reply_contention": measured.reply_contention,
        "handler_queue": measured.handler_queue,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


# ---------------------------------------------------------------------------
# Client-server workpile (paper Chapter 6)
# ---------------------------------------------------------------------------
def _workpile_values(sol) -> dict[str, object]:
    """The ``workpile-model`` value columns of one :class:`WorkpileSolution`."""
    return {
        "X": sol.throughput,
        "R": sol.response_time,
        "Rs": sol.server_residence,
        "Qs": sol.server_queue,
        "Us": sol.server_utilization,
    }


@register_evaluator("workpile-model")
def _workpile_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    model = ClientServerModel(machine, work=float(params["W"]))
    sol = model.solve(int(params["Ps"]))
    return _workpile_values(sol)


@register_batch_evaluator("workpile-model")
def _workpile_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Validate each machine exactly like the scalar path before the
    # vectorized solve.
    for params in params_list:
        machine_from_params(params)
    solutions = solve_workpile_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [float(p.get("C2", 0.0)) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
    )
    return [_workpile_values(sol) for sol in solutions]


@register_evaluator(
    "workpile-sim",
    # chunks matches fig-6.2's default, not run_workpile's 300.
    # `streams` keys the cache exactly like alltoall-sim's; the runner
    # pre-sizes buffers from the expected chunk/request counts per point.
    defaults={"chunks": 250, "seed": 0, "work_cv2": 0.0, "latency_cv2": 0.0,
              "streams": True},
)
def _workpile_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.workpile import run_workpile

    config = _config_from_params(params)
    measured = run_workpile(
        config,
        servers=int(params["Ps"]),
        work=float(params["W"]),
        chunks=int(params.get("chunks", 250)),
        work_cv2=float(params.get("work_cv2", 0.0)),
        use_streams=bool(params.get("streams", True)),
    )
    return {
        "X": measured.throughput,
        "wall_X": measured.wall_throughput,
        "R": measured.response_time,
        "Rs": measured.server_residence,
        "Qs": measured.server_queue,
        "Us": measured.server_utilization,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


@register_evaluator("workpile-bounds")
def _workpile_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    logp = LogPModel(machine)
    servers = int(params["Ps"])
    clients = machine.processors - servers
    return {
        "server_bound": logp.workpile_server_bound(servers),
        "client_bound": logp.workpile_client_bound(clients, float(params["W"])),
    }


@register_batch_evaluator("workpile-bounds")
def _workpile_bounds_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Validate each machine exactly like the scalar path, then evaluate
    # the LogP closed forms for the whole grid in one vectorized call.
    for params in params_list:
        machine_from_params(params)
    arrays = workpile_bounds_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
    )
    return [
        {
            "server_bound": float(arrays["server_bound"][i]),
            "client_bound": float(arrays["client_bound"][i]),
        }
        for i in range(len(params_list))
    ]


# ---------------------------------------------------------------------------
# Multi-class MVA (Chapter-6 heterogeneous studies)
# ---------------------------------------------------------------------------
def _multiclass_network_from_params(
    params: Mapping[str, object],
) -> tuple[list[list[float]], list[int], list[float], list[str] | None, str]:
    """Decode a multi-class network from flat sweep parameters.

    Classes and centres are encoded as JSON scalars so multi-class
    networks stay sweepable and cacheable: populations ``N0, N1, ...``,
    optional think times ``Z{c}`` (default 0), demands ``D{c}_{k}``, an
    optional comma-separated ``kinds`` string and a ``method`` of
    ``"exact"`` (default), ``"bard"`` or ``"schweitzer"``.
    """
    n_classes = 0
    while f"N{n_classes}" in params:
        n_classes += 1
    if n_classes == 0:
        raise ValueError(
            "multiclass-mva needs class populations N0, N1, ... in params"
        )
    n_centers = 0
    while f"D0_{n_centers}" in params:
        n_centers += 1
    if n_centers == 0:
        raise ValueError(
            "multiclass-mva needs per-centre demands D0_0, D0_1, ... in params"
        )
    # Reject class/centre keys beyond the contiguous N0.. / D0_0.. runs:
    # a gapped index (a typo'd N2 without N1, a D0_3 without D0_2) would
    # otherwise silently drop part of the network from the solution.
    for key in params:
        match = re.fullmatch(r"N(\d+)|Z(\d+)|D(\d+)_(\d+)", key)
        if match is None:
            continue
        n_idx, z_idx, d_cls, d_ctr = match.groups()
        cls = int(n_idx or z_idx or d_cls)
        if cls >= n_classes:
            raise ValueError(
                f"multiclass-mva param {key!r} names class {cls}, but only "
                f"classes 0..{n_classes - 1} are defined -- N0..N{{c}} must "
                "be contiguous"
            )
        if d_ctr is not None and int(d_ctr) >= n_centers:
            raise ValueError(
                f"multiclass-mva param {key!r} names centre {int(d_ctr)}, "
                f"but only centres 0..{n_centers - 1} are defined -- "
                "D0_0..D0_{k} must be contiguous"
            )
    try:
        demands = [
            [float(params[f"D{c}_{k}"]) for k in range(n_centers)]
            for c in range(n_classes)
        ]
    except KeyError as exc:
        raise ValueError(
            f"multiclass-mva params missing demand {exc.args[0]!r}: every "
            f"class needs demands D{{c}}_0..D{{c}}_{n_centers - 1}"
        ) from None
    populations = [int(params[f"N{c}"]) for c in range(n_classes)]
    think_times = [float(params.get(f"Z{c}", 0.0)) for c in range(n_classes)]
    kinds_param = params.get("kinds")
    kinds = str(kinds_param).split(",") if kinds_param else None
    return demands, populations, think_times, kinds, str(params.get("method", "exact"))


def _multiclass_values(res) -> dict[str, object]:
    """The ``multiclass-mva`` value columns of one scalar-shaped result."""
    values: dict[str, object] = {"X": float(res.throughputs.sum())}
    for c in range(len(res.populations)):
        values[f"X{c}"] = float(res.throughputs[c])
        values[f"R{c}"] = float(res.cycle_times[c])
    for k in range(res.queue_lengths.size):
        values[f"Q{k}"] = float(res.queue_lengths[k])
    if isinstance(res, MultiClassAMVAResult):
        values["_iterations"] = int(res.iterations)
        values["_converged"] = bool(res.converged)
    return values


def _multiclass_values_from_batch(batch, j: int) -> dict[str, object]:
    """One point's value columns straight from the stacked batch arrays.

    Same keys and (bit-identical) numbers as
    ``_multiclass_values(batch.point(j))`` without the per-point array
    copies -- the batch fast path assembles thousands of these.
    """
    throughputs = batch.throughputs[j]
    values: dict[str, object] = {"X": float(throughputs.sum())}
    cycles = batch.cycle_times[j]
    for c in range(throughputs.size):
        values[f"X{c}"] = float(throughputs[c])
        values[f"R{c}"] = float(cycles[c])
    queues = batch.queue_lengths[j]
    for k in range(queues.size):
        values[f"Q{k}"] = float(queues[k])
    if batch.method != "exact":
        values["_iterations"] = int(batch.iterations[j])
        values["_converged"] = bool(batch.converged[j])
    return values


@register_evaluator("multiclass-mva", defaults={"method": "exact"})
def _multiclass_model(params: Mapping[str, object]) -> dict[str, object]:
    demands, populations, think_times, kinds, method = (
        _multiclass_network_from_params(params)
    )
    if method == "exact":
        res = multiclass_mva(demands, populations, think_times=think_times,
                             kinds=kinds)
    else:
        res = multiclass_amva(demands, populations, think_times=think_times,
                              kinds=kinds, method=method)
    return _multiclass_values(res)


@register_batch_evaluator("multiclass-mva")
def _multiclass_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Points sharing a structure (method, kinds, class/centre counts)
    # batch into one vectorized kernel call; a heterogeneous miss list
    # (e.g. a method axis) becomes one call per group, in order.
    parsed = [_multiclass_network_from_params(p) for p in params_list]
    groups: dict[tuple, list[int]] = {}
    for i, (demands, populations, _, kinds, method) in enumerate(parsed):
        signature = (
            method,
            tuple(kinds) if kinds is not None else None,
            len(populations),
            len(demands[0]),
        )
        groups.setdefault(signature, []).append(i)

    out: list[dict[str, object] | None] = [None] * len(parsed)
    for (method, kinds, _, _), indices in groups.items():
        demands = np.array([parsed[i][0] for i in indices])
        populations = np.array([parsed[i][1] for i in indices])
        think_times = np.array([parsed[i][2] for i in indices])
        kinds_list = list(kinds) if kinds is not None else None
        if method == "exact":
            batch = batch_multiclass_mva(
                demands, populations, think_times, kinds=kinds_list
            )
        else:
            batch = batch_multiclass_amva(
                demands, populations, think_times, kinds=kinds_list,
                method=method,
            )
        for j, i in enumerate(indices):
            out[i] = _multiclass_values_from_batch(batch, j)
    return out
