"""Named point evaluators: the string-keyed registry the sweeps map over.

An evaluator is a plain top-level function ``params -> values`` where
both sides are flat JSON-serialisable mappings -- top-level so it
pickles into :class:`~concurrent.futures.ProcessPoolExecutor` workers,
JSON-flat so results cache and export without adapters.  Value keys
beginning with ``_`` (e.g. ``_events``) are lifted into the record's
``meta`` by :func:`evaluate_point` rather than appearing as columns.

Since the scenario facade landed, this module is a *compatibility
shim*: the built-in evaluators are declared once, as backends of the
:class:`~repro.api.scenario.Scenario` classes in
:mod:`repro.api.scenarios`, and registered here under their historical
string names at import time.  Existing spec files, cached records and
the ``register_evaluator`` API are unaffected -- same names, same
parameters, same cache keys -- and runtime registration of new
evaluators keeps working exactly as before.

Built-in evaluators (see :mod:`repro.api.scenarios` for the bodies)
-------------------------------------------------------------------
``alltoall-model``     LoPC AMVA solution of the Section-5 all-to-all.
``alltoall-sim``       Event-driven simulation of the same workload.
``alltoall-bounds``    Eq. 5.12 contention-free / rule-of-thumb bounds.
``workpile-model``     LoPC client-server workpile solution (Chapter 6).
``workpile-sim``       Simulated workpile for one ``(Ps, Pc)`` split.
``workpile-bounds``    LogP-style optimistic saturation bounds.
``multiclass-mva``     Exact or approximate multi-class MVA; classes are
                       encoded as flat ``N{c}`` / ``Z{c}`` / ``D{c}_{k}``
                       scalars.
``nonblocking-model``  Windowed non-blocking LoPC fixed point (k=0 means
                       an unbounded window).
``nonblocking-sim``    Measured issue rate of the non-blocking workload.

Batch capability
----------------
Analytic evaluators can additionally *advertise batch capability* via
:func:`register_batch_evaluator`: a companion function that takes the
whole list of cache-miss parameter dicts and evaluates them in one
vectorized call.  The sweep runner prefers the batch path when one is
registered -- one masked numpy fixed point instead of thousands of
scalar solves or process-pool round-trips -- and the values are
bit-identical to the scalar evaluator's, so cache records from either
path are interchangeable.  Simulation evaluators register no batch
function and keep the pool.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

__all__ = [
    "evaluate_batch",
    "evaluate_batch_warm",
    "evaluate_point",
    "evaluator_defaults",
    "get_batch_evaluator",
    "get_evaluator",
    "get_warm_evaluator",
    "list_evaluators",
    "machine_from_params",
    "register_batch_evaluator",
    "register_evaluator",
    "register_warm_evaluator",
    "warm_supports_staging",
]

Evaluator = Callable[[Mapping[str, object]], dict[str, object]]
BatchEvaluator = Callable[[Sequence[Mapping[str, object]]], "list[dict[str, object]]"]
WarmBatchEvaluator = Callable[
    [Sequence[Mapping[str, object]], Sequence[object]],
    "tuple[list[dict[str, object]], list[object]]",
]

_EVALUATORS: dict[str, Evaluator] = {}
_BATCH_EVALUATORS: dict[str, BatchEvaluator] = {}
_WARM_EVALUATORS: dict[str, WarmBatchEvaluator] = {}
_STAGED_WARM: set[str] = set()
_DEFAULTS: dict[str, dict[str, object]] = {}


def register_evaluator(
    name: str, defaults: Mapping[str, object] | None = None
) -> Callable[[Evaluator], Evaluator]:
    """Decorator adding a point evaluator to the registry.

    ``defaults`` declares result-affecting parameters the evaluator
    fills in when a spec omits them.  The runner merges them into each
    point's params *before* cache keying and dispatch, so an omitted
    parameter and its explicit default hit the same cache record, and a
    later change to a default cannot silently reuse stale records.

    Evaluators registered at runtime (outside this module) are only
    visible to ``jobs > 1`` pools on fork-start platforms (Linux);
    spawn-start workers re-import this module and see just the
    built-ins.  Register in an importable module if that matters.
    """

    def deco(func: Evaluator) -> Evaluator:
        existing = _EVALUATORS.get(name)
        if existing is not None:
            raise ValueError(
                f"evaluator {name!r} already registered by module "
                f"{existing.__module__} ({existing.__qualname__}); "
                "pick a different name"
            )
        _EVALUATORS[name] = func
        if defaults:
            _DEFAULTS[name] = dict(defaults)
        return func

    return deco


def register_batch_evaluator(
    name: str,
) -> Callable[[BatchEvaluator], BatchEvaluator]:
    """Decorator advertising batch capability for a registered evaluator.

    The decorated function receives the full list of parameter dicts of
    a sweep's cache misses and must return one value dict per point, in
    order, with exactly the values the scalar evaluator would produce
    (the runner caches them under the same keys).  Only register a batch
    function whose output is bit-identical to the scalar path --
    anything else silently forks cached and fresh results.
    """

    def deco(func: BatchEvaluator) -> BatchEvaluator:
        get_evaluator(name)  # batch capability extends a scalar evaluator
        existing = _BATCH_EVALUATORS.get(name)
        if existing is not None:
            raise ValueError(
                f"batch evaluator {name!r} already registered by module "
                f"{existing.__module__} ({existing.__qualname__}); "
                "pick a different name"
            )
        _BATCH_EVALUATORS[name] = func
        return func

    return deco


def get_batch_evaluator(name: str) -> BatchEvaluator | None:
    """The batch companion of evaluator ``name``, or None."""
    get_evaluator(name)  # consistent unknown-name behaviour
    return _BATCH_EVALUATORS.get(name)


def register_warm_evaluator(
    name: str, staged: bool = False
) -> Callable[[WarmBatchEvaluator], WarmBatchEvaluator]:
    """Decorator advertising warm-start capability for a batch evaluator.

    The decorated function receives ``(params_list, seeds)`` -- one
    initial-state array or ``None`` per point -- and returns
    ``(raw_values_list, states_list)``: the same value dicts the plain
    batch companion produces plus each point's converged solver state
    (an ndarray, or ``None`` where the point has no iterative state).
    A warm solve must converge to the same fixed point as a cold one
    (within solver tolerance), and an all-``None`` seed list must be
    *bit-identical* to the plain batch path -- the runner caches warm
    and cold records interchangeably under unchanged keys.

    ``staged=True`` additionally advertises that the function accepts a
    ``stager`` keyword and forwards it to
    :func:`repro.core.solver.solve_fixed_point_batch`, letting the
    runner stage all refinement passes inside one solver call instead
    of dispatching pass by pass (see
    :func:`~repro.sweep.evaluators.warm_supports_staging`).
    """

    def deco(func: WarmBatchEvaluator) -> WarmBatchEvaluator:
        if _BATCH_EVALUATORS.get(name) is None:
            get_evaluator(name)  # consistent unknown-name behaviour
            raise ValueError(
                f"evaluator {name!r} has no batch companion; warm-start "
                "capability extends the batch path"
            )
        existing = _WARM_EVALUATORS.get(name)
        if existing is not None:
            raise ValueError(
                f"warm evaluator {name!r} already registered by module "
                f"{existing.__module__} ({existing.__qualname__}); "
                "pick a different name"
            )
        _WARM_EVALUATORS[name] = func
        if staged:
            _STAGED_WARM.add(name)
        return func

    return deco


def get_warm_evaluator(name: str) -> WarmBatchEvaluator | None:
    """The warm-start companion of evaluator ``name``, or None."""
    get_evaluator(name)  # consistent unknown-name behaviour
    return _WARM_EVALUATORS.get(name)


def warm_supports_staging(name: str) -> bool:
    """Whether ``name``'s warm companion accepts a ``stager`` keyword."""
    get_evaluator(name)  # consistent unknown-name behaviour
    return name in _STAGED_WARM


def evaluator_defaults(name: str) -> dict[str, object]:
    """Declared result-affecting defaults of a registered evaluator."""
    get_evaluator(name)
    return dict(_DEFAULTS.get(name, {}))


def get_evaluator(name: str) -> Evaluator:
    try:
        return _EVALUATORS[name]
    except KeyError:
        known = ", ".join(sorted(_EVALUATORS)) or "(none)"
        raise KeyError(f"unknown evaluator {name!r}; known: {known}") from None


def list_evaluators() -> list[str]:
    """Registered evaluator names, sorted so docs and CLI help are stable."""
    return sorted(_EVALUATORS)


def evaluate_point(task: tuple[str, dict]) -> dict[str, object]:
    """Worker entry point: evaluate one ``(evaluator, params)`` task.

    Returns a record ``{"values": ..., "meta": ...}``; the meta side
    carries the wall time of the evaluation and any ``_``-prefixed
    values the evaluator emitted (``_events`` becomes ``meta["events"]``).
    Top-level (not a closure) so it pickles into pool workers.
    """
    name, params = task
    func = get_evaluator(name)
    start = time.perf_counter()
    raw = func(params)
    wall = time.perf_counter() - start
    return _split_record(raw, wall)


def _split_record(raw: Mapping[str, object], wall: float,
                  batched: bool = False) -> dict[str, object]:
    values = {k: v for k, v in raw.items() if not k.startswith("_")}
    meta: dict[str, object] = {"wall_time": wall}
    if batched:
        meta["batched"] = True
    for key, value in raw.items():
        if key.startswith("_"):
            meta[key[1:]] = value
    return {"values": values, "meta": meta}


def evaluate_batch(
    name: str, params_list: Sequence[Mapping[str, object]]
) -> list[dict[str, object]]:
    """Evaluate many points through an evaluator's batch companion.

    Returns records shaped exactly like :func:`evaluate_point`'s, in
    input order.  ``meta["wall_time"]`` is each point's share of the one
    vectorized call (the quantity sweeps aggregate), and
    ``meta["batched"]`` marks the provenance.
    """
    func = _BATCH_EVALUATORS.get(name)
    if func is None:
        raise KeyError(f"evaluator {name!r} has no batch companion")
    if not params_list:
        return []
    start = time.perf_counter()
    raw_values = func(params_list)
    wall = time.perf_counter() - start
    if len(raw_values) != len(params_list):
        raise ValueError(
            f"batch evaluator {name!r} returned {len(raw_values)} records "
            f"for {len(params_list)} points"
        )
    share = wall / len(params_list)
    return [_split_record(raw, share, batched=True) for raw in raw_values]


def evaluate_batch_warm(
    name: str,
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object],
    stager: object | None = None,
) -> tuple[list[dict[str, object]], list[object]]:
    """Evaluate many points through a warm-start batch companion.

    ``seeds`` holds one initial-state array (or ``None`` for a cold
    start) per point.  Returns ``(records, states)``: records shaped
    exactly like :func:`evaluate_batch`'s, plus each point's converged
    solver state for seeding later chunks.  Values converge to the same
    fixed point as the cold batch path (bit-identical when every seed
    is ``None``), so the runner caches them under the same keys.

    ``stager`` (optional; only for evaluators registered with
    ``staged=True``) is forwarded to the underlying batched solve so
    point activation is staged inside one call -- ``seeds`` then
    typically stays all-``None`` and the stager synthesises seeds
    mid-solve.
    """
    func = _WARM_EVALUATORS.get(name)
    if func is None:
        raise KeyError(f"evaluator {name!r} has no warm-start companion")
    if stager is not None and name not in _STAGED_WARM:
        raise ValueError(
            f"warm evaluator {name!r} does not support staged activation"
        )
    if not params_list:
        return [], []
    if len(seeds) != len(params_list):
        raise ValueError(
            f"warm evaluator {name!r} got {len(seeds)} seeds for "
            f"{len(params_list)} points"
        )
    start = time.perf_counter()
    if stager is not None:
        raw_values, states = func(params_list, seeds, stager=stager)
    else:
        raw_values, states = func(params_list, seeds)
    wall = time.perf_counter() - start
    if len(raw_values) != len(params_list) or len(states) != len(params_list):
        raise ValueError(
            f"warm evaluator {name!r} returned {len(raw_values)} records / "
            f"{len(states)} states for {len(params_list)} points"
        )
    share = wall / len(params_list)
    records = [_split_record(raw, share, batched=True) for raw in raw_values]
    return records, states


# ---------------------------------------------------------------------------
# Built-in registration: one walk over the scenario declarations.
#
# These imports sit at the *bottom* deliberately: repro.api.study pulls
# the runner (and therefore this module) back in, and the import cycle
# only resolves because everything the runner needs is already defined
# by the time the scenario classes load.  `machine_from_params` is
# re-exported for compatibility -- it predates the facade.
# ---------------------------------------------------------------------------
from repro.api.scenarios import SCENARIO_CLASSES as _SCENARIO_CLASSES  # noqa: E402
from repro.api.scenarios import machine_from_params  # noqa: E402,F401

for _scenario_cls in _SCENARIO_CLASSES:
    for _backend in _scenario_cls.backends:
        register_evaluator(
            _backend.evaluator, defaults=_backend.defaults or None
        )(_backend.func)
        if _backend.batch is not None:
            register_batch_evaluator(_backend.evaluator)(_backend.batch)
        if _backend.warm is not None:
            register_warm_evaluator(
                _backend.evaluator, staged=_backend.staged
            )(_backend.warm)
del _scenario_cls, _backend
