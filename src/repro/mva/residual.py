"""Residual-life arithmetic for service distributions of arbitrary ``C^2``.

The default LoPC model assumes exponentially distributed handler service
times (``C^2 = 1``).  Section 5.2 of the paper extends the model to
arbitrary squared coefficients of variation: when a message arrives at a
node whose handler is busy (probability = utilisation ``U``), the arriving
message waits for the *residual life* of the handler in service, which for
a distribution with mean ``S`` and squared coefficient of variation ``C^2``
is::

    E[residual] = (1 + C^2) / 2 * S

A message arriving at node ``k`` is delayed by the residual life of the
handler in service plus the *full* service time of every other queued
handler.  Writing the steady-state handler count as ``Q_k`` (which includes
the one in service, with probability ``U_k``), the expected delay is
(paper Eq. 5.8)::

    S * (Q_k - U_k) + (1 + C^2)/2 * S * U_k  =  S * (Q_k + (C^2 - 1)/2 * U_k)

so the whole C^2 extension enters the response-time equations through the
additive correction ``(C^2 - 1)/2 * U_k`` -- positive for hyper-exponential
handlers, zero for exponential, ``-U_k/2`` for deterministic handlers.
"""

from __future__ import annotations

__all__ = ["mean_residual_life", "residual_correction", "queue_delay"]


def mean_residual_life(service_time: float, cv2: float) -> float:
    """Mean remaining service seen by a random arrival: ``(1 + C^2)/2 * S``.

    Parameters
    ----------
    service_time:
        Mean service time ``S`` (>= 0).
    cv2:
        Squared coefficient of variation ``C^2 = Var[S]/E[S]^2`` (>= 0).
        ``0`` = deterministic (residual ``S/2``); ``1`` = exponential
        (residual ``S``, memorylessness).
    """
    if service_time < 0:
        raise ValueError(f"service_time must be >= 0, got {service_time!r}")
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2!r}")
    return 0.5 * (1.0 + cv2) * service_time


def residual_correction(utilization: float, cv2: float) -> float:
    """The additive queue-length correction ``(C^2 - 1)/2 * U`` of Eq. 5.8.

    Added to the steady-state queue length before multiplying by the mean
    service time, this converts "every queued customer costs a full service
    time" into "the customer in service costs only its residual life".
    """
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2!r}")
    if utilization < 0:
        raise ValueError(f"utilization must be >= 0, got {utilization!r}")
    return 0.5 * (cv2 - 1.0) * utilization


def queue_delay(
    service_time: float, queue_length: float, utilization: float, cv2: float
) -> float:
    """Expected delay behind queued handlers (Eq. 5.8).

    ``S * (Q + (C^2 - 1)/2 * U)`` -- the full service time of every queued
    handler with the in-service one discounted to its residual life.

    Notes
    -----
    ``queue_length`` is the steady-state mean *including* the customer in
    service; with Bard's approximation it also stands in for the queue
    length observed at arrival instants (see :mod:`repro.mva.bard`).
    """
    if queue_length < 0:
        raise ValueError(f"queue_length must be >= 0, got {queue_length!r}")
    delay = service_time * (queue_length + residual_correction(utilization, cv2))
    # With C^2 = 0 and U > Q the correction could in principle go negative;
    # physically the delay is never below zero.
    return max(delay, 0.0)
