"""Little's result: ``N = X * R``.

Little's result states that for *any* stable queueing system -- regardless
of scheduling discipline, service-time distribution, or arrival process --
the time-average number of customers ``N`` equals the throughput ``X``
times the mean residence time ``R``.

The LoPC model uses Little's result pervasively (paper Sections 4-6 and
Appendix A):

* system throughput from population and cycle time, ``X = P / R``
  (Eq. 5.1, A.1);
* mean queue length at a node from per-node throughput and response time,
  ``Q_k = V X R_k`` (Eq. 5.3, A.5, A.6);
* utilisation of a node by a handler class, ``U_k = V X S_o``
  (Eq. 5.4, A.3, A.4);
* queue length per server in the workpile analysis, ``Q_s = (X/P_s) R_s``
  (Eq. 6.1).

These helpers exist so the model code reads like the paper's equations and
so the relationships can be property-tested in one place.
"""

from __future__ import annotations

__all__ = [
    "customers_from_throughput",
    "response_from_customers",
    "throughput_from_customers",
    "utilization",
]


def _check_nonnegative(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def _check_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def customers_from_throughput(throughput: float, response_time: float) -> float:
    """Mean customer count ``N = X * R``.

    Parameters
    ----------
    throughput:
        Mean completion rate ``X`` (customers per unit time), >= 0.
    response_time:
        Mean residence time ``R`` per customer, >= 0.
    """
    _check_nonnegative("throughput", throughput)
    _check_nonnegative("response_time", response_time)
    return throughput * response_time


def throughput_from_customers(customers: float, response_time: float) -> float:
    """Throughput ``X = N / R`` (Eq. 5.1 uses this with ``N = P``)."""
    _check_nonnegative("customers", customers)
    _check_positive("response_time", response_time)
    return customers / response_time


def response_from_customers(customers: float, throughput: float) -> float:
    """Mean residence time ``R = N / X``."""
    _check_nonnegative("customers", customers)
    _check_positive("throughput", throughput)
    return customers / throughput


def utilization(arrival_rate: float, service_time: float) -> float:
    """Utilisation ``U = lambda * S`` of a single server.

    This is Little's result applied to the *service position only*: the mean
    number of customers in service equals the arrival rate times the mean
    service demand.  The paper uses this as ``U_k = V X S_o`` (Eq. 5.4).

    The result is not clamped; callers detect saturation via ``U >= 1``.
    """
    _check_nonnegative("arrival_rate", arrival_rate)
    _check_nonnegative("service_time", service_time)
    return arrival_rate * service_time
