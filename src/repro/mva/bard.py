"""Bard's approximation to the Arrival Theorem.

The Arrival Theorem (Lavenberg & Reiser 1980; Sevcik & Mitrani 1981) states
that in a closed product-form queueing network with ``N`` customers, the
queue-length distribution observed by a customer *arriving* at a service
centre equals the steady-state distribution of the same network with
``N - 1`` customers::

    A_k(N) = Q_k(N - 1)

Exact MVA exploits this recursively (see :mod:`repro.mva.exact`), but the
recursion on ``N`` is exactly what makes closed-form analysis unwieldy.
Bard (1979) proposed the approximation::

    A_k(N) ~= Q_k(N)

i.e. the arriving customer sees the steady-state queue of the *full*
network.  This slightly over-estimates queue lengths and response times
(and under-estimates throughput) because it lets a customer "see itself" in
the queue; the error vanishes as ``N`` grows.  The paper (Section 4) adopts
Bard's approximation precisely because its simplicity yields closed-form
rules of thumb; the known pessimism is visible in Figure 5-3 where LoPC
over-predicts reply-handler queueing at ``W = 0``.

This module packages both forms so model code and tests can name the
approximation explicitly.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["arrival_queue_bard", "arrival_queue_exact_mva"]


def arrival_queue_bard(steady_state_queue: float) -> float:
    """Queue length seen at arrival under Bard's approximation.

    ``A_k(N) ~= Q_k(N)`` -- the identity function, named so call sites
    document which approximation the surrounding equations assume.
    """
    if steady_state_queue < 0:
        raise ValueError(
            f"steady_state_queue must be >= 0, got {steady_state_queue!r}"
        )
    return steady_state_queue


def arrival_queue_exact_mva(
    queue_with_population: Callable[[int], float], population: int
) -> float:
    """Queue length seen at arrival under the exact Arrival Theorem.

    Parameters
    ----------
    queue_with_population:
        Function mapping a population ``n`` to the steady-state mean queue
        length ``Q_k(n)`` of the network with ``n`` customers.
    population:
        Total population ``N`` of the network the arriving customer
        belongs to (>= 1).

    Returns
    -------
    ``Q_k(N - 1)``, the exact arrival-instant mean queue length.
    """
    if population < 1:
        raise ValueError(f"population must be >= 1, got {population!r}")
    queue = queue_with_population(population - 1)
    if queue < 0:
        raise ValueError(f"queue_with_population returned negative value {queue!r}")
    return queue
