"""Chandy--Lakshmi priority approximation (the road not taken).

Section 5.1: "We are unable to use the Chandy-Lakshmi priority
approximation, which is often more accurate than BKT, because it
requires information about queue lengths in a system with P - 1
customers" -- exactly the recursion Bard's approximation removes.

This module implements that alternative anyway, so the trade-off the
paper asserts can be measured (see ``benchmarks/bench_ablation_cl.py``):
the thread's residence time is computed from the queue statistics of a
*reduced* system holding one fewer customer, restoring the Arrival
Theorem for the low-priority class::

    Rw_CL = (W + So * Qq^{P-1}) / (1 - Uq^{P-1})

where the ``P-1``-customer statistics come from solving the homogeneous
all-to-all AMVA system with its per-node arrival rate scaled by
``(P-1)/P`` (one fewer thread spread over the same ``P`` nodes).  The
handler equations of the full system are unchanged.

The cost is what the paper implies: a second fixed-point solve and the
loss of the closed-form rule of thumb.  The benefit, measured in the
ablation, is a slightly less pessimistic ``Rw`` at small ``W``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import MachineParams
from repro.core.results import ModelSolution
from repro.core.solver import solve_fixed_point
from repro.mva.bkt import bkt_residence_time
from repro.mva.residual import residual_correction

__all__ = ["chandy_lakshmi_residence", "solve_alltoall_cl"]


def chandy_lakshmi_residence(
    work: float,
    handler_time: float,
    reduced_queue: float,
    reduced_utilization: float,
) -> float:
    """Thread residence from reduced-system (``N-1``) statistics.

    Structurally the BKT formula, but its queue/utilisation inputs must
    come from the system with one fewer customer (the caller's burden --
    that is the whole difference between the approximations).
    """
    return bkt_residence_time(
        work, handler_time, reduced_queue, reduced_utilization
    )


@dataclass(frozen=True)
class _ReducedStats:
    queue: float  # Qq of the (P-1)-customer system
    utilization: float  # Uq of the (P-1)-customer system


def _solve_reduced(machine: MachineParams, work: float,
                   damping: float, tol: float, max_iter: int) -> _ReducedStats:
    """Homogeneous all-to-all with P-1 customers on P nodes."""
    so, st, cv2 = machine.handler_time, machine.latency, machine.handler_cv2
    factor = (machine.processors - 1) / machine.processors

    def update(state: np.ndarray) -> np.ndarray:
        rw, rq, ry = state
        r = rw + 2.0 * st + rq + ry
        lam = factor / r  # per-node arrival rate with one fewer thread
        uq = uy = lam * so
        qq, qy = lam * rq, lam * ry
        new_rq = so * (1 + qq + qy + residual_correction(uq, cv2)
                       + residual_correction(uy, cv2))
        new_ry = so * (1 + qq + residual_correction(uq, cv2))
        new_rw = bkt_residence_time(work, so, qq, uq)
        return np.array([new_rw, new_rq, new_ry])

    result = solve_fixed_point(
        update, np.array([work, so, so]), damping=damping, tol=tol,
        max_iter=max_iter,
    )
    rw, rq, ry = result.value
    r = rw + 2.0 * st + rq + ry
    lam = factor / r
    return _ReducedStats(queue=lam * rq, utilization=lam * so)


def solve_alltoall_cl(
    machine: MachineParams,
    work: float,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 50_000,
) -> ModelSolution:
    """Homogeneous all-to-all with the Chandy--Lakshmi thread residence.

    Handler response times use the standard full-population Bard
    equations (5.9)/(5.10); only ``Rw`` switches to reduced-system
    inputs.  Returns the same :class:`ModelSolution` record as
    :class:`repro.core.alltoall.AllToAllModel` for direct comparison.
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    reduced = _solve_reduced(machine, work, damping, tol, max_iter)
    so, st, cv2 = machine.handler_time, machine.latency, machine.handler_cv2

    def update(state: np.ndarray) -> np.ndarray:
        rw, rq, ry = state
        r = rw + 2.0 * st + rq + ry
        lam = 1.0 / r
        uq = uy = lam * so
        qq, qy = lam * rq, lam * ry
        new_rq = so * (1 + qq + qy + residual_correction(uq, cv2)
                       + residual_correction(uy, cv2))
        new_ry = so * (1 + qq + residual_correction(uq, cv2))
        new_rw = chandy_lakshmi_residence(
            work, so, reduced.queue, reduced.utilization
        )
        return np.array([new_rw, new_rq, new_ry])

    result = solve_fixed_point(
        update, np.array([work, so, so]), damping=damping, tol=tol,
        max_iter=max_iter,
    )
    rw, rq, ry = result.value
    r = rw + 2.0 * st + rq + ry
    lam = 1.0 / r
    return ModelSolution(
        response_time=r,
        compute_residence=rw,
        request_residence=rq,
        reply_residence=ry,
        throughput=machine.processors / r,
        request_queue=lam * rq,
        reply_queue=lam * ry,
        request_utilization=lam * so,
        reply_utilization=lam * so,
        work=work,
        latency=st,
        handler_time=so,
        meta={
            "model": "lopc-alltoall-chandy-lakshmi",
            "iterations": result.iterations,
            "reduced_queue": reduced.queue,
            "reduced_utilization": reduced.utilization,
        },
    )
