"""Exact and approximate MVA for closed *multi-class* networks.

The single-class recursion (:mod:`repro.mva.exact`) extends to ``C``
customer classes with population vector ``N = (N_1, ..., N_C)``,
per-class demands ``D_{c,k}`` and think times ``Z_c`` (Reiser &
Lavenberg 1980).  For every population vector ``n <= N`` (component
wise), with ``e_c`` the unit vector of class ``c``::

    R_{c,k}(n) = D_{c,k} * (1 + Q_k(n - e_c))    queueing centre
    R_{c,k}(n) = D_{c,k}                          delay centre
    X_c(n)     = n_c / (Z_c + sum_k R_{c,k}(n))
    Q_k(n)     = sum_c X_c(n) * R_{c,k}(n)

Cost is ``prod_c (N_c + 1)`` lattice points -- fine for the validation
cases this library needs (e.g. a workpile with two client classes of
different chunk sizes, which is product-form when handlers are
exponential and therefore provides *ground truth* for the heterogeneous
Appendix-A LoPC model).

:func:`multiclass_amva` is the approximate counterpart: like the
single-class Bard/Schweitzer iteration (:mod:`repro.mva.amva`) it
replaces the Arrival Theorem's ``Q_k(N - e_c)`` with an estimate built
from the full-population queues, turning the lattice recursion into a
fixed point whose cost is independent of the populations:

* **Bard**:        ``A_{c,k} ~= Q_k(N)``
* **Schweitzer**:  ``A_{c,k} ~= Q_k(N) - Q_{c,k}(N) / N_c``

(Schweitzer removes exactly the class's own average self-term.)  For a
single class both reduce to the :func:`repro.mva.amva` iterations
bit for bit -- the update arithmetic is the same IEEE elementwise
operations, which the test suite asserts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mva.network import normalize_multiclass
from repro.obs import context as _obs_context
from repro.obs import observe_scalar_solve

__all__ = [
    "MultiClassAMVAResult",
    "MultiClassMVAResult",
    "multiclass_amva",
    "multiclass_mva",
]

_AMVA_METHODS = ("bard", "schweitzer")


@dataclass(frozen=True)
class MultiClassMVAResult:
    """Solution at the full population vector.

    Attributes
    ----------
    populations:
        The class populations ``(N_1, ..., N_C)``.
    throughputs:
        Per-class throughput ``X_c``.
    response_times:
        ``R[c, k]`` per class and centre.
    queue_lengths:
        ``Q_k`` total mean customers per centre.
    class_queue_lengths:
        ``Q[c, k]`` per class and centre (``X_c * R_{c,k}``).
    cycle_times:
        Per-class total cycle ``Z_c + sum_k R_{c,k}``.
    """

    populations: tuple[int, ...]
    throughputs: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    class_queue_lengths: np.ndarray
    cycle_times: np.ndarray


@dataclass(frozen=True)
class MultiClassAMVAResult:
    """Fixed point of a multi-class approximate-MVA iteration.

    Same solution fields as :class:`MultiClassMVAResult` plus the
    fixed-point diagnostics (``method``, ``iterations``, ``converged``).
    """

    method: str
    populations: tuple[int, ...]
    throughputs: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    class_queue_lengths: np.ndarray
    cycle_times: np.ndarray
    iterations: int
    converged: bool


def multiclass_mva(
    demands: Sequence[Sequence[float]],
    populations: Sequence[int],
    think_times: Sequence[float] | None = None,
    kinds: Sequence[str] | None = None,
) -> MultiClassMVAResult:
    """Solve a closed multi-class product-form network exactly.

    Parameters
    ----------
    demands:
        ``C x K`` matrix of per-class service demands ``D_{c,k}``.
    populations:
        Class populations ``N_c >= 0``.
    think_times:
        Per-class think time ``Z_c`` (default 0).
    kinds:
        Per-centre kind (``"queueing"`` default, or ``"delay"``).

    Notes
    -----
    Runtime and memory are ``O(K * prod(N_c + 1))``; intended for the
    modest populations used in validation, not capacity planning.  A
    class with ``N_c >= 1``, zero think time and all-zero demands has no
    finite steady state and raises :class:`ValueError`, matching the
    single-class validation in :mod:`repro.mva.network`.
    """
    demand_arr, pops, think, _, is_queueing = normalize_multiclass(
        demands, populations, think_times, kinds
    )
    n_classes, n_centers = demand_arr.shape
    total_points = int(np.prod([n + 1 for n in pops]))
    if total_points > 2_000_000:
        raise ValueError(
            f"population lattice has {total_points} points; this exact "
            "solver is meant for validation-sized problems"
        )

    # Iterate the lattice in order of total population so that n - e_c is
    # always already solved.  Store Q_k(n) per lattice point.
    queue_store: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * n_classes): np.zeros(n_centers)
    }

    responses = np.zeros((n_classes, n_centers))
    throughputs = np.zeros(n_classes)

    lattice = sorted(
        itertools.product(*(range(n + 1) for n in pops)), key=sum
    )
    for point in lattice:
        if sum(point) == 0:
            continue
        responses_at = np.zeros((n_classes, n_centers))
        x_at = np.zeros(n_classes)
        for c in range(n_classes):
            if point[c] == 0:
                continue
            prev = list(point)
            prev[c] -= 1
            q_prev = queue_store[tuple(prev)]
            responses_at[c] = np.where(
                is_queueing, demand_arr[c] * (1.0 + q_prev), demand_arr[c]
            )
            # denom > 0 always: a class that can be populated here has a
            # positive demand or think time (degenerate inputs rejected).
            denom = think[c] + responses_at[c].sum()
            x_at[c] = point[c] / denom
        queue_store[point] = (x_at[:, None] * responses_at).sum(axis=0)
        if point == pops:
            responses = responses_at
            throughputs = x_at

    full = tuple(pops)
    class_queues = throughputs[:, None] * responses
    return MultiClassMVAResult(
        populations=full,
        throughputs=throughputs,
        response_times=responses,
        queue_lengths=queue_store[full],
        class_queue_lengths=class_queues,
        cycle_times=think + responses.sum(axis=1),
    )


def multiclass_amva(
    demands: Sequence[Sequence[float]],
    populations: Sequence[int],
    think_times: Sequence[float] | None = None,
    kinds: Sequence[str] | None = None,
    method: str = "bard",
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: Sequence[Sequence[float]] | np.ndarray | None = None,
) -> MultiClassAMVAResult:
    """Approximate MVA for a closed multi-class network.

    The fixed point iterates, from an even per-class split of each
    population over the queueing centres::

        A_{c,k} = Q_k                                       (Bard)
                = sum_{j != c} Q_{j,k} + Q_{c,k} (N_c-1)/N_c  (Schweitzer)
        R_{c,k} = D_{c,k} (1 + A_{c,k})    queueing centre
        X_c     = N_c / (Z_c + sum_k R_{c,k})
        Q_{c,k} = X_c R_{c,k}

    until the class-queue matrix moves less than ``tol`` (absolute
    infinity norm, the single-class :mod:`repro.mva.amva` convention).
    Classes with ``N_c = 0`` are inert: zero throughput and queues, but
    their response times still report what a class customer *would* see.

    ``x0`` optionally warm-starts the iteration from a
    ``(classes, centres)`` class-queue matrix (a neighbouring solve's
    ``class_queue_lengths``); any non-finite entry falls back to the
    even split.  The fixed point reached is the same to within ``tol``.
    """
    if method not in _AMVA_METHODS:
        raise ValueError(
            f"unknown AMVA method {method!r}; use one of {_AMVA_METHODS}"
        )
    demand_arr, pops, think, _, is_queueing = normalize_multiclass(
        demands, populations, think_times, kinds
    )
    n_classes, n_centers = demand_arr.shape
    pop_arr = np.asarray(pops, dtype=float)
    active = pop_arr > 0

    # Same start as the single-class solver, per class: an even split of
    # the class population over the queueing centres.
    n_queueing = max(int(is_queueing.sum()), 1)
    queues = np.where(is_queueing, pop_arr[:, None] / n_queueing, 0.0)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape != queues.shape:
            raise ValueError(
                f"x0 shape {seed.shape} does not match "
                f"({n_classes}, {n_centers})"
            )
        if np.all(np.isfinite(seed)):
            queues = seed.astype(float, copy=True)
    # Schweitzer's self-term factor (N_c - 1) / N_c; inert classes have
    # zero queues so the guard value never contributes.
    self_factor = np.where(active, (pop_arr - 1.0) / np.maximum(pop_arr, 1.0),
                           0.0)

    responses = demand_arr.copy()
    throughputs = np.zeros(n_classes)
    totals = think + responses.sum(axis=1)
    iterations = 0
    converged = False
    delta = float("inf")
    for iteration in range(1, max_iter + 1):
        total_q = queues.sum(axis=0)
        if method == "bard":
            arrival = np.broadcast_to(total_q, (n_classes, n_centers))
        else:
            # (total - self) + self * (N_c-1)/N_c: for a single class the
            # left term is exactly 0.0, so this reduces bit-for-bit to
            # the single-class Schweitzer arrival `factor * queues`.
            arrival = (total_q[None, :] - queues) + queues * self_factor[:, None]
        responses = np.where(
            is_queueing, demand_arr * (1.0 + arrival), demand_arr
        )
        totals = think + responses.sum(axis=1)
        # Inert classes (and only those) may have totals == 0; the
        # where= mask keeps the division warning-free.
        throughputs = np.zeros(n_classes)
        np.divide(pop_arr, totals, out=throughputs, where=active)
        new_queues = throughputs[:, None] * responses
        delta = np.max(np.abs(new_queues - queues))
        queues = new_queues
        iterations = iteration
        if delta < tol:
            converged = True
            break

    tel = _obs_context.active()
    if tel is not None:
        # Same stat family as the batch kernel, so scalar and batched
        # solves of the same networks aggregate together.
        observe_scalar_solve(
            tel, f"mva.multiclass.{method}", iterations, float(delta),
            converged,
        )
    return MultiClassAMVAResult(
        method=method,
        populations=tuple(pops),
        throughputs=throughputs,
        response_times=responses,
        queue_lengths=queues.sum(axis=0),
        class_queue_lengths=queues,
        cycle_times=totals,
        iterations=iterations,
        converged=converged,
    )
