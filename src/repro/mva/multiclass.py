"""Exact MVA for closed *multi-class* product-form networks.

The single-class recursion (:mod:`repro.mva.exact`) extends to ``C``
customer classes with population vector ``N = (N_1, ..., N_C)``,
per-class demands ``D_{c,k}`` and think times ``Z_c`` (Reiser &
Lavenberg 1980).  For every population vector ``n <= N`` (component
wise), with ``e_c`` the unit vector of class ``c``::

    R_{c,k}(n) = D_{c,k} * (1 + Q_k(n - e_c))    queueing centre
    R_{c,k}(n) = D_{c,k}                          delay centre
    X_c(n)     = n_c / (Z_c + sum_k R_{c,k}(n))
    Q_k(n)     = sum_c X_c(n) * R_{c,k}(n)

Cost is ``prod_c (N_c + 1)`` lattice points -- fine for the validation
cases this library needs (e.g. a workpile with two client classes of
different chunk sizes, which is product-form when handlers are
exponential and therefore provides *ground truth* for the heterogeneous
Appendix-A LoPC model).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["MultiClassMVAResult", "multiclass_mva"]

_CENTER_KINDS = ("queueing", "delay")


@dataclass(frozen=True)
class MultiClassMVAResult:
    """Solution at the full population vector.

    Attributes
    ----------
    populations:
        The class populations ``(N_1, ..., N_C)``.
    throughputs:
        Per-class throughput ``X_c``.
    response_times:
        ``R[c, k]`` per class and centre.
    queue_lengths:
        ``Q_k`` total mean customers per centre.
    class_queue_lengths:
        ``Q[c, k]`` per class and centre (``X_c * R_{c,k}``).
    cycle_times:
        Per-class total cycle ``Z_c + sum_k R_{c,k}``.
    """

    populations: tuple[int, ...]
    throughputs: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    class_queue_lengths: np.ndarray
    cycle_times: np.ndarray


def multiclass_mva(
    demands: Sequence[Sequence[float]],
    populations: Sequence[int],
    think_times: Sequence[float] | None = None,
    kinds: Sequence[str] | None = None,
) -> MultiClassMVAResult:
    """Solve a closed multi-class product-form network exactly.

    Parameters
    ----------
    demands:
        ``C x K`` matrix of per-class service demands ``D_{c,k}``.
    populations:
        Class populations ``N_c >= 0``.
    think_times:
        Per-class think time ``Z_c`` (default 0).
    kinds:
        Per-centre kind (``"queueing"`` default, or ``"delay"``).

    Notes
    -----
    Runtime and memory are ``O(K * prod(N_c + 1))``; intended for the
    modest populations used in validation, not capacity planning.
    """
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim != 2 or demand_arr.size == 0:
        raise ValueError("demands must be a non-empty C x K matrix")
    if np.any(demand_arr < 0):
        raise ValueError("demands must be >= 0")
    n_classes, n_centers = demand_arr.shape

    pops = tuple(int(n) for n in populations)
    if len(pops) != n_classes:
        raise ValueError(
            f"populations has {len(pops)} entries for {n_classes} classes"
        )
    if any(n < 0 for n in pops):
        raise ValueError("populations must be >= 0")
    total_points = int(np.prod([n + 1 for n in pops]))
    if total_points > 2_000_000:
        raise ValueError(
            f"population lattice has {total_points} points; this exact "
            "solver is meant for validation-sized problems"
        )

    if think_times is None:
        think = np.zeros(n_classes)
    else:
        think = np.asarray(think_times, dtype=float)
        if think.shape != (n_classes,):
            raise ValueError(
                f"think_times must have length {n_classes}, got {think.shape}"
            )
        if np.any(think < 0):
            raise ValueError("think_times must be >= 0")

    if kinds is None:
        kinds = ["queueing"] * n_centers
    kinds = list(kinds)
    if len(kinds) != n_centers:
        raise ValueError(f"kinds has {len(kinds)} entries for {n_centers} centres")
    for kind in kinds:
        if kind not in _CENTER_KINDS:
            raise ValueError(f"unknown centre kind {kind!r}; use {_CENTER_KINDS}")
    is_queueing = np.array([k == "queueing" for k in kinds])

    # Iterate the lattice in order of total population so that n - e_c is
    # always already solved.  Store Q_k(n) per lattice point.
    queue_store: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * n_classes): np.zeros(n_centers)
    }

    responses = np.zeros((n_classes, n_centers))
    throughputs = np.zeros(n_classes)

    lattice = sorted(
        itertools.product(*(range(n + 1) for n in pops)), key=sum
    )
    for point in lattice:
        if sum(point) == 0:
            continue
        responses_at = np.zeros((n_classes, n_centers))
        x_at = np.zeros(n_classes)
        for c in range(n_classes):
            if point[c] == 0:
                continue
            prev = list(point)
            prev[c] -= 1
            q_prev = queue_store[tuple(prev)]
            responses_at[c] = np.where(
                is_queueing, demand_arr[c] * (1.0 + q_prev), demand_arr[c]
            )
            denom = think[c] + responses_at[c].sum()
            x_at[c] = point[c] / denom if denom > 0 else np.inf
        queue_store[point] = (x_at[:, None] * responses_at).sum(axis=0)
        if point == pops:
            responses = responses_at
            throughputs = x_at

    full = tuple(pops)
    class_queues = throughputs[:, None] * responses
    return MultiClassMVAResult(
        populations=full,
        throughputs=throughputs,
        response_times=responses,
        queue_lengths=queue_store[full],
        class_queue_lengths=class_queues,
        cycle_times=think + responses.sum(axis=1),
    )
