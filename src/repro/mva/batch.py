"""Vectorized batch MVA: solve a whole parameter grid in one pass.

The scalar solvers (:func:`repro.mva.exact.exact_mva`,
:func:`repro.mva.amva.bard_amva`, :func:`repro.mva.amva.schweitzer_amva`)
operate on one network at a time; dense parameter sweeps therefore pay
one Python-level fixed point (or population recursion) per grid point.
This module stacks the grid into 2-D arrays -- ``demands`` is
``(points, centres)`` -- and runs *one* numpy iteration over all points
simultaneously:

* :func:`batch_exact_mva` recurses over ``n = 1 .. max(N_p)``; points
  whose population is below the current ``n`` are masked out, so mixed
  populations batch together.
* :func:`batch_bard_amva` / :func:`batch_schweitzer_amva` run the
  approximate-MVA fixed point with *per-point convergence masking*: a
  point freezes at exactly the iteration where the scalar solver would
  have stopped, so batch and scalar results agree bit-for-bit (the
  update arithmetic is the same IEEE elementwise operations).

The multi-class solvers follow the same pattern one axis higher:
``demands`` is ``(points, classes, centres)`` and

* :func:`batch_multiclass_mva` runs the exact lattice recursion over
  the union lattice of all points' population vectors, masking each
  lattice node to the points whose population dominates it;
* :func:`batch_multiclass_amva` runs the Bard/Schweitzer multi-class
  fixed point (:func:`repro.mva.multiclass.multiclass_amva`) with
  per-point convergence masking.

All points share one ``kinds`` vector (a sweep varies demands,
populations and think times, not the network topology); per-kind
heterogeneity is a separate solve.  Degenerate zero-demand /
zero-think-time points are rejected up front exactly like the scalar
solvers (:mod:`repro.mva.network`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mva.amva import AMVAResult
from repro.mva.multiclass import MultiClassAMVAResult, MultiClassMVAResult
from repro.obs import context as _obs_context
from repro.obs import observe_batch_solve
from repro.mva.network import (
    as_integer_array,
    check_degenerate_batch,
    check_degenerate_multiclass_batch,
    normalize_kinds,
)

__all__ = [
    "BatchMVAResult",
    "BatchMultiClassMVAResult",
    "batch_bard_amva",
    "batch_exact_mva",
    "batch_multiclass_amva",
    "batch_multiclass_mva",
    "batch_schweitzer_amva",
]


@dataclass(frozen=True)
class BatchMVAResult:
    """Solutions of many closed single-class networks, stacked.

    Attributes
    ----------
    method:
        ``"exact"``, ``"bard"`` or ``"schweitzer"``.
    populations:
        ``(points,)`` customer counts the networks were solved for.
    throughput:
        ``(points,)`` system throughputs ``X``.
    response_times, queue_lengths, utilizations:
        ``(points, centres)`` per-centre arrays.
    cycle_time:
        ``(points,)`` total cycle times ``Z + sum_k R_k``.
    iterations:
        ``(points,)`` -- fixed-point iterations per point for the AMVA
        kernels; for the exact recursion, the population ``N_p``.
    converged:
        ``(points,)`` bool -- always True for the exact recursion.
    """

    method: str
    populations: np.ndarray
    throughput: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_time: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    def __len__(self) -> int:
        return int(self.populations.size)

    def point(self, i: int) -> AMVAResult:
        """The ``i``-th point as a scalar-shaped :class:`AMVAResult`.

        For ``method="exact"`` the ``iterations`` field holds the
        population (the recursion depth) and ``converged`` is True.
        """
        return AMVAResult(
            population=int(self.populations[i]),
            throughput=float(self.throughput[i]),
            response_times=self.response_times[i].copy(),
            queue_lengths=self.queue_lengths[i].copy(),
            utilizations=self.utilizations[i].copy(),
            cycle_time=float(self.cycle_time[i]),
            iterations=int(self.iterations[i]),
            converged=bool(self.converged[i]),
        )


def _normalize_batch(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray,
    kinds: Sequence[str] | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str], np.ndarray]:
    """Validate and broadcast batch inputs to ``(points, centres)`` shape."""
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim == 1:
        demand_arr = demand_arr[np.newaxis, :]
    if demand_arr.ndim != 2 or demand_arr.shape[1] == 0:
        raise ValueError(
            "demands must be a (points, centres) array with >= 1 centre, "
            f"got shape {demand_arr.shape}"
        )
    if np.any(demand_arr < 0):
        raise ValueError("demands must be >= 0")

    pop_arr = np.atleast_1d(as_integer_array(populations, "populations"))
    if pop_arr.ndim != 1:
        raise ValueError("populations must be scalar or 1-D")
    if np.any(pop_arr < 0):
        raise ValueError("populations must be >= 0")

    think_arr = np.atleast_1d(np.asarray(think_times, dtype=float))
    if think_arr.ndim != 1:
        raise ValueError("think_times must be scalar or 1-D")
    if np.any(think_arr < 0):
        raise ValueError("think_times must be >= 0")

    input_counts = (demand_arr.shape[0], pop_arr.size, think_arr.size)
    n_points = max(input_counts)
    try:
        demand_arr = np.ascontiguousarray(
            np.broadcast_to(demand_arr, (n_points, demand_arr.shape[1]))
        )
        pop_arr = np.broadcast_to(pop_arr, (n_points,)).copy()
        think_arr = np.broadcast_to(think_arr, (n_points,)).copy()
    except ValueError:
        raise ValueError(
            f"batch inputs do not broadcast: demands has "
            f"{input_counts[0]} points, populations {input_counts[1]}, "
            f"think_times {input_counts[2]}"
        ) from None

    kinds_list, is_queueing = normalize_kinds(kinds, demand_arr.shape[1])
    check_degenerate_batch(demand_arr, pop_arr, think_arr)
    return demand_arr, pop_arr, think_arr, kinds_list, is_queueing


# ---------------------------------------------------------------------------
# Exact MVA
# ---------------------------------------------------------------------------
def batch_exact_mva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
) -> BatchMVAResult:
    """Exact MVA over a batch of networks (one recursion, all points).

    Parameters broadcast against each other on the points axis:
    ``demands`` is ``(points, centres)`` (or ``(centres,)`` shared by all
    points), ``populations`` and ``think_times`` are scalars or
    ``(points,)``.  ``kinds`` is one per-centre vector shared by the
    whole batch.

    The recursion runs to ``max(populations)``; each point stops
    updating once ``n`` exceeds its own population, so the cost is
    ``O(max(N) * points * centres)`` numpy work with no Python loop over
    points.
    """
    demand_arr, pops, thinks, _, is_queueing = _normalize_batch(
        demands, populations, think_times, kinds
    )
    n_points, _ = demand_arr.shape

    queues = np.zeros_like(demand_arr)
    responses = demand_arr.copy()
    throughput = np.zeros(n_points)
    cycle_time = thinks.copy()

    max_pop = int(pops.max()) if n_points else 0
    for n in range(1, max_pop + 1):
        idx = pops >= n
        resp = np.where(
            is_queueing, demand_arr[idx] * (1.0 + queues[idx]), demand_arr[idx]
        )
        total = thinks[idx] + resp.sum(axis=1)
        x = n / total
        queues[idx] = x[:, np.newaxis] * resp
        responses[idx] = resp
        throughput[idx] = x
        cycle_time[idx] = total

    result = BatchMVAResult(
        method="exact",
        populations=pops,
        throughput=throughput,
        response_times=responses,
        queue_lengths=queues,
        utilizations=throughput[:, np.newaxis] * demand_arr,
        cycle_time=cycle_time,
        iterations=pops.copy(),
        converged=np.ones(n_points, dtype=bool),
    )
    tel = _obs_context.active()
    if tel is not None:
        # For the exact recursion "iterations" is the recursion depth N_p.
        observe_batch_solve(
            tel, "mva.batch.exact", result.iterations, result.converged
        )
    return result


# ---------------------------------------------------------------------------
# Approximate MVA (Bard / Schweitzer)
# ---------------------------------------------------------------------------
def _overlay_seeds(
    queues: np.ndarray,
    x0: np.ndarray | None,
    eligible: np.ndarray | None = None,
) -> np.ndarray | None:
    """Overlay finite warm-start rows of ``x0`` onto ``queues`` in place.

    Returns the per-point seeded mask (None when ``x0`` is None).  A row
    of ``x0`` with any non-finite entry keeps the kernel's cold start,
    as does any row outside ``eligible`` (points solved in closed form
    never consume a seed).
    """
    if x0 is None:
        return None
    seeds = np.asarray(x0, dtype=float)
    if seeds.shape != queues.shape:
        raise ValueError(
            f"x0 shape {seeds.shape} does not match {queues.shape}"
        )
    point_axes = tuple(range(1, queues.ndim))
    seeded = np.all(np.isfinite(seeds), axis=point_axes)
    if eligible is not None:
        seeded &= eligible
    if seeded.any():
        queues[seeded] = seeds[seeded]
    return seeded


def _batch_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray,
    kinds: Sequence[str] | None,
    method: str,
    tol: float,
    max_iter: int,
    x0: np.ndarray | None = None,
) -> BatchMVAResult:
    demand_arr, pops, thinks, _, is_queueing = _normalize_batch(
        demands, populations, think_times, kinds
    )
    n_points, _ = demand_arr.shape

    if method == "bard":
        factors = np.ones(n_points)
    elif method == "schweitzer":
        factors = np.where(pops > 0, (pops - 1) / np.maximum(pops, 1), 0.0)
    else:  # pragma: no cover - internal dispatch
        raise ValueError(f"unknown AMVA method {method!r}")

    # Same start as the scalar solver: even split over queueing centres,
    # unless a warm-start row was supplied (population-0 points keep the
    # closed-form zero solution regardless).
    n_queueing = max(int(is_queueing.sum()), 1)
    queues = np.where(
        is_queueing, pops[:, np.newaxis] / n_queueing, 0.0
    )
    seeded = _overlay_seeds(queues, x0, eligible=pops > 0)
    responses = demand_arr.copy()
    throughput = np.zeros(n_points)
    cycle_time = thinks.copy()
    iterations = np.zeros(n_points, dtype=np.int64)
    converged = np.zeros(n_points, dtype=bool)

    # Population-0 points are solved in closed form, like the scalar path.
    converged[pops == 0] = True
    active = pops > 0

    for iteration in range(1, max_iter + 1):
        if not active.any():
            break
        idx = active
        arrival = factors[idx, np.newaxis] * queues[idx]
        resp = np.where(
            is_queueing, demand_arr[idx] * (1.0 + arrival), demand_arr[idx]
        )
        total = thinks[idx] + resp.sum(axis=1)
        x = pops[idx] / total
        new_queues = x[:, np.newaxis] * resp
        delta = np.max(np.abs(new_queues - queues[idx]), axis=1)

        queues[idx] = new_queues
        responses[idx] = resp
        throughput[idx] = x
        cycle_time[idx] = total
        iterations[idx] = iteration

        done = np.flatnonzero(idx)[delta < tol]
        converged[done] = True
        active[done] = False

    result = BatchMVAResult(
        method=method,
        populations=pops,
        throughput=throughput,
        response_times=responses,
        queue_lengths=queues,
        utilizations=throughput[:, np.newaxis] * demand_arr,
        cycle_time=cycle_time,
        iterations=iterations,
        converged=converged,
    )
    tel = _obs_context.active()
    if tel is not None:
        observe_batch_solve(
            tel, f"mva.batch.{method}", iterations, converged, seeded=seeded
        )
    return result


def batch_bard_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: np.ndarray | None = None,
) -> BatchMVAResult:
    """Bard AMVA over a batch of networks: one masked fixed point.

    Each point freezes at the iteration where its scalar
    :func:`repro.mva.amva.bard_amva` solve would stop, so the batch
    result matches the scalar result exactly (same elementwise updates,
    same stopping rule, defaults included).

    ``x0`` optionally warm-starts points from a ``(points, centres)``
    queue-length array; a row with any non-finite entry (conventionally
    ``nan``) keeps the cold even-split start, so seeded and cold points
    mix freely in one call.  Seeding changes iteration counts, not the
    fixed point (within ``tol``).
    """
    return _batch_amva(
        demands, populations, think_times, kinds, "bard", tol, max_iter,
        x0=x0,
    )


def batch_schweitzer_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: np.ndarray | None = None,
) -> BatchMVAResult:
    """Schweitzer AMVA over a batch: arrival factor ``(N_p - 1)/N_p``.

    ``x0`` warm-starts per point exactly as in :func:`batch_bard_amva`.
    """
    return _batch_amva(
        demands, populations, think_times, kinds, "schweitzer", tol, max_iter,
        x0=x0,
    )


# ---------------------------------------------------------------------------
# Multi-class solvers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchMultiClassMVAResult:
    """Solutions of many closed multi-class networks, stacked.

    Attributes
    ----------
    method:
        ``"exact"``, ``"bard"`` or ``"schweitzer"``.
    populations:
        ``(points, classes)`` population vectors.
    throughputs:
        ``(points, classes)`` per-class throughputs ``X_c``.
    response_times, class_queue_lengths:
        ``(points, classes, centres)`` arrays.
    queue_lengths:
        ``(points, centres)`` total mean customers per centre.
    cycle_times:
        ``(points, classes)`` per-class cycles ``Z_c + sum_k R_{c,k}``.
    iterations:
        ``(points,)`` -- fixed-point iterations for the AMVA variants;
        for the exact recursion, the total population ``sum_c N_c``.
    converged:
        ``(points,)`` bool -- always True for the exact recursion.
    """

    method: str
    populations: np.ndarray
    throughputs: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    class_queue_lengths: np.ndarray
    cycle_times: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    def __len__(self) -> int:
        return int(self.populations.shape[0])

    def point(self, i: int) -> MultiClassMVAResult | MultiClassAMVAResult:
        """The ``i``-th point as a scalar-shaped result.

        Returns a :class:`~repro.mva.multiclass.MultiClassMVAResult` for
        ``method="exact"`` and a
        :class:`~repro.mva.multiclass.MultiClassAMVAResult` otherwise.
        """
        fields = dict(
            populations=tuple(int(n) for n in self.populations[i]),
            throughputs=self.throughputs[i].copy(),
            response_times=self.response_times[i].copy(),
            queue_lengths=self.queue_lengths[i].copy(),
            class_queue_lengths=self.class_queue_lengths[i].copy(),
            cycle_times=self.cycle_times[i].copy(),
        )
        if self.method == "exact":
            return MultiClassMVAResult(**fields)
        return MultiClassAMVAResult(
            method=self.method,
            iterations=int(self.iterations[i]),
            converged=bool(self.converged[i]),
            **fields,
        )


def _normalize_multiclass_batch(
    demands,
    populations,
    think_times,
    kinds: Sequence[str] | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str], np.ndarray]:
    """Validate and broadcast to ``(points, classes, centres)`` shape."""
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim == 2:
        demand_arr = demand_arr[np.newaxis, :, :]
    if (
        demand_arr.ndim != 3
        or demand_arr.shape[1] == 0
        or demand_arr.shape[2] == 0
    ):
        raise ValueError(
            "demands must be a (points, classes, centres) array with >= 1 "
            f"class and centre, got shape {demand_arr.shape}"
        )
    if np.any(demand_arr < 0):
        raise ValueError("demands must be >= 0")
    n_classes = demand_arr.shape[1]

    pop_arr = as_integer_array(populations, "populations")
    if pop_arr.ndim == 1:
        pop_arr = pop_arr[np.newaxis, :]
    if pop_arr.ndim != 2 or pop_arr.shape[1] != n_classes:
        raise ValueError(
            f"populations must be (points, {n_classes}) for "
            f"{n_classes} classes, got shape {pop_arr.shape}"
        )
    if np.any(pop_arr < 0):
        raise ValueError("populations must be >= 0")

    if think_times is None:
        think_arr = np.zeros((1, n_classes))
    else:
        think_arr = np.asarray(think_times, dtype=float)
        if think_arr.ndim == 1:
            think_arr = think_arr[np.newaxis, :]
        if think_arr.ndim != 2 or think_arr.shape[1] != n_classes:
            raise ValueError(
                f"think_times must be (points, {n_classes}) for "
                f"{n_classes} classes, got shape {think_arr.shape}"
            )
        if np.any(think_arr < 0):
            raise ValueError("think_times must be >= 0")

    input_counts = (demand_arr.shape[0], pop_arr.shape[0], think_arr.shape[0])
    n_points = max(input_counts)
    try:
        demand_arr = np.ascontiguousarray(
            np.broadcast_to(
                demand_arr, (n_points,) + demand_arr.shape[1:]
            )
        )
        pop_arr = np.broadcast_to(pop_arr, (n_points, n_classes)).copy()
        think_arr = np.broadcast_to(think_arr, (n_points, n_classes)).copy()
    except ValueError:
        raise ValueError(
            f"batch inputs do not broadcast: demands has "
            f"{input_counts[0]} points, populations {input_counts[1]}, "
            f"think_times {input_counts[2]}"
        ) from None

    kinds_list, is_queueing = normalize_kinds(kinds, demand_arr.shape[2])
    check_degenerate_multiclass_batch(demand_arr, pop_arr, think_arr)
    return demand_arr, pop_arr, think_arr, kinds_list, is_queueing


def batch_multiclass_mva(
    demands,
    populations,
    think_times=None,
    kinds: Sequence[str] | None = None,
) -> BatchMultiClassMVAResult:
    """Exact multi-class MVA over a batch of networks.

    Parameters broadcast on the points axis: ``demands`` is
    ``(points, classes, centres)`` (or ``(classes, centres)`` shared by
    all points), ``populations`` and ``think_times`` are
    ``(points, classes)`` or ``(classes,)``.  ``kinds`` is one
    per-centre vector shared by the whole batch.

    The recursion walks the *union* lattice ``prod_c (max_p N_{p,c} + 1)``
    in order of total population; at each lattice node only the points
    whose population vector dominates the node update, so every point
    reproduces exactly the lattice walk its scalar
    :func:`repro.mva.multiclass.multiclass_mva` solve performs --
    bit-identical results, one numpy pass per lattice node instead of a
    Python recursion per point.
    """
    demand_arr, pops, thinks, _, is_queueing = _normalize_multiclass_batch(
        demands, populations, think_times, kinds
    )
    n_points, n_classes, n_centers = demand_arr.shape

    max_pop = pops.max(axis=0) if n_points else np.zeros(n_classes, dtype=int)
    total_lattice = int(np.prod(max_pop + 1))
    if total_lattice > 2_000_000:
        raise ValueError(
            f"union population lattice has {total_lattice} points; this "
            "exact solver is meant for validation-sized problems"
        )
    if total_lattice * n_points * n_centers > 200_000_000:
        raise ValueError(
            f"batch lattice is too large ({total_lattice} lattice points x "
            f"{n_points} batch points x {n_centers} centres); split the "
            "batch into chunks"
        )

    responses = np.zeros((n_points, n_classes, n_centers))
    throughputs = np.zeros((n_points, n_classes))
    queue_lengths = np.zeros((n_points, n_centers))

    # Queue store per lattice node, kept two total-population levels deep
    # (node n only ever reads n - e_c, one level down).
    queue_store: dict[tuple[int, ...], np.ndarray] = {
        tuple([0] * n_classes): np.zeros((n_points, n_centers))
    }

    lattice = sorted(
        itertools.product(*(range(int(n) + 1) for n in max_pop)), key=sum
    )
    level = 0
    current_level: dict[tuple[int, ...], np.ndarray] = dict(queue_store)
    for node in lattice:
        s = sum(node)
        if s == 0:
            continue
        if s != level:
            # Entering a new total-population level: everything below the
            # previous level can no longer be read.
            queue_store = current_level
            current_level = {}
            level = s
        node_arr = np.asarray(node)
        idx = np.flatnonzero(np.all(pops >= node_arr, axis=1))
        if idx.size == 0:
            continue
        resp = np.zeros((idx.size, n_classes, n_centers))
        x = np.zeros((idx.size, n_classes))
        for c in range(n_classes):
            if node[c] == 0:
                continue
            prev = list(node)
            prev[c] -= 1
            q_prev = queue_store[tuple(prev)][idx]
            resp[:, c, :] = np.where(
                is_queueing,
                demand_arr[idx, c, :] * (1.0 + q_prev),
                demand_arr[idx, c, :],
            )
            # denom > 0 always: degenerate classes were rejected up front.
            denom = thinks[idx, c] + resp[:, c, :].sum(axis=1)
            x[:, c] = node[c] / denom
        q_node = (x[:, :, None] * resp).sum(axis=1)
        stored = np.zeros((n_points, n_centers))
        stored[idx] = q_node
        current_level[node] = stored

        at_full = np.all(pops[idx] == node_arr, axis=1)
        if np.any(at_full):
            hit = idx[at_full]
            responses[hit] = resp[at_full]
            throughputs[hit] = x[at_full]
            queue_lengths[hit] = q_node[at_full]

    result = BatchMultiClassMVAResult(
        method="exact",
        populations=pops,
        throughputs=throughputs,
        response_times=responses,
        queue_lengths=queue_lengths,
        class_queue_lengths=throughputs[:, :, None] * responses,
        cycle_times=thinks + responses.sum(axis=2),
        iterations=pops.sum(axis=1),
        converged=np.ones(n_points, dtype=bool),
    )
    tel = _obs_context.active()
    if tel is not None:
        observe_batch_solve(
            tel, "mva.multiclass.exact", result.iterations, result.converged,
            lattice=total_lattice,
        )
    return result


def batch_multiclass_amva(
    demands,
    populations,
    think_times=None,
    kinds: Sequence[str] | None = None,
    method: str = "bard",
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: np.ndarray | None = None,
) -> BatchMultiClassMVAResult:
    """Multi-class AMVA over a batch: one masked fixed point.

    Each point freezes at the iteration where its scalar
    :func:`repro.mva.multiclass.multiclass_amva` solve would stop, so
    the batch result matches the scalar result exactly (same elementwise
    updates, same stopping rule, defaults included).

    ``x0`` optionally warm-starts points from a
    ``(points, classes, centres)`` class-queue array (a neighbouring
    solve's ``class_queue_lengths``); rows with any non-finite entry
    keep the cold even-split start.
    """
    if method not in ("bard", "schweitzer"):
        raise ValueError(
            f"unknown AMVA method {method!r}; use one of ('bard', 'schweitzer')"
        )
    demand_arr, pops, thinks, _, is_queueing = _normalize_multiclass_batch(
        demands, populations, think_times, kinds
    )
    n_points, n_classes, n_centers = demand_arr.shape
    pop_f = pops.astype(float)
    active_classes = pop_f > 0.0

    n_queueing = max(int(is_queueing.sum()), 1)
    queues = np.where(is_queueing, pop_f[:, :, None] / n_queueing, 0.0)
    seeded = _overlay_seeds(queues, x0)
    self_factor = np.where(
        active_classes, (pop_f - 1.0) / np.maximum(pop_f, 1.0), 0.0
    )

    responses = np.ascontiguousarray(
        np.broadcast_to(demand_arr, queues.shape)
    ).copy()
    throughputs = np.zeros((n_points, n_classes))
    cycle_times = thinks + responses.sum(axis=2)
    iterations = np.zeros(n_points, dtype=np.int64)
    converged = np.zeros(n_points, dtype=bool)
    active = np.ones(n_points, dtype=bool)

    for iteration in range(1, max_iter + 1):
        if not active.any():
            break
        idx = active
        q = queues[idx]
        total_q = q.sum(axis=1)
        if method == "bard":
            arrival = np.broadcast_to(
                total_q[:, None, :], q.shape
            )
        else:
            arrival = (total_q[:, None, :] - q) + q * self_factor[idx][:, :, None]
        resp = np.where(
            is_queueing, demand_arr[idx] * (1.0 + arrival), demand_arr[idx]
        )
        totals = thinks[idx] + resp.sum(axis=2)
        x = np.zeros(totals.shape)
        np.divide(pop_f[idx], totals, out=x, where=active_classes[idx])
        new_q = x[:, :, None] * resp
        delta = np.max(np.abs(new_q - q), axis=(1, 2))

        queues[idx] = new_q
        responses[idx] = resp
        throughputs[idx] = x
        cycle_times[idx] = totals
        iterations[idx] = iteration

        done = np.flatnonzero(idx)[delta < tol]
        converged[done] = True
        active[done] = False

    result = BatchMultiClassMVAResult(
        method=method,
        populations=pops,
        throughputs=throughputs,
        response_times=responses,
        queue_lengths=queues.sum(axis=1),
        class_queue_lengths=queues,
        cycle_times=cycle_times,
        iterations=iterations,
        converged=converged,
    )
    tel = _obs_context.active()
    if tel is not None:
        observe_batch_solve(
            tel, f"mva.multiclass.{method}", iterations, converged,
            seeded=seeded,
        )
    return result
