"""Vectorized batch MVA: solve a whole parameter grid in one pass.

The scalar solvers (:func:`repro.mva.exact.exact_mva`,
:func:`repro.mva.amva.bard_amva`, :func:`repro.mva.amva.schweitzer_amva`)
operate on one network at a time; dense parameter sweeps therefore pay
one Python-level fixed point (or population recursion) per grid point.
This module stacks the grid into 2-D arrays -- ``demands`` is
``(points, centres)`` -- and runs *one* numpy iteration over all points
simultaneously:

* :func:`batch_exact_mva` recurses over ``n = 1 .. max(N_p)``; points
  whose population is below the current ``n`` are masked out, so mixed
  populations batch together.
* :func:`batch_bard_amva` / :func:`batch_schweitzer_amva` run the
  approximate-MVA fixed point with *per-point convergence masking*: a
  point freezes at exactly the iteration where the scalar solver would
  have stopped, so batch and scalar results agree bit-for-bit (the
  update arithmetic is the same IEEE elementwise operations).

All points share one ``kinds`` vector (a sweep varies demands,
populations and think times, not the network topology); per-kind
heterogeneity is a separate solve.  Degenerate zero-demand /
zero-think-time points are rejected up front exactly like the scalar
solvers (:mod:`repro.mva.network`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mva.amva import AMVAResult
from repro.mva.network import (
    as_integer_array,
    check_degenerate_batch,
    normalize_kinds,
)

__all__ = [
    "BatchMVAResult",
    "batch_bard_amva",
    "batch_exact_mva",
    "batch_schweitzer_amva",
]


@dataclass(frozen=True)
class BatchMVAResult:
    """Solutions of many closed single-class networks, stacked.

    Attributes
    ----------
    method:
        ``"exact"``, ``"bard"`` or ``"schweitzer"``.
    populations:
        ``(points,)`` customer counts the networks were solved for.
    throughput:
        ``(points,)`` system throughputs ``X``.
    response_times, queue_lengths, utilizations:
        ``(points, centres)`` per-centre arrays.
    cycle_time:
        ``(points,)`` total cycle times ``Z + sum_k R_k``.
    iterations:
        ``(points,)`` -- fixed-point iterations per point for the AMVA
        kernels; for the exact recursion, the population ``N_p``.
    converged:
        ``(points,)`` bool -- always True for the exact recursion.
    """

    method: str
    populations: np.ndarray
    throughput: np.ndarray
    response_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_time: np.ndarray
    iterations: np.ndarray
    converged: np.ndarray

    def __len__(self) -> int:
        return int(self.populations.size)

    def point(self, i: int) -> AMVAResult:
        """The ``i``-th point as a scalar-shaped :class:`AMVAResult`.

        For ``method="exact"`` the ``iterations`` field holds the
        population (the recursion depth) and ``converged`` is True.
        """
        return AMVAResult(
            population=int(self.populations[i]),
            throughput=float(self.throughput[i]),
            response_times=self.response_times[i].copy(),
            queue_lengths=self.queue_lengths[i].copy(),
            utilizations=self.utilizations[i].copy(),
            cycle_time=float(self.cycle_time[i]),
            iterations=int(self.iterations[i]),
            converged=bool(self.converged[i]),
        )


def _normalize_batch(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray,
    kinds: Sequence[str] | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[str], np.ndarray]:
    """Validate and broadcast batch inputs to ``(points, centres)`` shape."""
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim == 1:
        demand_arr = demand_arr[np.newaxis, :]
    if demand_arr.ndim != 2 or demand_arr.shape[1] == 0:
        raise ValueError(
            "demands must be a (points, centres) array with >= 1 centre, "
            f"got shape {demand_arr.shape}"
        )
    if np.any(demand_arr < 0):
        raise ValueError("demands must be >= 0")

    pop_arr = np.atleast_1d(as_integer_array(populations, "populations"))
    if pop_arr.ndim != 1:
        raise ValueError("populations must be scalar or 1-D")
    if np.any(pop_arr < 0):
        raise ValueError("populations must be >= 0")

    think_arr = np.atleast_1d(np.asarray(think_times, dtype=float))
    if think_arr.ndim != 1:
        raise ValueError("think_times must be scalar or 1-D")
    if np.any(think_arr < 0):
        raise ValueError("think_times must be >= 0")

    input_counts = (demand_arr.shape[0], pop_arr.size, think_arr.size)
    n_points = max(input_counts)
    try:
        demand_arr = np.ascontiguousarray(
            np.broadcast_to(demand_arr, (n_points, demand_arr.shape[1]))
        )
        pop_arr = np.broadcast_to(pop_arr, (n_points,)).copy()
        think_arr = np.broadcast_to(think_arr, (n_points,)).copy()
    except ValueError:
        raise ValueError(
            f"batch inputs do not broadcast: demands has "
            f"{input_counts[0]} points, populations {input_counts[1]}, "
            f"think_times {input_counts[2]}"
        ) from None

    kinds_list, is_queueing = normalize_kinds(kinds, demand_arr.shape[1])
    check_degenerate_batch(demand_arr, pop_arr, think_arr)
    return demand_arr, pop_arr, think_arr, kinds_list, is_queueing


# ---------------------------------------------------------------------------
# Exact MVA
# ---------------------------------------------------------------------------
def batch_exact_mva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
) -> BatchMVAResult:
    """Exact MVA over a batch of networks (one recursion, all points).

    Parameters broadcast against each other on the points axis:
    ``demands`` is ``(points, centres)`` (or ``(centres,)`` shared by all
    points), ``populations`` and ``think_times`` are scalars or
    ``(points,)``.  ``kinds`` is one per-centre vector shared by the
    whole batch.

    The recursion runs to ``max(populations)``; each point stops
    updating once ``n`` exceeds its own population, so the cost is
    ``O(max(N) * points * centres)`` numpy work with no Python loop over
    points.
    """
    demand_arr, pops, thinks, _, is_queueing = _normalize_batch(
        demands, populations, think_times, kinds
    )
    n_points, _ = demand_arr.shape

    queues = np.zeros_like(demand_arr)
    responses = demand_arr.copy()
    throughput = np.zeros(n_points)
    cycle_time = thinks.copy()

    max_pop = int(pops.max()) if n_points else 0
    for n in range(1, max_pop + 1):
        idx = pops >= n
        resp = np.where(
            is_queueing, demand_arr[idx] * (1.0 + queues[idx]), demand_arr[idx]
        )
        total = thinks[idx] + resp.sum(axis=1)
        x = n / total
        queues[idx] = x[:, np.newaxis] * resp
        responses[idx] = resp
        throughput[idx] = x
        cycle_time[idx] = total

    return BatchMVAResult(
        method="exact",
        populations=pops,
        throughput=throughput,
        response_times=responses,
        queue_lengths=queues,
        utilizations=throughput[:, np.newaxis] * demand_arr,
        cycle_time=cycle_time,
        iterations=pops.copy(),
        converged=np.ones(n_points, dtype=bool),
    )


# ---------------------------------------------------------------------------
# Approximate MVA (Bard / Schweitzer)
# ---------------------------------------------------------------------------
def _batch_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray,
    kinds: Sequence[str] | None,
    method: str,
    tol: float,
    max_iter: int,
) -> BatchMVAResult:
    demand_arr, pops, thinks, _, is_queueing = _normalize_batch(
        demands, populations, think_times, kinds
    )
    n_points, _ = demand_arr.shape

    if method == "bard":
        factors = np.ones(n_points)
    elif method == "schweitzer":
        factors = np.where(pops > 0, (pops - 1) / np.maximum(pops, 1), 0.0)
    else:  # pragma: no cover - internal dispatch
        raise ValueError(f"unknown AMVA method {method!r}")

    # Same start as the scalar solver: even split over queueing centres.
    n_queueing = max(int(is_queueing.sum()), 1)
    queues = np.where(
        is_queueing, pops[:, np.newaxis] / n_queueing, 0.0
    )
    responses = demand_arr.copy()
    throughput = np.zeros(n_points)
    cycle_time = thinks.copy()
    iterations = np.zeros(n_points, dtype=np.int64)
    converged = np.zeros(n_points, dtype=bool)

    # Population-0 points are solved in closed form, like the scalar path.
    converged[pops == 0] = True
    active = pops > 0

    for iteration in range(1, max_iter + 1):
        if not active.any():
            break
        idx = active
        arrival = factors[idx, np.newaxis] * queues[idx]
        resp = np.where(
            is_queueing, demand_arr[idx] * (1.0 + arrival), demand_arr[idx]
        )
        total = thinks[idx] + resp.sum(axis=1)
        x = pops[idx] / total
        new_queues = x[:, np.newaxis] * resp
        delta = np.max(np.abs(new_queues - queues[idx]), axis=1)

        queues[idx] = new_queues
        responses[idx] = resp
        throughput[idx] = x
        cycle_time[idx] = total
        iterations[idx] = iteration

        done = np.flatnonzero(idx)[delta < tol]
        converged[done] = True
        active[done] = False

    return BatchMVAResult(
        method=method,
        populations=pops,
        throughput=throughput,
        response_times=responses,
        queue_lengths=queues,
        utilizations=throughput[:, np.newaxis] * demand_arr,
        cycle_time=cycle_time,
        iterations=iterations,
        converged=converged,
    )


def batch_bard_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
) -> BatchMVAResult:
    """Bard AMVA over a batch of networks: one masked fixed point.

    Each point freezes at the iteration where its scalar
    :func:`repro.mva.amva.bard_amva` solve would stop, so the batch
    result matches the scalar result exactly (same elementwise updates,
    same stopping rule, defaults included).
    """
    return _batch_amva(
        demands, populations, think_times, kinds, "bard", tol, max_iter
    )


def batch_schweitzer_amva(
    demands: Sequence[Sequence[float]] | np.ndarray,
    populations: int | Sequence[int] | np.ndarray,
    think_times: float | Sequence[float] | np.ndarray = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
) -> BatchMVAResult:
    """Schweitzer AMVA over a batch: arrival factor ``(N_p - 1)/N_p``."""
    return _batch_amva(
        demands, populations, think_times, kinds, "schweitzer", tol, max_iter
    )
