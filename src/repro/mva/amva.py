"""Approximate MVA (Bard / Schweitzer) for closed single-class networks.

Exact MVA recurses over the population ``N`` (see :mod:`repro.mva.exact`).
Approximate MVA replaces the Arrival Theorem's ``Q_k(N-1)`` with an
estimate built from the *same* population, turning the recursion into a
fixed point:

* **Bard (1979)**:        ``A_k(N) ~= Q_k(N)``
* **Schweitzer (1979)**:  ``A_k(N) ~= (N-1)/N * Q_k(N)``

Bard's variant is what the LoPC paper adopts (it yields the closed-form
rules of thumb); Schweitzer's is the common refinement.  Both iterate::

    R_k = D_k * (1 + A_k)        queueing centre
    R_k = D_k                    delay centre
    X   = N / (Z + sum R_k)
    Q_k = X * R_k

until the queue vector stabilises.  Bard over-estimates queue lengths (a
customer "sees itself"); Schweitzer removes exactly the self-term on
average.  The unit tests compare both against exact MVA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.mva.network import (
    check_degenerate,
    check_network_scalars,
    normalize_demands,
    normalize_kinds,
)

__all__ = ["AMVAResult", "bard_amva", "schweitzer_amva"]


@dataclass(frozen=True)
class AMVAResult:
    """Fixed point of an approximate-MVA iteration."""

    population: int
    throughput: float
    response_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_time: float
    iterations: int
    converged: bool


def _amva(
    demands: Sequence[float],
    population: int,
    think_time: float,
    kinds: Sequence[str] | None,
    arrival_factor: float,
    tol: float,
    max_iter: int,
    x0: Sequence[float] | np.ndarray | None = None,
) -> AMVAResult:
    demand_arr = normalize_demands(demands)
    check_network_scalars(population, think_time)
    n_centers = demand_arr.size
    # normalize_kinds materialises `kinds` exactly once; a generator
    # argument used to be exhausted by the length check, leaving an empty
    # queueing mask that broadcast-crashed the iteration below.
    kinds, is_queueing = normalize_kinds(kinds, n_centers)
    check_degenerate(demand_arr, population, think_time)

    if population == 0:
        zeros = np.zeros(n_centers)
        return AMVAResult(0, 0.0, demand_arr.copy(), zeros, zeros,
                          think_time, 0, True)

    # Start from an even split of the population over the queueing centres,
    # unless the caller supplied a warm-start queue vector (typically a
    # neighbouring point's converged queues).
    queues = np.where(is_queueing, population / max(is_queueing.sum(), 1), 0.0)
    if x0 is not None:
        seed = np.asarray(x0, dtype=float)
        if seed.shape != queues.shape:
            raise ValueError(
                f"x0 shape {seed.shape} does not match ({n_centers},)"
            )
        if np.all(np.isfinite(seed)):
            queues = seed.astype(float, copy=True)
    throughput = 0.0
    responses = demand_arr.copy()
    for iteration in range(1, max_iter + 1):
        arrival = arrival_factor * queues
        responses = np.where(is_queueing, demand_arr * (1.0 + arrival), demand_arr)
        # total > 0 always: the degenerate zero-demand/zero-think network
        # was rejected up front.
        total = think_time + float(responses.sum())
        throughput = population / total
        new_queues = throughput * responses
        if np.max(np.abs(new_queues - queues)) < tol:
            queues = new_queues
            return AMVAResult(
                population=population,
                throughput=throughput,
                response_times=responses,
                queue_lengths=queues,
                utilizations=throughput * demand_arr,
                cycle_time=total,
                iterations=iteration,
                converged=True,
            )
        queues = new_queues
    return AMVAResult(
        population=population,
        throughput=throughput,
        response_times=responses,
        queue_lengths=queues,
        utilizations=throughput * demand_arr,
        cycle_time=think_time + float(responses.sum()),
        iterations=max_iter,
        converged=False,
    )


def bard_amva(
    demands: Sequence[float],
    population: int,
    think_time: float = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: Sequence[float] | np.ndarray | None = None,
) -> AMVAResult:
    """Bard approximate MVA: arrival queue = full steady-state queue.

    ``x0`` optionally warm-starts the iteration from a ``(centres,)``
    queue-length vector (a non-finite entry falls back to the even
    split); the fixed point reached is the same to within ``tol``.
    """
    return _amva(demands, population, think_time, kinds, 1.0, tol, max_iter,
                 x0=x0)


def schweitzer_amva(
    demands: Sequence[float],
    population: int,
    think_time: float = 0.0,
    kinds: Sequence[str] | None = None,
    tol: float = 1e-12,
    max_iter: int = 100_000,
    x0: Sequence[float] | np.ndarray | None = None,
) -> AMVAResult:
    """Schweitzer approximate MVA: arrival queue = ``(N-1)/N`` of steady state.

    ``x0`` warm-starts the queue vector exactly as in :func:`bard_amva`.
    """
    factor = (population - 1) / population if population > 0 else 0.0
    return _amva(demands, population, think_time, kinds, factor, tol, max_iter,
                 x0=x0)
