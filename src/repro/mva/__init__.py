"""Mean Value Analysis (MVA) substrate for the LoPC model.

The LoPC model (Frank, PPoPP 1997) is built on approximate mean value
analysis of a closed queueing network.  This subpackage provides the
queueing-theoretic primitives the model composes:

* :mod:`repro.mva.littles_law` -- Little's result ``N = X * R`` in all three
  rearrangements, with validation.
* :mod:`repro.mva.residual` -- residual-life arithmetic for service-time
  distributions of arbitrary squared coefficient of variation (paper
  Eq. 5.8).
* :mod:`repro.mva.bard` -- Bard's approximation to the Arrival Theorem
  (queue length seen at arrival ~= steady-state queue length).
* :mod:`repro.mva.bkt` -- the BKT preempt-resume priority approximation
  (paper Eq. 5.7) and the simpler shadow-server alternative.
* :mod:`repro.mva.exact` -- exact MVA for closed single-class product-form
  networks (validation reference for the approximate machinery).
* :mod:`repro.mva.amva` -- generic approximate MVA (Bard / Schweitzer)
  iteration for closed networks.
* :mod:`repro.mva.multiclass` -- exact and approximate MVA for closed
  *multi-class* networks (ground truth for the heterogeneous
  Appendix-A studies).
* :mod:`repro.mva.batch` -- vectorized batch solvers: exact and
  approximate MVA, single- and multi-class, over whole
  ``(points, [classes,] centres)`` parameter grids in one numpy
  iteration with per-point convergence masking.
"""

from repro.mva.bard import arrival_queue_bard, arrival_queue_exact_mva
from repro.mva.bkt import (
    bkt_residence_time,
    shadow_server_residence_time,
)
from repro.mva.chandy_lakshmi import (
    chandy_lakshmi_residence,
    solve_alltoall_cl,
)
from repro.mva.batch import (
    BatchMVAResult,
    BatchMultiClassMVAResult,
    batch_bard_amva,
    batch_exact_mva,
    batch_multiclass_amva,
    batch_multiclass_mva,
    batch_schweitzer_amva,
)
from repro.mva.exact import ExactMVAResult, exact_mva
from repro.mva.multiclass import (
    MultiClassAMVAResult,
    MultiClassMVAResult,
    multiclass_amva,
    multiclass_mva,
)
from repro.mva.amva import AMVAResult, schweitzer_amva, bard_amva
from repro.mva.littles_law import (
    customers_from_throughput,
    response_from_customers,
    throughput_from_customers,
    utilization,
)
from repro.mva.residual import (
    mean_residual_life,
    queue_delay,
    residual_correction,
)

__all__ = [
    "AMVAResult",
    "BatchMVAResult",
    "BatchMultiClassMVAResult",
    "ExactMVAResult",
    "MultiClassAMVAResult",
    "MultiClassMVAResult",
    "arrival_queue_bard",
    "arrival_queue_exact_mva",
    "bard_amva",
    "batch_bard_amva",
    "batch_exact_mva",
    "batch_multiclass_amva",
    "batch_multiclass_mva",
    "batch_schweitzer_amva",
    "bkt_residence_time",
    "chandy_lakshmi_residence",
    "customers_from_throughput",
    "exact_mva",
    "mean_residual_life",
    "multiclass_amva",
    "multiclass_mva",
    "queue_delay",
    "residual_correction",
    "response_from_customers",
    "schweitzer_amva",
    "shadow_server_residence_time",
    "solve_alltoall_cl",
    "throughput_from_customers",
    "utilization",
]
