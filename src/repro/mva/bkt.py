"""Priority approximations for the background computation thread.

In the LoPC machine model the computation thread runs at *low* priority:
any arriving request handler interrupts it (preempt-resume), and whenever a
reply handler completes, any request handlers that queued up behind it run
before the thread resumes.  The thread's residence time ``Rw`` therefore
exceeds its raw demand ``W``.

Two classical approximations estimate this inflation:

**BKT preempt-resume approximation** (Bryant, Krzesinski & Teunissen 1983;
Bryant et al. 1984) -- the one the paper uses (Eq. 5.7)::

    Rw = (W + So * Qq) / (1 - Uq)

The numerator charges the thread for the request handlers already queued
when it becomes runnable (``So * Qq``, full service times -- the thread
resumes exactly at a handler-completion epoch so no residual-life discount
applies); the ``1/(1 - Uq)`` factor stretches the remaining work by the
high-priority utilisation, modelling handlers that arrive *while* the
thread runs.

**Shadow-server approximation** (Sevcik) -- simpler but less accurate; it
only inflates the demand by the high-priority utilisation::

    Rw = W / (1 - Uq)

ignoring the backlog present when the thread becomes runnable.  We provide
it for the ablation benchmark comparing the two (the paper states BKT "is
more accurate than the simpler shadow server approximation" for this
purpose).

The paper notes it cannot use the often-more-accurate Chandy--Lakshmi
approximation because that requires queue lengths of a network with
``P - 1`` customers, which Bard's approximation deliberately avoids
computing.
"""

from __future__ import annotations

__all__ = ["bkt_residence_time", "shadow_server_residence_time"]


def _check_inputs(work: float, utilization: float) -> None:
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    if not 0.0 <= utilization < 1.0:
        raise ValueError(
            "high-priority utilization must lie in [0, 1) for a stable "
            f"low-priority thread, got {utilization!r}"
        )


def bkt_residence_time(
    work: float,
    handler_time: float,
    handler_queue: float,
    handler_utilization: float,
) -> float:
    """BKT preempt-resume residence time of the computation thread (Eq. 5.7).

    Parameters
    ----------
    work:
        Mean computation demand ``W`` between blocking requests (cycles).
    handler_time:
        Mean request-handler service time ``So``.
    handler_queue:
        Mean number of request handlers queued at the node, ``Qq``
        (Bard: steady-state mean stands in for the backlog seen when the
        thread becomes runnable).
    handler_utilization:
        Utilisation of the node by request handlers, ``Uq`` in [0, 1).

    Returns
    -------
    ``(W + So * Qq) / (1 - Uq)``.
    """
    _check_inputs(work, handler_utilization)
    if handler_time < 0:
        raise ValueError(f"handler_time must be >= 0, got {handler_time!r}")
    if handler_queue < 0:
        raise ValueError(f"handler_queue must be >= 0, got {handler_queue!r}")
    return (work + handler_time * handler_queue) / (1.0 - handler_utilization)


def shadow_server_residence_time(work: float, handler_utilization: float) -> float:
    """Shadow-server residence time ``W / (1 - Uq)`` (ablation baseline)."""
    _check_inputs(work, handler_utilization)
    return work / (1.0 - handler_utilization)
