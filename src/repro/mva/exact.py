"""Exact Mean Value Analysis for closed single-class product-form networks.

This is the textbook recursion (Reiser & Lavenberg 1980; Lazowska et al.
1984, which the paper cites as its notational source).  It serves two
purposes in this reproduction:

1. A *validation reference* for the approximate machinery: Bard/Schweitzer
   AMVA (:mod:`repro.mva.amva`) must converge to values close to the exact
   recursion, and exactly match it as the population grows.
2. A worked example of the Arrival Theorem that
   :func:`repro.mva.bard.arrival_queue_exact_mva` formalises.

The network model: ``K`` service centres, each either a ``"queueing"``
centre (FCFS/PS single server) or a ``"delay"`` centre (infinite server,
pure latency -- the interconnect in LoPC is exactly such a centre), plus an
optional think time ``Z``.  A single customer class of ``N`` customers
cycles through the centres with service demands ``D_k = V_k * S_k``.

Recursion, for ``n = 1 .. N``::

    R_k(n) = D_k * (1 + Q_k(n-1))     queueing centre   (Arrival Theorem)
    R_k(n) = D_k                      delay centre
    X(n)   = n / (Z + sum_k R_k(n))   Little on the whole cycle
    Q_k(n) = X(n) * R_k(n)            Little per centre
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["ExactMVAResult", "exact_mva"]

_CENTER_KINDS = ("queueing", "delay")


@dataclass(frozen=True)
class ExactMVAResult:
    """Solution of a closed single-class network by exact MVA.

    Attributes
    ----------
    population:
        Number of customers ``N`` the network was solved for.
    throughput:
        System throughput ``X(N)`` (cycles per unit time).
    response_times:
        Per-centre residence times ``R_k(N)``.
    queue_lengths:
        Per-centre mean customer counts ``Q_k(N)``.
    utilizations:
        Per-centre utilisations ``U_k = X * D_k`` (meaningful for queueing
        centres; for delay centres it is the mean number in service).
    cycle_time:
        Total cycle time ``Z + sum_k R_k``.
    queue_history:
        ``queue_history[n]`` holds ``Q_k(n)`` for populations ``0 .. N`` --
        exposed so tests can exercise the exact Arrival Theorem.
    """

    population: int
    throughput: float
    response_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_time: float
    queue_history: np.ndarray = field(repr=False)


def exact_mva(
    demands: Sequence[float],
    population: int,
    think_time: float = 0.0,
    kinds: Sequence[str] | None = None,
) -> ExactMVAResult:
    """Solve a closed single-class product-form network exactly.

    Parameters
    ----------
    demands:
        Service demand ``D_k`` per centre (visit ratio times service time).
    population:
        Customer count ``N >= 0``.
    think_time:
        Pure delay ``Z`` per cycle outside the centres (>= 0).
    kinds:
        Per-centre kind, each ``"queueing"`` (default) or ``"delay"``.

    Raises
    ------
    ValueError
        On negative demands, bad kinds, or negative population.
    """
    demand_arr = np.asarray(list(demands), dtype=float)
    if demand_arr.ndim != 1 or demand_arr.size == 0:
        raise ValueError("demands must be a non-empty 1-D sequence")
    if np.any(demand_arr < 0):
        raise ValueError(f"demands must be >= 0, got {demand_arr!r}")
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population!r}")
    if think_time < 0:
        raise ValueError(f"think_time must be >= 0, got {think_time!r}")

    n_centers = demand_arr.size
    if kinds is None:
        kinds = ["queueing"] * n_centers
    kinds = list(kinds)
    if len(kinds) != n_centers:
        raise ValueError(
            f"kinds has {len(kinds)} entries for {n_centers} centres"
        )
    for kind in kinds:
        if kind not in _CENTER_KINDS:
            raise ValueError(f"unknown centre kind {kind!r}; use {_CENTER_KINDS}")
    is_queueing = np.array([k == "queueing" for k in kinds])

    queue_history = np.zeros((population + 1, n_centers), dtype=float)
    responses = demand_arr.copy()
    throughput = 0.0

    for n in range(1, population + 1):
        prev_q = queue_history[n - 1]
        responses = np.where(
            is_queueing, demand_arr * (1.0 + prev_q), demand_arr
        )
        total = think_time + float(responses.sum())
        throughput = n / total if total > 0 else float("inf")
        queue_history[n] = throughput * responses

    queues = queue_history[population]
    cycle_time = think_time + float(responses.sum()) if population > 0 else think_time
    utilizations = throughput * demand_arr
    return ExactMVAResult(
        population=population,
        throughput=throughput,
        response_times=responses if population > 0 else demand_arr.copy(),
        queue_lengths=queues,
        utilizations=utilizations,
        cycle_time=cycle_time,
        queue_history=queue_history,
    )
