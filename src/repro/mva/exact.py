"""Exact Mean Value Analysis for closed single-class product-form networks.

This is the textbook recursion (Reiser & Lavenberg 1980; Lazowska et al.
1984, which the paper cites as its notational source).  It serves two
purposes in this reproduction:

1. A *validation reference* for the approximate machinery: Bard/Schweitzer
   AMVA (:mod:`repro.mva.amva`) must converge to values close to the exact
   recursion, and exactly match it as the population grows.
2. A worked example of the Arrival Theorem that
   :func:`repro.mva.bard.arrival_queue_exact_mva` formalises.

The network model: ``K`` service centres, each either a ``"queueing"``
centre (FCFS/PS single server) or a ``"delay"`` centre (infinite server,
pure latency -- the interconnect in LoPC is exactly such a centre), plus an
optional think time ``Z``.  A single customer class of ``N`` customers
cycles through the centres with service demands ``D_k = V_k * S_k``.

Recursion, for ``n = 1 .. N``::

    R_k(n) = D_k * (1 + Q_k(n-1))     queueing centre   (Arrival Theorem)
    R_k(n) = D_k                      delay centre
    X(n)   = n / (Z + sum_k R_k(n))   Little on the whole cycle
    Q_k(n) = X(n) * R_k(n)            Little per centre
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.mva.network import (
    check_degenerate,
    check_network_scalars,
    normalize_demands,
    normalize_kinds,
)

__all__ = ["ExactMVAResult", "exact_mva"]


@dataclass(frozen=True)
class ExactMVAResult:
    """Solution of a closed single-class network by exact MVA.

    Attributes
    ----------
    population:
        Number of customers ``N`` the network was solved for.
    throughput:
        System throughput ``X(N)`` (cycles per unit time).
    response_times:
        Per-centre residence times ``R_k(N)``.
    queue_lengths:
        Per-centre mean customer counts ``Q_k(N)``.
    utilizations:
        Per-centre utilisations ``U_k = X * D_k`` (meaningful for queueing
        centres; for delay centres it is the mean number in service).
    cycle_time:
        Total cycle time ``Z + sum_k R_k``.
    queue_history:
        ``queue_history[n]`` holds ``Q_k(n)`` for populations ``0 .. N`` --
        exposed so tests can exercise the exact Arrival Theorem.
    """

    population: int
    throughput: float
    response_times: np.ndarray
    queue_lengths: np.ndarray
    utilizations: np.ndarray
    cycle_time: float
    queue_history: np.ndarray = field(repr=False)


def exact_mva(
    demands: Sequence[float],
    population: int,
    think_time: float = 0.0,
    kinds: Sequence[str] | None = None,
) -> ExactMVAResult:
    """Solve a closed single-class product-form network exactly.

    Parameters
    ----------
    demands:
        Service demand ``D_k`` per centre (visit ratio times service time).
    population:
        Customer count ``N >= 0``.
    think_time:
        Pure delay ``Z`` per cycle outside the centres (>= 0).
    kinds:
        Per-centre kind, each ``"queueing"`` (default) or ``"delay"``.

    Raises
    ------
    ValueError
        On negative demands, bad kinds, negative population, or the
        degenerate all-zero-demand / zero-think-time network (whose
        throughput is unbounded -- see :mod:`repro.mva.network`).
    """
    demand_arr = normalize_demands(demands)
    check_network_scalars(population, think_time)
    n_centers = demand_arr.size
    kinds, is_queueing = normalize_kinds(kinds, n_centers)
    check_degenerate(demand_arr, population, think_time)

    queue_history = np.zeros((population + 1, n_centers), dtype=float)
    responses = demand_arr.copy()
    throughput = 0.0

    for n in range(1, population + 1):
        prev_q = queue_history[n - 1]
        responses = np.where(
            is_queueing, demand_arr * (1.0 + prev_q), demand_arr
        )
        # total > 0 always: the degenerate zero-demand/zero-think network
        # was rejected up front.
        total = think_time + float(responses.sum())
        throughput = n / total
        queue_history[n] = throughput * responses

    queues = queue_history[population]
    cycle_time = think_time + float(responses.sum()) if population > 0 else think_time
    utilizations = throughput * demand_arr
    return ExactMVAResult(
        population=population,
        throughput=throughput,
        response_times=responses if population > 0 else demand_arr.copy(),
        queue_lengths=queues,
        utilizations=utilizations,
        cycle_time=cycle_time,
        queue_history=queue_history,
    )
