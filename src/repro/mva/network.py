"""Shared input validation for the closed-network MVA solvers.

:mod:`repro.mva.exact`, :mod:`repro.mva.amva` and :mod:`repro.mva.batch`
all accept the same network description -- per-centre demands, a
population, a think time and per-centre kinds -- and must agree on what
inputs are legal.  Centralising the checks here keeps the scalar and
vectorized solvers' error behaviour identical, which the regression
tests assert.

Two degenerate-input rules are enforced uniformly:

* ``kinds`` is materialised exactly once (a generator argument used to
  exhaust itself between ``len()`` and the queueing-mask construction,
  crashing ``_amva`` with a shape-``(0,)`` broadcast error);
* a network whose demands are all zero *and* whose think time is zero
  has no product-form solution for ``N >= 1`` -- customers would cycle
  infinitely fast, so throughput is unbounded.  The solvers used to
  return ``inf`` throughput and NaN queue lengths (with numpy
  RuntimeWarnings); they now raise :class:`ValueError` up front.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "CENTER_KINDS",
    "as_integer_array",
    "check_degenerate",
    "check_degenerate_batch",
    "check_degenerate_multiclass",
    "check_degenerate_multiclass_batch",
    "check_network_scalars",
    "normalize_demands",
    "normalize_kinds",
    "normalize_multiclass",
]

_DEGENERATE_MESSAGE = (
    "all demands are zero and think_time is 0, so cycle time is 0 and "
    "throughput is unbounded; provide a positive demand or think time "
    "(or population 0)"
)

#: The centre kinds every solver understands.
CENTER_KINDS = ("queueing", "delay")


def as_integer_array(values, name: str) -> np.ndarray:
    """Coerce to int64 while rejecting fractional values.

    ``np.asarray(..., dtype=np.int64)`` would silently truncate 2.5 to 2;
    the batch solvers must instead fail like their scalar counterparts
    (which raise on non-integer populations / server counts).
    Integer-valued floats (``8.0``) are accepted.
    """
    arr = np.asarray(values)
    if not np.issubdtype(arr.dtype, np.integer):
        as_float = arr.astype(float)
        if np.any(as_float != np.floor(as_float)):
            raise ValueError(f"{name} must be integers, got {arr!r}")
    return arr.astype(np.int64)


def normalize_demands(demands: Sequence[float]) -> np.ndarray:
    """Coerce ``demands`` to a validated 1-D float array."""
    demand_arr = np.asarray(list(demands), dtype=float)
    if demand_arr.ndim != 1 or demand_arr.size == 0:
        raise ValueError("demands must be a non-empty 1-D sequence")
    if np.any(demand_arr < 0):
        raise ValueError(f"demands must be >= 0, got {demand_arr!r}")
    return demand_arr


def check_network_scalars(population: int, think_time: float) -> None:
    """Validate the population and think-time scalars."""
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population!r}")
    if think_time < 0:
        raise ValueError(f"think_time must be >= 0, got {think_time!r}")


def normalize_kinds(
    kinds: Sequence[str] | None, n_centers: int
) -> tuple[list[str], np.ndarray]:
    """Materialise and validate ``kinds``; return it with the queueing mask.

    Materialising first (``list(kinds)``) is load-bearing: a generator
    argument must survive both the length check and the mask build.
    """
    if kinds is None:
        kinds = ["queueing"] * n_centers
    kinds = list(kinds)
    if len(kinds) != n_centers:
        raise ValueError(
            f"kinds has {len(kinds)} entries for {n_centers} centres"
        )
    for kind in kinds:
        if kind not in CENTER_KINDS:
            raise ValueError(
                f"unknown centre kind {kind!r}; use {CENTER_KINDS}"
            )
    return kinds, np.array([k == "queueing" for k in kinds])


def check_degenerate(
    demand_arr: np.ndarray, population: int, think_time: float
) -> None:
    """Reject the all-zero-demand, zero-think-time network.

    With ``N >= 1`` customers and no service demand anywhere, cycle time
    is zero and throughput diverges; there is no finite steady state to
    report.  (``N = 0`` is fine -- the empty network has throughput 0 --
    as is zero demand with a positive think time, where ``X = N/Z``.)
    """
    if population > 0 and think_time == 0.0 and not np.any(demand_arr > 0.0):
        raise ValueError(f"degenerate network: {_DEGENERATE_MESSAGE}")


def check_degenerate_batch(
    demand_arr: np.ndarray, populations: np.ndarray, think_times: np.ndarray
) -> None:
    """Vectorized :func:`check_degenerate` over a ``(points, centres)`` batch."""
    degenerate = (
        (populations > 0)
        & (think_times == 0.0)
        & ~np.any(demand_arr > 0.0, axis=1)
    )
    if np.any(degenerate):
        bad = np.flatnonzero(degenerate)
        raise ValueError(
            f"degenerate network at point(s) {bad.tolist()}: "
            f"{_DEGENERATE_MESSAGE}"
        )


def check_degenerate_multiclass(
    demand_arr: np.ndarray, populations: np.ndarray, think_times: np.ndarray
) -> None:
    """Per-class :func:`check_degenerate` for a ``(classes, centres)`` network.

    A class with ``N_c >= 1`` customers, zero think time and no service
    demand anywhere cycles infinitely fast -- exactly the single-class
    degeneracy, applied row by row.  Classes with ``N_c = 0`` are inert
    and therefore never degenerate.
    """
    degenerate = (
        (populations > 0)
        & (think_times == 0.0)
        & ~np.any(demand_arr > 0.0, axis=1)
    )
    if np.any(degenerate):
        bad = np.flatnonzero(degenerate)
        raise ValueError(
            f"degenerate network: class(es) {bad.tolist()}: "
            f"{_DEGENERATE_MESSAGE}"
        )


def check_degenerate_multiclass_batch(
    demand_arr: np.ndarray, populations: np.ndarray, think_times: np.ndarray
) -> None:
    """Vectorized :func:`check_degenerate_multiclass` over a
    ``(points, classes, centres)`` batch."""
    degenerate = (
        (populations > 0)
        & (think_times == 0.0)
        & ~np.any(demand_arr > 0.0, axis=2)
    )
    if np.any(degenerate):
        bad = np.flatnonzero(np.any(degenerate, axis=1))
        raise ValueError(
            f"degenerate network at point(s) {bad.tolist()}: "
            f"{_DEGENERATE_MESSAGE}"
        )


def normalize_multiclass(
    demands,
    populations,
    think_times,
    kinds: Sequence[str] | None,
) -> tuple[np.ndarray, tuple[int, ...], np.ndarray, list[str], np.ndarray]:
    """Validate a scalar multi-class network description.

    Shared by :func:`repro.mva.multiclass.multiclass_mva` and
    :func:`repro.mva.multiclass.multiclass_amva` so the exact and
    approximate solvers (and, through the batch normaliser, the
    vectorized kernels) agree on what inputs are legal.

    Returns ``(demand_arr (C, K), populations tuple, think (C,),
    kinds list, is_queueing mask)``.
    """
    demand_arr = np.asarray(demands, dtype=float)
    if demand_arr.ndim != 2 or demand_arr.size == 0:
        raise ValueError("demands must be a non-empty C x K matrix")
    if np.any(demand_arr < 0):
        raise ValueError("demands must be >= 0")
    n_classes, n_centers = demand_arr.shape

    pops = tuple(int(n) for n in populations)
    if len(pops) != n_classes:
        raise ValueError(
            f"populations has {len(pops)} entries for {n_classes} classes"
        )
    if any(n < 0 for n in pops):
        raise ValueError("populations must be >= 0")

    if think_times is None:
        think = np.zeros(n_classes)
    else:
        think = np.asarray(think_times, dtype=float)
        if think.shape != (n_classes,):
            raise ValueError(
                f"think_times must have length {n_classes}, got {think.shape}"
            )
        if np.any(think < 0):
            raise ValueError("think_times must be >= 0")

    kinds_list, is_queueing = normalize_kinds(kinds, n_centers)
    check_degenerate_multiclass(demand_arr, np.asarray(pops), think)
    return demand_arr, pops, think, kinds_list, is_queueing
