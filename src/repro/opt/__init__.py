"""``repro.opt``: inverse queries over the batch solvers.

The forward API answers "given parameters, what is R?"; this package
answers the planner's inverse -- "what parameters minimise R under a
budget?", "largest W that still meets the deadline?", "where is the
contention knee?" -- with gradient-free searches whose every iteration
is a single vectorized batch solve:

* :func:`~repro.opt.scalar.bisect_boundary` -- feasibility-boundary
  bisection on monotone axes, ``width`` probes per batch call;
* :func:`~repro.opt.scalar.golden_min` -- golden-section minimisation
  on unimodal axes;
* :func:`~repro.opt.descent.pattern_search` -- batched compass descent
  over multi-axis integer/continuous boxes;
* :func:`~repro.opt.knee.find_knee` -- coarse-to-fine curvature search
  for the knee of a batched response curve;
* :func:`~repro.opt.optimizer.run_optimize` -- the router that picks a
  search from the scenario's declared monotonicity hints and returns a
  typed, JSON-round-trippable :class:`~repro.opt.result.OptResult`.

The friendly entry points live on the facade:
``scenario(...).optimize(minimize="R", over={"Ps": (1, 64)})`` and
``Study.optimize(...)``.
"""

from repro.opt.descent import DescentResult, pattern_search
from repro.opt.evaluate import BatchObjective
from repro.opt.knee import find_knee
from repro.opt.optimizer import build_axes, run_optimize
from repro.opt.result import OptResult
from repro.opt.scalar import SearchResult, bisect_boundary, golden_min
from repro.opt.space import AxisSpec, Constraint, parse_constraints

__all__ = [
    "AxisSpec",
    "BatchObjective",
    "Constraint",
    "DescentResult",
    "OptResult",
    "SearchResult",
    "bisect_boundary",
    "build_axes",
    "find_knee",
    "golden_min",
    "parse_constraints",
    "pattern_search",
    "run_optimize",
]
