"""Knee localisation on a batched response curve.

The paper's headline plots (fig 5.1 and friends) all share one shape: a
response-time or runtime curve that is flat while contention is cheap
and then turns hard once the queueing term takes over.  "Where is the
knee?" is the capacity-planning question behind those figures.

:func:`find_knee` answers it with coarse-to-fine batched grids: solve a
whole grid in one batch call, normalise the window to the unit square
(so the answer is scale-free in both axes), score interior points by
discrete curvature (second differences of the normalised curve), and
re-bracket around the sharpest bend.  Three rounds of a 9-point grid
localise the knee to ~``span / 256`` for the cost of ~27 solved points.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

from repro.opt.scalar import SearchResult, _fwd, _inv
from repro.opt.space import AxisSpec

__all__ = ["find_knee"]


def _curvature(ts: Sequence[float], ys: Sequence[float]) -> list[float]:
    """|second difference| of the curve normalised to the unit square.

    ``ts`` must be evenly spaced (the grids we build are, in search
    geometry).  Returns one score per *interior* point.
    """
    t_span = ts[-1] - ts[0] or 1.0
    y_lo, y_hi = min(ys), max(ys)
    y_span = (y_hi - y_lo) or 1.0
    u = [(y - y_lo) / y_span for y in ys]
    h = (ts[1] - ts[0]) / t_span
    return [
        abs(u[i + 1] - 2.0 * u[i] + u[i - 1]) / (h * h)
        for i in range(1, len(ts) - 1)
    ]


def find_knee(
    evaluate: Callable[[Sequence[float]], Sequence[float]],
    axis: AxisSpec,
    *,
    grid: int = 9,
    rounds: int = 3,
    on_step: Callable[[dict], None] | None = None,
) -> SearchResult:
    """Locate the point of maximum curvature of ``evaluate`` over ``axis``.

    Each round is one batched solve of a ``grid``-point window;
    ``rounds`` rounds narrow the window by ``~(grid - 1) / 2`` each
    time.  Returns a :class:`SearchResult` whose ``x`` is the knee and
    ``fx`` the curve value there; ``converged`` is False when the curve
    is too flat to rank (all curvature scores ~0) or a window solves
    infeasible.
    """
    if grid < 5:
        raise ValueError("knee grid needs at least 5 points")
    lo, hi = axis.lo, axis.hi
    history: list[float] = []
    steps = 0
    best_x: float | None = None
    best_y: float | None = None

    for _ in range(max(1, rounds)):
        a, b = _fwd(axis, lo), _fwd(axis, hi)
        ts = [a + (b - a) * i / (grid - 1) for i in range(grid)]
        xs: list[float] = []
        for t in ts:
            x = axis.snap(_inv(axis, t))
            if x not in xs:
                xs.append(x)
        if len(xs) < 5:
            # Integer window exhausted below a rankable grid.
            break
        ys = list(evaluate(xs))
        steps += 1
        if not all(math.isfinite(y) for y in ys):
            return SearchResult(None, None, steps, False, tuple(history), None)
        ts = [_fwd(axis, x) for x in xs]
        # On a log axis, score curvature in log-log space: a curve that
        # ends asymptotically linear in x (R ~ W + contention) looks
        # exponential against log-x and banks all its linear-space
        # curvature in the top decade, while log-y turns it into the
        # sigmoid whose bend is the transition the knee question means.
        if axis.log and min(ys) > 0.0:
            scores = _curvature(ts, [math.log(y) for y in ys])
        else:
            scores = _curvature(ts, ys)
        k = max(range(len(scores)), key=lambda i: scores[i])
        if scores[k] <= 1e-12:
            # Flat window: no knee to localise.
            return SearchResult(None, None, steps, False, tuple(history), (lo, hi))
        best_x, best_y = xs[k + 1], ys[k + 1]
        history.append(best_x)
        if on_step is not None:
            on_step(
                {
                    "kind": "knee",
                    "step": steps,
                    "bracket": (lo, hi),
                    "incumbent": best_x,
                }
            )
        new_lo, new_hi = xs[k], xs[k + 2]
        if axis.exhausted(new_lo, new_hi) or (new_lo, new_hi) == (lo, hi):
            lo, hi = new_lo, new_hi
            break
        lo, hi = new_lo, new_hi

    if best_x is None:
        return SearchResult(None, None, steps, False, tuple(history), (lo, hi))
    return SearchResult(best_x, best_y, steps, True, tuple(history), (lo, hi))
