"""Batched 1-D searches: bisection on a predicate boundary and
golden-section minimisation.

Both drivers speak to the model through a single callback -- for
:func:`bisect_boundary` a *predicate* ``evaluate(xs) -> [bool, ...]``,
for :func:`golden_min` an *objective* ``evaluate(xs) -> [float, ...]``
(``inf`` marks an infeasible point) -- and both hand the callback whole
candidate lists, so one optimizer iteration is one batched solve.
Memoization is the callback's job (:class:`repro.opt.evaluate.BatchObjective`
provides it); the drivers may freely re-offer endpoints.

``bisect_boundary`` narrows with ``width`` interior probes per call
rather than one midpoint: each batch call shrinks the bracket by a
factor of ``width + 1``, so a 20 000-wide integer axis resolves in
``ceil(log_5 20000) = 7`` solves at the default width of 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.opt.space import AxisSpec

__all__ = ["SearchResult", "bisect_boundary", "golden_min"]

#: Inverse golden ratio, the classic section fraction.
_INVPHI = (math.sqrt(5.0) - 1.0) / 2.0

#: Default relative bracket tolerance (fraction of the initial span in
#: search geometry) for continuous axes.
_REL_XTOL = 1e-4


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one scalar search.

    ``x`` is ``None`` when the search found no admissible point (e.g. a
    bisection whose predicate fails everywhere).  ``history`` tracks the
    incumbent per step: the best objective for minimisation, the best
    admissible axis value for bisection.
    """

    x: float | None
    fx: float | None
    steps: int
    converged: bool
    history: tuple[float, ...]
    bracket: tuple[float, float] | None = None


def _fwd(axis: AxisSpec, x: float) -> float:
    return math.log(x) if axis.log else x


def _inv(axis: AxisSpec, t: float) -> float:
    return math.exp(t) if axis.log else t


def _probes(axis: AxisSpec, lo: float, hi: float, k: int) -> list[float]:
    """Up to ``k`` snapped probe points strictly inside ``(lo, hi)``,
    evenly spaced in search geometry."""
    a, b = _fwd(axis, lo), _fwd(axis, hi)
    out: list[float] = []
    for i in range(k):
        x = axis.snap(_inv(axis, a + (b - a) * (i + 1) / (k + 1)))
        if lo < x < hi and x not in out:
            out.append(x)
    return out


def _int_range(axis: AxisSpec, lo: float, hi: float) -> list[float]:
    return [float(v) for v in range(math.ceil(lo), math.floor(hi) + 1)]


def _xtol_for(axis: AxisSpec, xtol: float | None) -> float:
    if xtol is not None:
        return float(xtol)
    return max(abs(axis.span()), 1.0) * _REL_XTOL


def bisect_boundary(
    evaluate: Callable[[Sequence[float]], Sequence[bool]],
    axis: AxisSpec,
    *,
    want: str = "largest_true",
    width: int = 4,
    xtol: float | None = None,
    max_steps: int = 60,
    on_step: Callable[[dict], None] | None = None,
) -> SearchResult:
    """Locate the feasibility boundary of a monotone predicate.

    ``want="largest_true"`` assumes the predicate holds on a prefix
    ``[lo, x*]`` and finds the largest admissible ``x``;
    ``"smallest_true"`` is the mirrored suffix case.  If the predicate
    is not actually monotone the answer is the boundary of *some*
    admissible run -- the caller is expected to have a monotonicity
    hint (or to accept a local answer).
    """
    if want not in ("largest_true", "smallest_true"):
        raise ValueError(f"want must be largest_true|smallest_true, not {want!r}")
    largest = want == "largest_true"
    xtol = _xtol_for(axis, xtol)
    lo, hi = axis.snap(axis.lo), axis.snap(axis.hi)
    history: list[float] = []

    flags = list(evaluate([lo, hi]))
    steps = 1
    ok_lo, ok_hi = bool(flags[0]), bool(flags[-1])
    # The sought endpoint admissible means the query is trivially solved
    # -- whichever way the predicate runs (an `R <= budget` constraint
    # can make either end of the axis the feasible side).
    if largest and ok_hi:
        return SearchResult(hi, None, steps, True, (hi,), (lo, hi))
    if not largest and ok_lo:
        return SearchResult(lo, None, steps, True, (lo,), (lo, hi))
    if not (ok_lo or ok_hi):
        # Predicate fails at both ends: any feasible run is interior and
        # bisection cannot anchor on it.
        return SearchResult(None, None, steps, False, (), None)

    # Invariant: predicate True at t_side, False at f_side.
    t_side, f_side = (lo, hi) if largest else (hi, lo)
    history.append(t_side)
    while steps < max_steps:
        blo, bhi = min(t_side, f_side), max(t_side, f_side)
        if axis.exhausted(blo, bhi) or abs(axis.span(blo, bhi)) <= xtol:
            break
        probes = _probes(axis, blo, bhi, width)
        if not probes:
            break
        flags = list(evaluate(probes))
        steps += 1
        # Walk from the True side towards the False side, keeping the
        # last admissible probe and the first inadmissible one.
        ordered = probes if largest else list(reversed(probes))
        oflags = flags if largest else list(reversed(flags))
        for x, ok in zip(ordered, oflags):
            if ok:
                t_side = x
            else:
                f_side = x
                break
        history.append(t_side)
        if on_step is not None:
            on_step(
                {
                    "kind": "bisect",
                    "step": steps,
                    "bracket": (min(t_side, f_side), max(t_side, f_side)),
                    "incumbent": t_side,
                }
            )
    blo, bhi = min(t_side, f_side), max(t_side, f_side)
    converged = axis.exhausted(blo, bhi) or abs(axis.span(blo, bhi)) <= xtol
    return SearchResult(
        t_side, None, steps, converged, tuple(history), (blo, bhi)
    )


def golden_min(
    evaluate: Callable[[Sequence[float]], Sequence[float]],
    axis: AxisSpec,
    *,
    xtol: float | None = None,
    max_steps: int = 80,
    on_step: Callable[[dict], None] | None = None,
) -> SearchResult:
    """Golden-section minimisation on a unimodal axis.

    The opening call batches both section points with the endpoints;
    after that each step evaluates one fresh point (memoized repeats are
    free).  Integer axes finish exactly: once the bracket holds only a
    handful of lattice points the remainder is solved in one final
    batch call and the true argmin returned.
    """
    xtol = _xtol_for(axis, xtol)
    a, b = _fwd(axis, axis.lo), _fwd(axis, axis.hi)
    history: list[float] = []

    def probe(t: float) -> float:
        return axis.snap(_inv(axis, t))

    x1, x2 = probe(b - (b - a) * _INVPHI), probe(a + (b - a) * _INVPHI)
    xs = []
    for x in (axis.snap(axis.lo), x1, x2, axis.snap(axis.hi)):
        if x not in xs:
            xs.append(x)
    fs = list(evaluate(xs))
    steps = 1
    known = dict(zip(xs, fs))
    best_x = min(known, key=lambda x: known[x])
    history.append(known[best_x])
    finished_exact = False

    while steps < max_steps:
        if axis.exhausted(_inv(axis, a), _inv(axis, b)) or (b - a) <= xtol:
            break
        if axis.integer:
            remaining = _int_range(axis, _inv(axis, a), _inv(axis, b))
            fresh = [x for x in remaining if x not in known]
            if len(fresh) <= 6:
                # Small integer bracket: finish exhaustively in one call.
                if fresh:
                    known.update(zip(fresh, evaluate(fresh)))
                    steps += 1
                in_bracket = {x: known[x] for x in remaining if x in known}
                if in_bracket:
                    best_x = min(in_bracket, key=lambda x: in_bracket[x])
                history.append(known[best_x])
                finished_exact = True
                break
        t1, t2 = b - (b - a) * _INVPHI, a + (b - a) * _INVPHI
        x1, x2 = probe(t1), probe(t2)
        fresh = [x for x in (x1, x2) if x not in known]
        if fresh:
            known.update(zip(fresh, evaluate(fresh)))
            steps += 1
        # (With no fresh points -- integer snapping collapsed both
        # probes onto known lattice values -- the bracket still shrinks
        # below, so the exhaustive small-bracket branch is reached.)
        if known.get(x1, math.inf) <= known.get(x2, math.inf):
            b = t2
        else:
            a = t1
        cand = min(known, key=lambda x: known[x])
        if known[cand] < known.get(best_x, math.inf):
            best_x = cand
        history.append(known[best_x])
        if on_step is not None:
            on_step(
                {
                    "kind": "golden",
                    "step": steps,
                    "bracket": (_inv(axis, a), _inv(axis, b)),
                    "incumbent": known[best_x],
                }
            )

    fx = known[best_x]
    if not math.isfinite(fx):
        return SearchResult(None, None, steps, False, tuple(history), None)
    converged = (
        finished_exact
        or axis.exhausted(_inv(axis, a), _inv(axis, b))
        or (b - a) <= xtol
    )
    return SearchResult(
        best_x,
        fx,
        steps,
        converged,
        tuple(history),
        (_inv(axis, a), _inv(axis, b)),
    )
