"""Typed result of one inverse query.

:class:`OptResult` is to :func:`repro.opt.run_optimize` what
:class:`repro.api.Solution` is to a single solve: a frozen record with
the winning parameters, the objective trajectory, solve/point counts
(the cost story -- how many batch calls and solved points the answer
took versus a grid scan), a ``converged`` flag, and the same JSON
round-trip contract so optimizer answers can be cached, diffed, and
shipped as artifacts.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

__all__ = ["OptResult"]


def _freeze(mapping: Mapping[str, Any] | None) -> Mapping[str, Any]:
    return MappingProxyType(dict(mapping or {}))


@dataclass(frozen=True)
class OptResult:
    """Outcome of one ``optimize()`` / ``knee()`` query.

    Attributes
    ----------
    scenario, backend, evaluator:
        Where the solves ran (mirrors :class:`repro.api.Solution`).
    mode:
        ``"minimize"``, ``"maximize"`` or ``"knee"``.
    objective:
        The solved column being optimised (``R``, ``X`` ...) -- or the
        parameter name itself for inverse queries like "largest W with
        R <= budget".
    method:
        Which search ran: ``"boundary"`` (monotone hint, endpoints
        only), ``"bisect"`` (feasibility boundary), ``"golden"``
        (unimodal hint), ``"descent"`` (pattern search) or ``"knee"``.
    over:
        The search box, axis name -> ``(lo, hi)``.
    constraints:
        The ``subject_to`` predicates, as their source strings.
    best_params:
        Full resolved parameter dict of the winning point.
    best_values:
        Solved values at the winning point.
    best:
        Objective value at the winner (the axis value itself for
        param-objective queries).
    trajectory:
        Best-objective-so-far after each optimizer step.
    solves / points / steps:
        Batch-solve calls issued, individual points solved, and
        optimizer iterations taken.
    converged:
        True when the search met its tolerance (rather than hitting
        ``max_solves`` or finding no feasible point).
    """

    scenario: str
    backend: str
    evaluator: str
    mode: str
    objective: str
    method: str
    over: Mapping[str, tuple[float, float]]
    constraints: tuple[str, ...]
    best_params: Mapping[str, Any]
    best_values: Mapping[str, float]
    best: float
    trajectory: tuple[float, ...]
    solves: int
    points: int
    steps: int
    converged: bool
    meta: Mapping[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "over",
            _freeze({k: (float(lo), float(hi))
                     for k, (lo, hi) in dict(self.over).items()}),
        )
        object.__setattr__(self, "constraints", tuple(self.constraints))
        object.__setattr__(self, "best_params", _freeze(self.best_params))
        object.__setattr__(
            self,
            "best_values",
            _freeze({k: float(v) for k, v in dict(self.best_values).items()}),
        )
        object.__setattr__(
            self, "trajectory", tuple(float(v) for v in self.trajectory)
        )
        object.__setattr__(self, "meta", _freeze(self.meta))

    # -- convenience -----------------------------------------------------

    @property
    def argbest(self) -> dict[str, Any]:
        """The winning values of just the searched axes (empty when the
        query found no feasible point)."""
        return {
            name: self.best_params[name]
            for name in self.over
            if name in self.best_params
        }

    @property
    def feasible(self) -> bool:
        return bool(self.best_params) and math.isfinite(self.best)

    def solution(self) -> "Any":
        """The winning point as a :class:`repro.api.Solution`."""
        from repro.api.solution import Solution

        return Solution(
            scenario=self.scenario,
            backend=self.backend,
            evaluator=self.evaluator,
            params=dict(self.best_params),
            values=dict(self.best_values),
            meta={"opt": {"mode": self.mode, "method": self.method}},
        )

    def summary(self) -> str:
        tail = "converged" if self.converged else "NOT converged"
        if not self.feasible:
            box = ", ".join(f"{k}" for k in self.over)
            return (
                f"{self.mode} {self.objective} over {{{box}}} -> "
                f"no feasible point via {self.method} "
                f"({self.solves} solves, {self.points} points, {tail})"
            )
        axes = ", ".join(f"{k}={v}" for k, v in self.argbest.items())
        return (
            f"{self.mode} {self.objective} over {{{axes}}} -> "
            f"{self.best:.6g} via {self.method} "
            f"({self.solves} solves, {self.points} points, {tail})"
        )

    # -- JSON round trip -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "evaluator": self.evaluator,
            "mode": self.mode,
            "objective": self.objective,
            "method": self.method,
            "over": {k: list(v) for k, v in self.over.items()},
            "constraints": list(self.constraints),
            "best_params": dict(self.best_params),
            "best_values": dict(self.best_values),
            "best": self.best,
            "trajectory": list(self.trajectory),
            "solves": self.solves,
            "points": self.points,
            "steps": self.steps,
            "converged": self.converged,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OptResult":
        return cls(
            scenario=data["scenario"],
            backend=data["backend"],
            evaluator=data["evaluator"],
            mode=data["mode"],
            objective=data["objective"],
            method=data["method"],
            over={k: (v[0], v[1]) for k, v in data["over"].items()},
            constraints=tuple(data["constraints"]),
            best_params=data["best_params"],
            best_values=data["best_values"],
            best=float(data["best"]),
            trajectory=tuple(data["trajectory"]),
            solves=int(data["solves"]),
            points=int(data["points"]),
            steps=int(data["steps"]),
            converged=bool(data["converged"]),
            meta=data.get("meta", {}),
        )

    def to_json(self, **kwargs: Any) -> str:
        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "OptResult":
        return cls.from_dict(json.loads(text))
