"""Search-space primitives for the optimization layer.

An :class:`AxisSpec` is one box-constrained search axis -- a scenario
parameter name plus numeric ``(lo, hi)`` bounds, with an ``integer``
flag so the algorithms snap candidates onto the lattice the solvers
actually accept (``Ps = 8``, never ``Ps = 7.63``), and a ``log`` flag
for axes whose natural geometry is multiplicative (``W`` spans 1 to
20000; bisecting in log-space keeps probes spread over the decades
instead of crowding the top one).

A :class:`Constraint` is one ``column <op> bound`` predicate over solved
values (``R <= 1000``).  Constraints are parsed from the strings users
pass to ``subject_to=`` and the CLI's ``--subject-to``; they evaluate
against the values dict of a solved point, so any solution column
(``R``, ``X``, ``C`` ...) can bound the search.

These classes are deliberately dependency-free (no facade imports) so
:mod:`repro.core.scaling` and the test suite can drive the raw
algorithms without touching scenario machinery.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

__all__ = [
    "AxisSpec",
    "Constraint",
    "parse_constraints",
]


@dataclass(frozen=True)
class AxisSpec:
    """One box-constrained search axis.

    ``lo``/``hi`` are inclusive bounds.  ``integer`` axes snap every
    candidate to the nearest in-range int; ``log`` axes tell the
    algorithms to place probes uniformly in ``log(x)`` (requires
    ``lo > 0``).
    """

    name: str
    lo: float
    hi: float
    integer: bool = False
    log: bool = False

    def __post_init__(self) -> None:
        lo, hi = float(self.lo), float(self.hi)
        if not (math.isfinite(lo) and math.isfinite(hi)):
            raise ValueError(f"axis {self.name!r}: bounds must be finite")
        if lo > hi:
            raise ValueError(
                f"axis {self.name!r}: lo ({lo}) exceeds hi ({hi})"
            )
        if self.log and lo <= 0:
            raise ValueError(
                f"axis {self.name!r}: log axes need lo > 0, got {lo}"
            )
        if self.integer:
            if math.ceil(lo) > math.floor(hi):
                raise ValueError(
                    f"axis {self.name!r}: no integers in [{lo}, {hi}]"
                )
            object.__setattr__(self, "lo", float(math.ceil(lo)))
            object.__setattr__(self, "hi", float(math.floor(hi)))
        else:
            object.__setattr__(self, "lo", lo)
            object.__setattr__(self, "hi", hi)

    # -- geometry helpers ------------------------------------------------

    def snap(self, x: float) -> float:
        """Clip ``x`` into the box and round onto the integer lattice."""
        x = min(max(float(x), self.lo), self.hi)
        if self.integer:
            x = float(round(x))
            x = min(max(x, self.lo), self.hi)
        return x

    def value(self, x: float) -> float | int:
        """``snap(x)`` as the Python type the schema expects."""
        x = self.snap(x)
        return int(x) if self.integer else x

    def _fwd(self, x: float) -> float:
        return math.log(x) if self.log else x

    def _inv(self, t: float) -> float:
        return math.exp(t) if self.log else t

    def interior(self, fracs: Sequence[float]) -> list[float]:
        """Snapped points at the given fractions of the (possibly log)
        span, deduplicated and ordered."""
        a, b = self._fwd(self.lo), self._fwd(self.hi)
        out: list[float] = []
        for f in fracs:
            x = self.snap(self._inv(a + (b - a) * float(f)))
            if x not in out:
                out.append(x)
        return sorted(out)

    def grid(self, n: int) -> list[float]:
        """``n`` snapped points spanning the box (endpoints included)."""
        if n < 2:
            return [self.snap(self.lo)]
        return self.interior([i / (n - 1) for i in range(n)])

    def span(self, lo: float | None = None, hi: float | None = None) -> float:
        """Bracket width in search geometry (log-space for log axes)."""
        a = self._fwd(self.lo if lo is None else lo)
        b = self._fwd(self.hi if hi is None else hi)
        return b - a

    def exhausted(self, lo: float, hi: float) -> bool:
        """True when an integer bracket has no untested interior point."""
        return self.integer and (math.floor(hi) - math.ceil(lo)) <= 1


_OPS: Mapping[str, Callable[[float, float], bool]] = {
    "<=": lambda v, b: v <= b,
    ">=": lambda v, b: v >= b,
    "<": lambda v, b: v < b,
    ">": lambda v, b: v > b,
    "==": lambda v, b: v == b,
}

_CONSTRAINT_RE = re.compile(
    r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(<=|>=|==|<|>)\s*([-+0-9.eE]+)\s*$"
)


@dataclass(frozen=True)
class Constraint:
    """One ``column <op> bound`` predicate over solved values."""

    column: str
    op: str
    bound: float
    text: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            known = ", ".join(_OPS)
            raise ValueError(f"unknown constraint op {self.op!r}; known: {known}")
        if not self.text:
            object.__setattr__(
                self, "text", f"{self.column} {self.op} {self.bound:g}"
            )

    @classmethod
    def parse(cls, text: str) -> "Constraint":
        m = _CONSTRAINT_RE.match(text)
        if m is None:
            raise ValueError(
                f"cannot parse constraint {text!r}; expected e.g. 'R <= 1000'"
            )
        column, op, bound = m.groups()
        return cls(column=column, op=op, bound=float(bound), text=text.strip())

    def ok(self, values: Mapping[str, float]) -> bool:
        if self.column not in values:
            known = ", ".join(sorted(values))
            raise KeyError(
                f"constraint {self.text!r}: no column {self.column!r} in "
                f"solved values (have: {known})"
            )
        v = float(values[self.column])
        return math.isfinite(v) and _OPS[self.op](v, self.bound)


def parse_constraints(
    subject_to: str | Constraint | Sequence[str | Constraint] | None,
) -> tuple[Constraint, ...]:
    """Normalise ``subject_to=`` input to a tuple of constraints.

    Accepts a single string/:class:`Constraint` or a sequence of them.
    """
    if subject_to is None:
        return ()
    if isinstance(subject_to, (str, Constraint)):
        subject_to = [subject_to]
    out = []
    for item in subject_to:
        out.append(item if isinstance(item, Constraint) else Constraint.parse(item))
    return tuple(out)
