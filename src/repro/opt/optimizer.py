"""Inverse-query driver: pick a search, run it batched, return an
:class:`OptResult`.

This is the routing brain behind ``scenario(...).optimize(...)``:

* **param-objective queries** ("largest ``W`` with ``R <= 1000``")
  bisect the feasibility boundary of the ``subject_to`` predicate --
  ``width`` interior probes per batch call, so a 20 000-wide axis costs
  ~7 solves;
* **column objectives on a hinted monotone axis** need no search at
  all without constraints (the optimum is a box endpoint; one batched
  solve of both ends) and become a feasibility bisection with them;
* **hinted unimodal axes** run golden-section;
* **everything else** -- unhinted axes, multi-axis boxes -- runs the
  batched pattern search, constraints folded in as infinite penalties;
* **knee queries** run the coarse-to-fine curvature search.

Monotonicity hints come from the scenario declarations
(:attr:`repro.api.scenario.Backend.hints`), so the method choice is
automatic; ``OptResult.method`` records which search actually ran.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro import obs
from repro.opt.descent import pattern_search
from repro.opt.evaluate import BatchObjective
from repro.opt.knee import find_knee
from repro.opt.result import OptResult
from repro.opt.scalar import bisect_boundary, golden_min
from repro.opt.space import AxisSpec, parse_constraints

__all__ = ["build_axes", "run_optimize"]

#: Continuous axes spanning at least this lo:hi ratio are searched in
#: log space (probes spread over the decades, not crowded in the top one).
_LOG_RATIO = 100.0


def build_axes(
    scenario_cls: type,
    role: str,
    over: Mapping[str, object],
) -> tuple[AxisSpec, ...]:
    """Compile an ``over=`` mapping into :class:`AxisSpec` search axes.

    Values are ``(lo, hi)`` pairs -- integer/log geometry inferred from
    the schema -- or explicit :class:`AxisSpec` instances for full
    control.  Boxes are validated against any ``lo``/``hi`` range the
    schema declares for the parameter.
    """
    axes: list[AxisSpec] = []
    for name, bounds in dict(over).items():
        if isinstance(bounds, AxisSpec):
            if bounds.name != name:
                raise ValueError(
                    f"over[{name!r}] is an AxisSpec named {bounds.name!r}; "
                    "the key and the axis name must agree"
                )
            axes.append(bounds)
            continue
        entry = scenario_cls.find_param(name)
        if entry is None:
            raise ValueError(
                f"unknown parameter {name!r} for scenario "
                f"{scenario_cls.name!r}; known: "
                f"{', '.join(scenario_cls.param_names())}"
            )
        try:
            lo, hi = bounds  # type: ignore[misc]
            lo, hi = float(lo), float(hi)
        except (TypeError, ValueError):
            raise ValueError(
                f"over[{name!r}] must be a (lo, hi) pair or an AxisSpec, "
                f"got {bounds!r}"
            ) from None
        plo, phi = getattr(entry, "lo", None), getattr(entry, "hi", None)
        if (plo is not None and lo < plo) or (phi is not None and hi > phi):
            raise ValueError(
                f"over[{name!r}] = ({lo:g}, {hi:g}) exceeds the declared "
                f"range [{plo}, {phi}] of scenario {scenario_cls.name!r}"
            )
        integer = getattr(entry, "type", float) is int
        log = (not integer) and lo > 0 and hi / lo >= _LOG_RATIO
        axes.append(AxisSpec(name, lo, hi, integer=integer, log=log))
    return tuple(axes)


def run_optimize(
    scenario: object,
    *,
    minimize: str | None = None,
    maximize: str | None = None,
    knee: str | None = None,
    over: Mapping[str, object] | None = None,
    subject_to: object = None,
    role: str = "analytic",
    warm_start: bool = False,
    width: int = 4,
    xtol: float | None = None,
    max_solves: int = 48,
    grid: int = 9,
    rounds: int = 3,
) -> OptResult:
    """Answer one inverse query over a bound scenario.

    Exactly one of ``minimize=``/``maximize=``/``knee=`` names the
    objective: a solved column (``R``, ``X`` ...) or -- for
    inverse-capacity queries under ``subject_to`` constraints -- one of
    the searched parameters themselves.  ``over`` gives the search box,
    ``{param: (lo, hi)}``.  Every optimizer iteration is one batched
    solve; ``max_solves`` caps them.
    """
    cls = type(scenario)
    chosen = [
        (m, v)
        for m, v in (("minimize", minimize), ("maximize", maximize), ("knee", knee))
        if v is not None
    ]
    if len(chosen) != 1:
        raise ValueError("pass exactly one of minimize=, maximize=, knee=")
    mode, objective = chosen[0]
    if not isinstance(objective, str) or not objective:
        raise TypeError(f"{mode}= must name a column or parameter, got {objective!r}")
    if not over:
        raise ValueError("over= is required: a mapping {param: (lo, hi)}")
    axes = build_axes(cls, role, over)
    constraints = parse_constraints(subject_to)
    obj = BatchObjective(scenario, role, axes, warm_start=warm_start)
    hints = dict(getattr(obj.backend, "hints", {}) or {})
    tel = obs.active()
    sign = -1.0 if mode == "maximize" else 1.0

    def on_step(info: dict) -> None:
        if tel is not None:
            obs.observe_opt_step(
                tel, scenario=cls.name, mode=mode, objective=objective, **info
            )

    def extract(values: Mapping[str, float], column: str) -> float:
        if column not in values:
            known = ", ".join(sorted(values))
            raise KeyError(
                f"no solved column {column!r} for scenario {cls.name!r} "
                f"({role} backend); available: {known}"
            )
        return float(values[column])

    def is_feasible(values: Mapping[str, float] | None) -> bool:
        return values is not None and all(c.ok(values) for c in constraints)

    def score(values: Mapping[str, float] | None) -> float:
        if not is_feasible(values):
            return math.inf
        return sign * extract(values, objective)

    def finish(
        best_cand: Mapping[str, float] | None,
        method: str,
        steps: int,
        converged: bool,
        trajectory: Sequence[float],
        extra_meta: Mapping[str, object] | None = None,
    ) -> OptResult:
        if best_cand is None:
            best_params: dict = {}
            best_values: dict = {}
            best = math.inf if sign > 0 else -math.inf
            converged = False
        else:
            best_values = obj.values([best_cand])[0] or {}
            best_params = obj.params_for(best_cand)
            if objective in best_params and objective not in best_values:
                best = float(best_params[objective])  # type: ignore[arg-type]
            else:
                best = extract(best_values, objective)
        result = OptResult(
            scenario=cls.name,
            backend=role,
            evaluator=obj.backend.evaluator,
            mode=mode,
            objective=objective,
            method=method,
            over={ax.name: (ax.lo, ax.hi) for ax in axes},
            constraints=tuple(c.text for c in constraints),
            best_params=best_params,
            best_values=best_values,
            best=best,
            trajectory=tuple(trajectory),
            solves=obj.solves,
            points=obj.points,
            steps=steps,
            converged=converged,
            meta={
                "warm_start": obj.warm_start,
                "axes": {
                    ax.name: {"integer": ax.integer, "log": ax.log}
                    for ax in axes
                },
                **dict(extra_meta or {}),
            },
        )
        if tel is not None:
            obs.observe_opt_query(
                tel, cls.name, mode, method, obj.solves, obj.points, converged
            )
        return result

    axis_names = {ax.name for ax in axes}

    # -- knee queries ----------------------------------------------------
    if mode == "knee":
        if len(axes) != 1:
            raise ValueError("knee= queries search exactly one axis")
        if constraints:
            raise ValueError("knee= queries take no subject_to constraints")
        axis = axes[0]

        def curve(xs: Sequence[float]) -> list[float]:
            return [
                extract(v, objective) if v is not None else math.inf
                for v in obj.scalar_values(axis, xs)
            ]

        res = find_knee(curve, axis, grid=grid, rounds=rounds, on_step=on_step)
        cand = None if res.x is None else {axis.name: res.x}
        return finish(
            cand, "knee", res.steps, res.converged, res.history,
            {"trajectory_is": "knee-estimate per round"},
        )

    # -- param-objective inverse queries ---------------------------------
    if objective in axis_names:
        if len(axes) != 1:
            raise ValueError(
                f"param-objective queries ({mode}={objective!r}) search "
                "exactly that one axis"
            )
        if not constraints:
            raise ValueError(
                f"{mode}={objective!r} without subject_to= is just the box "
                "edge; add a constraint (e.g. subject_to='R <= 1000')"
            )
        axis = axes[0]

        def predicate(xs: Sequence[float]) -> list[bool]:
            return [is_feasible(v) for v in obj.scalar_values(axis, xs)]

        want = "largest_true" if mode == "maximize" else "smallest_true"
        res = bisect_boundary(
            predicate, axis, want=want, width=width, xtol=xtol,
            max_steps=max_solves, on_step=on_step,
        )
        cand = None if res.x is None else {axis.name: res.x}
        return finish(
            cand, "bisect", res.steps, res.converged, res.history,
            {"bracket": res.bracket},
        )

    # -- column objectives -----------------------------------------------
    if len(axes) == 1:
        axis = axes[0]
        hint = hints.get(objective, {}).get(axis.name)
        if hint in ("increasing", "decreasing"):
            if constraints:
                # Optimum sits where the monotone objective meets the
                # feasibility boundary.
                score_increasing = (hint == "increasing") == (sign > 0)
                want = "smallest_true" if score_increasing else "largest_true"

                def predicate(xs: Sequence[float]) -> list[bool]:
                    return [is_feasible(v) for v in obj.scalar_values(axis, xs)]

                res = bisect_boundary(
                    predicate, axis, want=want, width=width, xtol=xtol,
                    max_steps=max_solves, on_step=on_step,
                )
                cand = None if res.x is None else {axis.name: res.x}
                traj = ()
                if cand is not None:
                    traj = (sign * score(obj.values([cand])[0]),)
                return finish(
                    cand, "bisect", res.steps, res.converged, traj,
                    {"hint": hint, "bracket": res.bracket},
                )
            # No constraints: the optimum is a box endpoint -- one
            # batched solve of both ends settles it (and double-checks
            # the declared hint direction for free).
            ends = [axis.snap(axis.lo), axis.snap(axis.hi)]
            vals = obj.scalar_values(axis, ends)
            scores = [score(v) for v in vals]
            if not any(math.isfinite(s) for s in scores):
                return finish(None, "boundary", 1, False, ())
            best_i = min(range(len(ends)), key=lambda i: scores[i])
            return finish(
                {axis.name: ends[best_i]}, "boundary", 1, True,
                (sign * scores[best_i],), {"hint": hint},
            )
        if hint == "unimodal" and mode == "maximize":
            # Single interior peak: golden-section on the negated column.
            def f(xs: Sequence[float]) -> list[float]:
                return [score(v) for v in obj.scalar_values(axis, xs)]

            res = golden_min(
                f, axis, xtol=xtol, max_steps=max_solves, on_step=on_step
            )
            cand = None if res.x is None else {axis.name: res.x}
            traj = tuple(sign * h for h in res.history)
            return finish(
                cand, "golden", res.steps, res.converged, traj,
                {"hint": hint, "bracket": res.bracket},
            )
        if hint == "unimodal" and not constraints:
            # Minimising a peaked column: the min is at an endpoint.
            ends = [axis.snap(axis.lo), axis.snap(axis.hi)]
            vals = obj.scalar_values(axis, ends)
            scores = [score(v) for v in vals]
            if not any(math.isfinite(s) for s in scores):
                return finish(None, "boundary", 1, False, ())
            best_i = min(range(len(ends)), key=lambda i: scores[i])
            return finish(
                {axis.name: ends[best_i]}, "boundary", 1, True,
                (sign * scores[best_i],), {"hint": hint},
            )

    # -- the general case: batched pattern search ------------------------
    def f_multi(cands: Sequence[Mapping[str, float]]) -> list[float]:
        return [score(v) for v in obj.values(cands)]

    res = pattern_search(
        f_multi, axes, xtol=xtol, max_steps=max_solves, on_step=on_step
    )
    traj = tuple(sign * h for h in res.history)
    return finish(res.x, "descent", res.steps, res.converged, traj)
