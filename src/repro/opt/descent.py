"""Batched pattern search over multi-axis box-constrained spaces.

Compass-style coordinate descent: from the incumbent, poll ``+step`` and
``-step`` along every axis *in one batched solve*, move to the best
improving candidate, and halve the steps when no poll improves.  No
gradients, no per-axis serialization -- the whole neighbourhood is one
candidate list, which is exactly the shape the batch kernels want.

Integer axes keep their step on the lattice (never below 1) and are
marked exhausted once a unit step stops helping; continuous axes stop at
``xtol``.  Infeasible candidates (constraint violations, solver
rejections) surface as ``inf`` objectives and simply lose the poll.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.opt.space import AxisSpec

__all__ = ["DescentResult", "pattern_search"]


@dataclass(frozen=True)
class DescentResult:
    """Outcome of one pattern search."""

    x: Mapping[str, float] | None
    fx: float | None
    steps: int
    converged: bool
    history: tuple[float, ...]


def _initial_steps(axes: Sequence[AxisSpec]) -> dict[str, float]:
    steps: dict[str, float] = {}
    for ax in axes:
        span = ax.hi - ax.lo
        step = span / 4.0
        if ax.integer:
            step = max(1.0, round(step))
        steps[ax.name] = step
    return steps


def pattern_search(
    evaluate: Callable[[Sequence[Mapping[str, float]]], Sequence[float]],
    axes: Sequence[AxisSpec],
    *,
    start: Mapping[str, float] | None = None,
    presample: int = 3,
    xtol: float | None = None,
    max_steps: int = 40,
    on_step: Callable[[dict], None] | None = None,
) -> DescentResult:
    """Minimise ``evaluate`` over the box spanned by ``axes``.

    ``evaluate`` receives a list of ``{axis: value}`` candidates and
    returns one objective per candidate (``inf`` = infeasible).

    ``presample`` > 0 opens with one batched coarse factorial sample
    (``presample`` levels per axis, capped at 64 points) and starts the
    descent from its best feasible point -- a cheap hedge against
    landing the incumbent in a bad basin; ``start`` overrides it.
    Pattern search is still a *local* method: on multimodal surfaces it
    refines the best sampled basin rather than guaranteeing the global
    optimum.
    """
    if not axes:
        raise ValueError("pattern_search needs at least one axis")
    xtol = 1e-4 if xtol is None else float(xtol)
    by_name = {ax.name: ax for ax in axes}
    history: list[float] = []
    steps_taken = 0

    def snap_point(point: Mapping[str, float]) -> dict[str, float]:
        return {name: by_name[name].snap(v) for name, v in point.items()}

    if start is not None:
        current = snap_point(start)
        current_f = list(evaluate([current]))[0]
        steps_taken += 1
    else:
        levels = [ax.grid(max(2, presample)) for ax in axes]
        candidates: list[dict[str, float]] = [{}]
        for ax, vals in zip(axes, levels):
            candidates = [
                {**c, ax.name: v} for c in candidates for v in vals
            ]
            if len(candidates) > 64:
                break
        candidates = candidates[:64]
        # Every candidate must bind all axes (the cap can cut mid-product).
        candidates = [c for c in candidates if len(c) == len(axes)]
        if not candidates:
            candidates = [
                {ax.name: ax.snap((ax.lo + ax.hi) / 2.0) for ax in axes}
            ]
        fs = list(evaluate(candidates))
        steps_taken += 1
        best_i = min(range(len(fs)), key=lambda i: fs[i])
        current, current_f = dict(candidates[best_i]), fs[best_i]
    history.append(current_f)

    steps = _initial_steps(axes)
    converged = False
    while steps_taken < max_steps:
        live = {
            name: s
            for name, s in steps.items()
            if (by_name[name].integer and s >= 1.0)
            or (not by_name[name].integer
                and s > xtol * max(1.0, by_name[name].hi - by_name[name].lo))
        }
        if not live:
            converged = True
            break
        poll: list[dict[str, float]] = []
        for name, s in live.items():
            for direction in (+1.0, -1.0):
                cand = dict(current)
                cand[name] = by_name[name].snap(current[name] + direction * s)
                if cand != current and cand not in poll:
                    poll.append(cand)
        if not poll:
            converged = True
            break
        fs = list(evaluate(poll))
        steps_taken += 1
        best_i = min(range(len(fs)), key=lambda i: fs[i])
        if fs[best_i] < current_f:
            current, current_f = dict(poll[best_i]), fs[best_i]
        else:
            for name in live:
                s = steps[name] / 2.0
                if by_name[name].integer:
                    s = math.floor(s)
                steps[name] = s
        history.append(current_f)
        if on_step is not None:
            on_step(
                {
                    "kind": "descent",
                    "step": steps_taken,
                    "incumbent": current_f,
                    "steps": dict(steps),
                }
            )

    if not math.isfinite(current_f):
        return DescentResult(None, None, steps_taken, False, tuple(history))
    return DescentResult(
        dict(current), float(current_f), steps_taken, converged, tuple(history)
    )
