"""The bridge from search algorithms to scenario backends.

:class:`BatchObjective` turns a bound :class:`repro.api.Scenario` plus a
set of search axes into the one callback the algorithms in
:mod:`repro.opt.scalar` / :mod:`repro.opt.descent` need: *candidates in,
solved values out*, with every uncached candidate list dispatched as a
single vectorized batch solve (the same ``Backend.batch`` kernels the
sweep runner rides).  It also owns the three accounting facts the
optimizer reports -- solver dispatches, solved points, and the memo that
makes re-offered candidates free -- and, when ``warm_start=True``, seeds
each new candidate's solve from the converged state of its nearest
already-solved neighbour via the backend's ``warm`` companion (PR-7's
``x0`` threading).

Points the solver rejects (saturated networks raise ``ValueError``)
evaluate to ``None``; the optimizer treats them as infeasible rather
than aborting the search.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.opt.space import AxisSpec

__all__ = ["BatchObjective"]

#: Exceptions that mean "this point is outside the model's validity
#: domain", not "the optimizer is broken".
_REJECTIONS = (ValueError, FloatingPointError, ZeroDivisionError, OverflowError)


class BatchObjective:
    """Memoized batched evaluation of scenario points along search axes.

    Parameters
    ----------
    scenario:
        A bound scenario instance; its given parameters (plus backend
        defaults) form the base point, the axes override it.
    role:
        Backend role to solve with (``"analytic"`` unless asked
        otherwise -- the optimizer needs cheap, deterministic solves).
    axes:
        The :class:`~repro.opt.space.AxisSpec` search axes.  Every axis
        must name a schema parameter the backend consumes; every
        *required* parameter outside the axes must already be bound.
    warm_start:
        Seed each solve from the nearest evaluated neighbour's
        converged state, when the backend has a ``warm`` companion.
    """

    def __init__(
        self,
        scenario: object,
        role: str,
        axes: Sequence[AxisSpec],
        *,
        warm_start: bool = False,
    ) -> None:
        from repro.api.scenario import Param, Scenario

        if not isinstance(scenario, Scenario):
            raise TypeError(
                f"BatchObjective needs a Scenario instance, got "
                f"{type(scenario).__name__}"
            )
        cls = type(scenario)
        self.scenario = scenario
        self.role = role
        self.backend = cls.backend(role)
        self.axes = tuple(axes)
        if not self.axes:
            raise ValueError("BatchObjective needs at least one axis")

        axis_names = [ax.name for ax in self.axes]
        if len(set(axis_names)) != len(axis_names):
            raise ValueError(f"duplicate search axes: {axis_names}")
        for name in axis_names:
            if cls.find_param(name) is None:
                raise ValueError(
                    f"unknown parameter {name!r} for scenario {cls.name!r}; "
                    f"known: {', '.join(cls.param_names())}"
                )
            if not cls.backend_accepts(self.backend, name):
                raise ValueError(
                    f"parameter {name!r} is not used by the {role!r} backend "
                    f"of scenario {cls.name!r}"
                )

        base: dict[str, object] = dict(self.backend.defaults)
        for key, value in scenario.given.items():
            if cls.backend_accepts(self.backend, key):
                base[key] = value
        for name in axis_names:
            base.pop(name, None)  # axes shadow bound values, like Study
        missing = [
            p.name
            for p in cls.schema
            if isinstance(p, Param)
            and p.required
            and cls.backend_accepts(self.backend, p.name)
            and p.name not in base
            and p.name not in axis_names
        ]
        if missing:
            raise ValueError(
                f"scenario {cls.name!r} {role} backend is missing required "
                f"parameter(s): {', '.join(missing)}"
            )
        self.base = base
        self.warm_start = bool(warm_start) and self.backend.warm is not None

        #: axis-value key -> solved values dict (None = rejected point).
        self._memo: dict[tuple, dict[str, float] | None] = {}
        self._states: dict[tuple, object] = {}
        self.solves = 0
        self.points = 0

    # -- candidate plumbing ---------------------------------------------

    def key_for(self, candidate: Mapping[str, float]) -> tuple:
        return tuple(ax.value(candidate[ax.name]) for ax in self.axes)

    def params_for(self, candidate: Mapping[str, float]) -> dict[str, object]:
        params = dict(self.base)
        for ax in self.axes:
            params[ax.name] = ax.value(candidate[ax.name])
        return params

    @staticmethod
    def _split(raw: Mapping[str, object]) -> dict[str, float]:
        return {k: v for k, v in raw.items() if not str(k).startswith("_")}

    def _nearest_state(self, key: tuple) -> object | None:
        if not self._states:
            return None
        spans = [max(abs(ax.span()), 1e-12) for ax in self.axes]

        def dist(other: tuple) -> float:
            total = 0.0
            for ax, span, a, b in zip(self.axes, spans, key, other):
                ta = math.log(a) if ax.log and a > 0 else float(a)
                tb = math.log(b) if ax.log and b > 0 else float(b)
                total += ((ta - tb) / span) ** 2
            return total

        return self._states[min(self._states, key=dist)]

    # -- solving ---------------------------------------------------------

    def _dispatch(
        self, keys: list[tuple], params_list: list[dict[str, object]]
    ) -> None:
        """Solve ``params_list`` (one batch call when possible) into the
        memo; rejected points memoize as None."""
        if self.warm_start:
            seeds = [self._nearest_state(key) for key in keys]
            try:
                values_list, states_list = self.backend.warm(params_list, seeds)
            except _REJECTIONS:
                pass  # fall through to the scalar rescue loop
            else:
                self.solves += 1
                self.points += len(params_list)
                for key, raw, state in zip(keys, values_list, states_list):
                    self._memo[key] = self._split(raw)
                    if state is not None:
                        self._states[key] = state
                return
        elif self.backend.batch is not None and len(params_list) > 1:
            try:
                raws = self.backend.batch(params_list)
            except _REJECTIONS:
                pass  # one bad point poisons a batch; rescue per point
            else:
                self.solves += 1
                self.points += len(params_list)
                for key, raw in zip(keys, raws):
                    self._memo[key] = self._split(raw)
                return
        for key, params in zip(keys, params_list):
            self.solves += 1
            self.points += 1
            try:
                self._memo[key] = self._split(self.backend.func(params))
            except _REJECTIONS:
                self._memo[key] = None

    def values(
        self, candidates: Sequence[Mapping[str, float]]
    ) -> list[dict[str, float] | None]:
        """Solved values for each candidate (memoized; one batch solve
        for all uncached candidates)."""
        keys = [self.key_for(c) for c in candidates]
        fresh_keys: list[tuple] = []
        fresh_params: list[dict[str, object]] = []
        seen = set()
        for key, cand in zip(keys, candidates):
            if key not in self._memo and key not in seen:
                seen.add(key)
                fresh_keys.append(key)
                fresh_params.append(self.params_for(cand))
        if fresh_keys:
            self._dispatch(fresh_keys, fresh_params)
        return [self._memo[key] for key in keys]

    # -- views for the algorithms ----------------------------------------

    def scalar_values(
        self, axis: AxisSpec, xs: Sequence[float]
    ) -> list[dict[str, float] | None]:
        return self.values([{axis.name: x} for x in xs])

    def evaluated(self) -> dict[tuple, dict[str, float] | None]:
        """The full memo (axis-value key -> values), for grid extraction."""
        return dict(self._memo)
