"""Contention-free LogP-style baseline model.

LogP (Culler et al., PPoPP 1993) charges each message a fixed overhead and
latency but makes *no* prediction about contention.  Applied naively to
the LoPC machine model (interrupt-driven active messages, blocking
request/reply cycles), a LogP-style analysis predicts a cycle of::

    R0 = W + St + So + St + So  =  W + 2*St + 2*So

This is exactly the lower bound of the paper's Eq. 5.12 and the
"contention free model" of Section 5.3, whose error the paper quantifies:
it under-predicts the all-to-all run time by up to 37 % at ``W = 0`` and
still ~13 % at ``W = 1024`` because its absolute error stays ~ one handler
time while the cycle grows.

For the client-server workpile (Figure 6-2's dotted lines) the LogP view
yields two *optimistic* throughput bounds::

    X <= Ps / So                      (server saturation)
    X <= Pc / (W + 2*St + 2*So)       (clients never wait at the server)

Both are provided here so the evaluation code has a single place to get
"what LogP would say".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.results import ModelSolution

__all__ = ["LogPModel"]


@dataclass(frozen=True)
class LogPModel:
    """The contention-free baseline the paper compares LoPC against.

    Parameters
    ----------
    machine:
        Architectural parameters (``L = St``, ``o = So``, ``P``).
    """

    machine: MachineParams

    def cycle_time(self, work: float) -> float:
        """Contention-free compute/request cycle ``W + 2 St + 2 So``."""
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work!r}")
        return work + 2.0 * self.machine.latency + 2.0 * self.machine.handler_time

    def solve(self, algorithm: AlgorithmParams) -> ModelSolution:
        """Predict the cycle assuming zero contention everywhere.

        Utilisations are still reported (they follow from throughput by
        Little's result and do not require a contention model); queue
        lengths are the utilisations themselves (no waiting).
        """
        m = self.machine
        w = algorithm.work
        r = self.cycle_time(w)
        x = m.processors / r  # Eq. 5.1 applied to the contention-free cycle
        per_node = x / m.processors
        uq = per_node * m.handler_time
        uy = per_node * m.handler_time
        return ModelSolution(
            response_time=r,
            compute_residence=w,
            request_residence=m.handler_time,
            reply_residence=m.handler_time,
            throughput=x,
            request_queue=uq,
            reply_queue=uy,
            request_utilization=uq,
            reply_utilization=uy,
            work=w,
            latency=m.latency,
            handler_time=m.handler_time,
            meta={"model": "logp-contention-free"},
        )

    def solve_params(self, params: LoPCParams) -> ModelSolution:
        """Convenience overload taking a full :class:`LoPCParams`."""
        if params.machine != self.machine:
            raise ValueError(
                "params.machine does not match this model's machine; "
                "construct a LogPModel with the same MachineParams"
            )
        return self.solve(params.algorithm)

    def runtime(self, algorithm: AlgorithmParams) -> float:
        """Total predicted runtime ``n * R0``."""
        return algorithm.requests * self.cycle_time(algorithm.work)

    # ------------------------------------------------------------------
    # Workpile throughput bounds (Figure 6-2 dotted lines)
    # ------------------------------------------------------------------
    def workpile_server_bound(self, servers: int) -> float:
        """Server-saturation throughput bound ``X <= Ps / So``."""
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers!r}")
        return servers / self.machine.handler_time

    def workpile_client_bound(self, clients: int, work: float) -> float:
        """No-contention client throughput bound ``X <= Pc / (W+2St+2So)``."""
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients!r}")
        return clients / self.cycle_time(work)

    def workpile_bound(self, servers: int, work: float) -> float:
        """The binding LogP bound for a ``(Ps, Pc = P - Ps)`` split."""
        clients = self.machine.processors - servers
        if clients < 1:
            raise ValueError(
                f"split leaves no clients: P={self.machine.processors}, "
                f"servers={servers}"
            )
        return min(
            self.workpile_server_bound(servers),
            self.workpile_client_bound(clients, work),
        )
