"""Protocol-processor (shared-memory) variant of the LoPC model.

Section 5.1 ("Modeling Shared Memory"): a coherent shared-memory machine
can be viewed as a message-passing machine with dedicated *protocol
processor* hardware that services requests and replies.  Handlers then
never interrupt the computation thread -- each node gains one degree of
parallelism -- so the thread residence is simply ``Rw = W``.  Everything
else is unchanged: request handlers still contend with each other and
reply handlers still queue behind request handlers *at the protocol
processor*.

This module wraps :class:`repro.core.alltoall.AllToAllModel` and
:class:`repro.core.general.GeneralLoPCModel` with ``protocol_processor=
True`` and adds the controller-occupancy sweep used by the Holt-style
shared-memory study (``examples/shared_memory_study.py``): Holt et al.
found memory-controller *occupancy* (our ``So``) dominates latency; the
sweep reproduces that qualitative result with LoPC.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.core.alltoall import AllToAllModel
from repro.core.params import AlgorithmParams, MachineParams
from repro.core.results import ModelSolution

__all__ = ["SharedMemoryModel", "occupancy_sweep"]


@dataclass(frozen=True)
class SharedMemoryModel:
    """All-to-all LoPC model of a shared-memory node with a protocol processor.

    The computation thread is never interrupted (``Rw = W``); contention
    appears only as queueing at the protocol processor (``Rq``, ``Ry``).
    """

    machine: MachineParams
    damping: float = 0.5
    tol: float = 1e-12
    max_iter: int = 50_000

    def _delegate(self) -> AllToAllModel:
        return AllToAllModel(
            machine=self.machine,
            protocol_processor=True,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )

    def solve(self, algorithm: AlgorithmParams) -> ModelSolution:
        """Solve the shared-memory AMVA system (``Rw = W``)."""
        return self._delegate().solve(algorithm)

    def solve_work(self, work: float) -> ModelSolution:
        """Shorthand: solve for a bare ``W`` value."""
        return self.solve(AlgorithmParams(work=work))

    def message_passing_counterpart(self) -> AllToAllModel:
        """The same machine without the protocol processor, for contrast."""
        return AllToAllModel(
            machine=self.machine,
            protocol_processor=False,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )


def occupancy_sweep(
    machine: MachineParams,
    work: float,
    occupancies: Sequence[float],
) -> list[tuple[float, ModelSolution, ModelSolution]]:
    """Sweep controller occupancy ``So`` (the Holt et al. study, via LoPC).

    For each occupancy, solve both the shared-memory model and the
    message-passing model on the same machine.  Returns
    ``(occupancy, shared_memory_solution, message_passing_solution)``
    triples.  The shared-memory run time stays lower (no thread
    interruption) but both degrade super-linearly with occupancy once the
    protocol processor saturates -- the paper's argument that occupancy,
    not latency, dominates.
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    out: list[tuple[float, ModelSolution, ModelSolution]] = []
    for so in occupancies:
        m = replace(machine, handler_time=so)
        shared = SharedMemoryModel(m).solve_work(work)
        message = AllToAllModel(m).solve_work(work)
        out.append((so, shared, message))
    return out
