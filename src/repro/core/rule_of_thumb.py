"""The recursion ``F[R]`` and the rule-of-thumb bounds (paper Section 5.3).

Instead of numerically iterating the full AMVA system, the paper
eliminates the inner unknowns of the homogeneous all-to-all model
analytically: given a candidate ``R``, the per-node arrival rate is
``1/R`` and the handler equations (5.9)/(5.10) become a *linear* system in
``(Rq, Ry)``.  Substituting the solution back into Eq. 4.1 defines a
scalar recursion ``F[R]`` (Eq. 5.11) whose fixed point ``R*`` is the LoPC
solution.

Writing ``u = So/R`` and ``a = (C^2 - 1)/2``, the elimination gives::

    Ry (1 - u - u^2) = So (1 + a u + a u^2)
    Rq               = Ry (1 + u) + a So u
    Rw               = (W + u Rq) / (1 - u)
    F[R]             = Rw + 2 St + Rq + Ry

(for ``C^2 = 1`` the ``a`` terms vanish and this is the quartic the paper
mentions; for ``C^2 = 0``, ``a = -1/2`` reproduces the printed Eq. 5.11).

Properties proved/used in the paper and verified in our test suite:

* ``F`` is continuous and strictly decreasing for ``R`` above the
  contention-free cycle, and ``F[R] -> W + 2 St + 2 So`` as ``R -> oo``;
  hence a unique stable fixed point ``R* > W + 2 St + 2 So``.
* For ``C^2 = 0``: ``F[W + 2 St + 3.46 So] < W + 2 St + 3.46 So``, so::

      W + 2 St + 2 So  <  R*  <=  W + 2 St + 3.46 So          (Eq. 5.12)

  -- total contention is bounded by ~1.46 handler times, and to first
  approximation equals *one extra handler* (the rule of thumb).
* The technique generalises to arbitrary ``C^2``; only the constant
  changes.  :func:`upper_bound_constant` computes the tight constant
  ``kappa(C^2)`` as the worst-case fixed point at ``W = St = 0``.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.params import MachineParams
from repro.core.solver import solve_scalar_fixed_point

__all__ = [
    "contention_bounds",
    "fixed_point_recursion",
    "rule_of_thumb_response",
    "solve_recursion",
    "upper_bound_constant",
]

#: The constant the paper reports for C^2 = 0 in Eq. 5.12.
PAPER_UPPER_CONSTANT_CV2_0 = 3.46


def fixed_point_recursion(
    response: float,
    work: float,
    latency: float,
    handler_time: float,
    cv2: float = 0.0,
) -> float:
    """Evaluate ``F[R]`` (Eq. 5.11, generalised to arbitrary ``C^2``).

    Parameters
    ----------
    response:
        Candidate total response time ``R``; must exceed ``handler_time``
        (utilisation ``So/R`` must be < 1) and in practice should be at or
        above the contention-free cycle.
    work, latency, handler_time, cv2:
        ``W``, ``St``, ``So`` and ``C^2``.

    Returns
    -------
    ``F[R] = Rw(R) + 2 St + Rq(R) + Ry(R)``.
    """
    if handler_time <= 0:
        raise ValueError(f"handler_time must be > 0, got {handler_time!r}")
    if work < 0 or latency < 0 or cv2 < 0:
        raise ValueError(
            f"work, latency, cv2 must be >= 0, got {(work, latency, cv2)!r}"
        )
    so = handler_time
    if response <= so:
        raise ValueError(
            f"response {response!r} must exceed handler_time {so!r} "
            "(otherwise handler utilisation >= 1)"
        )
    u = so / response
    a = 0.5 * (cv2 - 1.0)
    denom = 1.0 - u - u * u
    if denom <= 0.0:
        raise ValueError(
            f"response {response!r} too small: handler queues diverge "
            f"(1 - u - u^2 = {denom!r} <= 0)"
        )
    ry = so * (1.0 + a * u + a * u * u) / denom
    rq = ry * (1.0 + u) + a * so * u
    rw = (work + u * rq) / (1.0 - u)
    return rw + 2.0 * latency + rq + ry


@lru_cache(maxsize=256)
def upper_bound_constant(cv2: float = 0.0) -> float:
    """Tight upper-bound constant ``kappa(C^2)`` for Eq. 5.12.

    ``R* <= W + 2 St + kappa * So`` for all ``W, St >= 0``.  The supremum
    of ``(R* - W - 2 St)/So`` is approached at ``W = St = 0`` (contention
    falls as work or latency grows because handler utilisation drops), so
    ``kappa`` is the fixed point of ``F`` with ``W = St = 0, So = 1``.

    For ``C^2 = 0`` this evaluates to ~3.457, matching the paper's 3.46.
    """
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2!r}")
    return solve_recursion(work=0.0, latency=0.0, handler_time=1.0, cv2=cv2)


def solve_recursion(
    work: float,
    latency: float,
    handler_time: float,
    cv2: float = 0.0,
    tol: float = 1e-12,
) -> float:
    """Fixed point ``R*`` of ``F[R]`` by Brent bracketing.

    The bracket starts at the contention-free cycle (where ``F >= R``) and
    a generous multiple of the handler time above it (where ``F < R``
    because ``F`` decreases towards the contention-free cycle).
    """
    lower = work + 2.0 * latency + 2.0 * handler_time
    # F is decreasing with limit `lower`; any sufficiently large upper end
    # works.  6*So covers every C^2 <= ~4; solve_scalar_fixed_point expands
    # the bracket automatically beyond that.
    upper = lower + 6.0 * handler_time * max(1.0, cv2)
    eps = 1e-9 * max(1.0, lower)
    return solve_scalar_fixed_point(
        lambda r: fixed_point_recursion(r, work, latency, handler_time, cv2),
        lower + eps,
        upper,
        tol=tol,
    )


def contention_bounds(
    machine: MachineParams, work: float
) -> tuple[float, float]:
    """The Eq. 5.12 bracket ``(W + 2St + 2So, W + 2St + kappa(C^2) So)``.

    The lower bound is the contention-free cycle; the upper bound uses the
    tight constant from :func:`upper_bound_constant` (3.46 for ``C^2 = 0``,
    as printed in the paper).
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    base = work + 2.0 * machine.latency
    lower = base + 2.0 * machine.handler_time
    upper = base + upper_bound_constant(machine.handler_cv2) * machine.handler_time
    return lower, upper


def rule_of_thumb_response(machine: MachineParams, work: float) -> float:
    """The paper's rule of thumb: contention ~= one extra handler.

    ``R ~= W + 2 St + 3 So`` -- a zero-computation estimate sitting inside
    the Eq. 5.12 bracket, accurate enough for back-of-envelope algorithm
    comparison in the homogeneous case.
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    return work + 2.0 * machine.latency + 3.0 * machine.handler_time
