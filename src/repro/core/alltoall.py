"""Homogeneous all-to-all LoPC model (paper Sections 5.1-5.2).

Machine model: ``P`` nodes, one computation thread each.  A thread works
``W`` cycles on average, then issues a blocking request to a uniformly
random *other* node and spins until the reply handler unblocks it.
Requests and replies each take ``St`` in the wire and ``So`` at the
destination CPU; handlers are atomic and FIFO-queued.

The model is the following AMVA system (paper equation numbers)::

    X  = P / R                                   (5.1)
    V  = 1 / P                                   (5.2)
    Qk = V X Rk          for k in {q, y}         (5.3)
    Uk = V X So                                  (5.4)
    Rq = So (1 + Qq + Qy + (C2-1)/2 (Uq + Uy))   (5.5) / (5.9)
    Ry = So (1 + Qq       + (C2-1)/2  Uq      )  (5.6) / (5.10)
    Rw = (W + So Qq) / (1 - Uq)                  (5.7, BKT)
    R  = Rw + 2 St + Rq + Ry                     (4.1)

Notes
-----
* ``V = 1/P`` is exact for uniform-random destinations: each of ``P``
  threads spreads its requests over the ``P - 1`` other nodes, so node
  ``k`` receives ``(P-1) * (X/P) / (P-1) = X/P``.
* The ``C^2`` corrections come from residual-life arithmetic
  (:mod:`repro.mva.residual`); they vanish at ``C^2 = 1`` (exponential).
* ``Rw`` has *no* ``C^2`` correction: the thread resumes exactly at a
  handler-completion epoch and therefore observes full service times of
  any request handlers still queued (paper Section 5.2).
* The shared-memory (protocol-processor) variant replaces (5.7) by
  ``Rw = W``: handlers run on dedicated hardware and never interrupt the
  computation thread, but still contend with each other.

The same fixed point can be reached through the scalar recursion ``F[R]``
of Eq. 5.11 (see :mod:`repro.core.rule_of_thumb`); the two solution paths
agree to solver tolerance and are cross-checked in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.results import ModelSolution
from repro.core.solver import solve_fixed_point, solve_fixed_point_batch
from repro.mva.bkt import bkt_residence_time
from repro.mva.residual import residual_correction

__all__ = ["AllToAllModel", "solve_batch", "solve_batch_arrays"]


@dataclass(frozen=True)
class AllToAllModel:
    """LoPC model of homogeneous all-to-all blocking request/reply traffic.

    Parameters
    ----------
    machine:
        Architectural parameters ``(St, So, P, C^2)``.
    protocol_processor:
        If True, model a shared-memory style node where handlers run on a
        dedicated protocol processor (``Rw = W``); request and reply
        handlers still queue against each other for the protocol
        processor (paper Section 5.1, "Modeling Shared Memory").
    damping, tol, max_iter:
        Fixed-point solver controls (see :func:`repro.core.solver.solve_fixed_point`).
    """

    machine: MachineParams
    protocol_processor: bool = False
    damping: float = 0.5
    tol: float = 1e-12
    max_iter: int = 50_000

    def __post_init__(self) -> None:
        if self.machine.gap != 0.0:
            raise ValueError(
                "LoPC assumes balanced network bandwidth (gap g = 0); "
                f"got gap={self.machine.gap!r}"
            )

    # ------------------------------------------------------------------
    def _map(self, work: float) -> "np.ufunc":
        """The AMVA update map on the state vector ``[Rw, Rq, Ry]``."""
        m = self.machine
        so = m.handler_time
        st = m.latency
        cv2 = m.handler_cv2

        def update(state: np.ndarray) -> np.ndarray:
            rw, rq, ry = state
            r = rw + 2.0 * st + rq + ry  # Eq. 4.1
            lam = 1.0 / r  # per-node arrival rate V*X = (1/P)(P/R)
            uq = lam * so  # Eq. 5.4
            uy = lam * so
            qq = lam * rq  # Eq. 5.3
            qy = lam * ry
            new_rq = so * (
                1.0
                + qq
                + qy
                + residual_correction(uq, cv2)
                + residual_correction(uy, cv2)
            )  # Eq. 5.9
            new_ry = so * (1.0 + qq + residual_correction(uq, cv2))  # Eq. 5.10
            if self.protocol_processor:
                new_rw = work  # shared-memory variant
            else:
                new_rw = bkt_residence_time(work, so, qq, uq)  # Eq. 5.7
            return np.array([new_rw, new_rq, new_ry])

        return update

    def solve(
        self,
        algorithm: AlgorithmParams,
        x0: Sequence[float] | np.ndarray | None = None,
    ) -> ModelSolution:
        """Solve the AMVA system for the given algorithmic parameters.

        ``x0`` optionally warm-starts the fixed point from a
        ``[Rw, Rq, Ry]`` state (typically a neighbouring solution's
        residences); the solution reached is the same within ``tol``.
        """
        m = self.machine
        work = algorithm.work
        # Contention-free starting point: [W, So, So].
        initial = np.array([work, m.handler_time, m.handler_time])
        result = solve_fixed_point(
            self._map(work),
            initial,
            x0=x0,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        rw, rq, ry = result.value
        r = rw + 2.0 * m.latency + rq + ry
        lam = 1.0 / r
        return ModelSolution(
            response_time=r,
            compute_residence=rw,
            request_residence=rq,
            reply_residence=ry,
            throughput=m.processors / r,  # Eq. 5.1
            request_queue=lam * rq,
            reply_queue=lam * ry,
            request_utilization=lam * m.handler_time,
            reply_utilization=lam * m.handler_time,
            work=work,
            latency=m.latency,
            handler_time=m.handler_time,
            meta={
                "model": "lopc-alltoall",
                "protocol_processor": self.protocol_processor,
                "iterations": result.iterations,
                "residual": result.residual,
                "cv2": m.handler_cv2,
            },
        )

    def solve_work(self, work: float) -> ModelSolution:
        """Shorthand: solve for a bare ``W`` value."""
        return self.solve(AlgorithmParams(work=work))

    def solve_params(self, params: LoPCParams) -> ModelSolution:
        """Solve for a complete :class:`LoPCParams`."""
        if params.machine != self.machine:
            raise ValueError(
                "params.machine does not match this model's machine; "
                "construct an AllToAllModel with the same MachineParams"
            )
        return self.solve(params.algorithm)

    def runtime(self, algorithm: AlgorithmParams) -> float:
        """Total application runtime ``n * R`` including contention."""
        return algorithm.requests * self.solve(algorithm).response_time

    def contention_fraction(self, work: float) -> float:
        """Fraction of the cycle spent on contention (Figure 5-1)."""
        return self.solve_work(work).contention_fraction

    def solve_many(self, works: Sequence[float]) -> list[ModelSolution]:
        """Solve a grid of work values in one vectorized batch.

        Equivalent to ``[self.solve_work(w) for w in works]`` -- bit for
        bit, because the batched fixed point performs the same
        elementwise updates with per-point convergence masking -- but
        orders of magnitude faster on dense grids.
        """
        m = self.machine
        return solve_batch(
            [
                LoPCParams(machine=m, algorithm=AlgorithmParams(work=float(w)))
                for w in works
            ],
            protocol_processor=self.protocol_processor,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )


# ---------------------------------------------------------------------------
# Vectorized batch entry points
# ---------------------------------------------------------------------------
def solve_batch_arrays(
    works: Sequence[float] | np.ndarray,
    latencies: Sequence[float] | np.ndarray,
    handler_times: Sequence[float] | np.ndarray,
    cv2s: Sequence[float] | np.ndarray,
    *,
    x0: np.ndarray | None = None,
    stager: object | None = None,
    protocol_processor: bool = False,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 50_000,
) -> dict[str, np.ndarray]:
    """Solve many all-to-all points at once; returns stacked arrays.

    Inputs broadcast to a common ``(points,)`` shape: ``works`` (``W``),
    ``latencies`` (``St``), ``handler_times`` (``So``) and ``cv2s``
    (``C^2``) may each be a scalar or a vector.  The AMVA state
    ``[Rw, Rq, Ry]`` for *all* points advances through one masked
    :func:`repro.core.solver.solve_fixed_point_batch` iteration; each
    point freezes at its scalar solver's convergence iteration, so the
    returned values are bit-identical to per-point
    :meth:`AllToAllModel.solve` results.

    Returns a mapping with ``(points,)`` arrays: ``R``, ``Rw``, ``Rq``,
    ``Ry``, ``Qq``, ``Qy``, ``Uq``, ``Uy``, ``iterations`` and
    ``residual``.  (Throughput is ``P/R`` and depends on the per-point
    processor count, which the fixed point itself never uses -- callers
    holding ``P`` derive it.)

    A point whose iterates diverge to non-finite values (handler
    utilisation >= 1) raises
    :class:`~repro.core.solver.ConvergenceError` naming the point; the
    scalar path raises a ``ValueError`` from the BKT guard at the same
    parameters.

    ``x0`` optionally warm-starts points from a ``(points, 3)`` array of
    ``[Rw, Rq, Ry]`` states; rows with any non-finite entry
    (conventionally ``nan``) keep the cold contention-free start, so one
    call mixes seeded and cold points.  ``stager`` optionally stages
    point activation inside the solve (see
    :func:`repro.core.solver.solve_fixed_point_batch`).
    """
    w, st, so, cv2 = np.broadcast_arrays(
        np.asarray(works, dtype=float),
        np.asarray(latencies, dtype=float),
        np.asarray(handler_times, dtype=float),
        np.asarray(cv2s, dtype=float),
    )
    w, st, so, cv2 = (np.atleast_1d(a).ravel().copy() for a in (w, st, so, cv2))
    if np.any(w < 0):
        raise ValueError("work (W) must be >= 0")
    if np.any(st < 0):
        raise ValueError("latency (St) must be >= 0")
    if np.any(so <= 0):
        raise ValueError("handler_time (So) must be > 0")
    if np.any(cv2 < 0):
        raise ValueError("handler_cv2 (C^2) must be >= 0")

    def update(state: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rw, rq, ry = state[:, 0], state[:, 1], state[:, 2]
        so_r, cv2_r, w_r = so[rows], cv2[rows], w[rows]
        # Deliberately warning-free: divergent points produce inf/nan
        # here and are frozen as failures by the batch kernel.
        with np.errstate(all="ignore"):
            r = rw + 2.0 * st[rows] + rq + ry  # Eq. 4.1
            lam = 1.0 / r  # per-node arrival rate V*X = (1/P)(P/R)
            uq = lam * so_r  # Eq. 5.4
            qq = lam * rq  # Eq. 5.3
            qy = lam * ry
            rc = 0.5 * (cv2_r - 1.0) * uq  # residual correction, Uq == Uy
            new_rq = so_r * (1.0 + qq + qy + rc + rc)  # Eq. 5.9
            new_ry = so_r * (1.0 + qq + rc)  # Eq. 5.10
            if protocol_processor:
                new_rw = w_r  # shared-memory variant
            else:
                new_rw = (w_r + so_r * qq) / (1.0 - uq)  # BKT, Eq. 5.7
        return np.column_stack([new_rw, new_rq, new_ry])

    # Contention-free starting point per point: [W, So, So].
    initial = np.column_stack([w, so, so])
    result = solve_fixed_point_batch(
        update,
        initial,
        x0=x0,
        stager=stager,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
    )
    rw, rq, ry = result.value[:, 0], result.value[:, 1], result.value[:, 2]
    r = rw + 2.0 * st + rq + ry
    lam = 1.0 / r
    return {
        "R": r,
        "Rw": rw,
        "Rq": rq,
        "Ry": ry,
        "Qq": lam * rq,
        "Qy": lam * ry,
        "Uq": lam * so,
        "Uy": lam * so,
        "iterations": result.iterations,
        "residual": result.residual,
    }


def solve_batch(
    params: Sequence[LoPCParams],
    *,
    x0: np.ndarray | None = None,
    stager: object | None = None,
    protocol_processor: bool = False,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 50_000,
) -> list[ModelSolution]:
    """Solve a grid of :class:`LoPCParams` through the batch kernel.

    The machines may differ point to point (``St``, ``So``, ``C^2``,
    ``P``); each solution is bit-identical to
    ``AllToAllModel(p.machine).solve(p.algorithm)`` for the matching
    point, with ``meta["batched"] = True`` marking the provenance.
    ``x0`` and ``stager`` pass warm-start states / staged activation
    through to :func:`solve_batch_arrays`.
    """
    if len(params) == 0:
        return []
    for p in params:
        if p.machine.gap != 0.0:
            raise ValueError(
                "LoPC assumes balanced network bandwidth (gap g = 0); "
                f"got gap={p.machine.gap!r}"
            )
    arrays = solve_batch_arrays(
        [p.algorithm.work for p in params],
        [p.machine.latency for p in params],
        [p.machine.handler_time for p in params],
        [p.machine.handler_cv2 for p in params],
        x0=x0,
        stager=stager,
        protocol_processor=protocol_processor,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
    )
    solutions = []
    for i, p in enumerate(params):
        m = p.machine
        r = float(arrays["R"][i])
        solutions.append(
            ModelSolution(
                response_time=r,
                compute_residence=float(arrays["Rw"][i]),
                request_residence=float(arrays["Rq"][i]),
                reply_residence=float(arrays["Ry"][i]),
                throughput=m.processors / r,  # Eq. 5.1
                request_queue=float(arrays["Qq"][i]),
                reply_queue=float(arrays["Qy"][i]),
                request_utilization=float(arrays["Uq"][i]),
                reply_utilization=float(arrays["Uy"][i]),
                work=p.algorithm.work,
                latency=m.latency,
                handler_time=m.handler_time,
                meta={
                    "model": "lopc-alltoall",
                    "protocol_processor": protocol_processor,
                    "iterations": int(arrays["iterations"][i]),
                    "residual": float(arrays["residual"][i]),
                    "cv2": m.handler_cv2,
                    "batched": True,
                },
            )
        )
    return solutions
