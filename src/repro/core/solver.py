"""Fixed-point machinery shared by the LoPC model solvers.

The LoPC equations form a small non-linear system (a quartic in the
homogeneous all-to-all case -- paper Section 5.3).  The paper suggests
"us[ing] an equation solver to find a numerical solution"; we provide two
reproducible numerical strategies:

* :func:`solve_fixed_point` -- damped successive substitution on a vector
  map ``x -> f(x)``.  All the LoPC response-time maps are contractions for
  feasible parameters once mildly damped, and this method needs nothing
  but the map itself (works for the heterogeneous Appendix-A model).
* :func:`solve_scalar_fixed_point` -- Brent bracketing on ``g(R) = F[R] - R``
  for scalar recursions like Eq. 5.11 where a bracket is known
  analytically.

Both return diagnostics so callers (and tests) can verify convergence
instead of silently accepting a bad point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import brentq

__all__ = ["FixedPointResult", "solve_fixed_point", "solve_scalar_fixed_point"]


class ConvergenceError(RuntimeError):
    """Raised when an iterative solve fails to reach tolerance."""


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a damped fixed-point iteration.

    Attributes
    ----------
    value:
        The converged point (1-D :class:`numpy.ndarray`).
    iterations:
        Number of iterations performed.
    residual:
        Final infinity-norm of ``f(x) - x``.
    converged:
        Whether ``residual <= tol`` was reached within ``max_iter``.
    """

    value: np.ndarray
    iterations: int
    residual: float
    converged: bool


def solve_fixed_point(
    func: Callable[[np.ndarray], np.ndarray],
    initial: Sequence[float] | np.ndarray,
    *,
    damping: float = 0.5,
    tol: float = 1e-10,
    max_iter: int = 20_000,
    raise_on_failure: bool = True,
) -> FixedPointResult:
    """Solve ``x = f(x)`` by damped successive substitution.

    The update is ``x <- (1 - damping) * x + damping * f(x)``; ``damping=1``
    is plain substitution.  Convergence is declared when the infinity norm
    of ``f(x) - x`` relative to ``max(1, |x|)`` drops below ``tol``.

    Parameters
    ----------
    func:
        The map.  Must accept and return arrays of the same shape as
        ``initial`` and be finite on the iterates.
    initial:
        Starting point (e.g. the contention-free response times).
    damping:
        Step fraction in (0, 1].
    tol, max_iter:
        Convergence tolerance / iteration cap.
    raise_on_failure:
        If True (default), raise :class:`ConvergenceError` when the cap is
        hit; otherwise return a result with ``converged=False``.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping!r}")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol!r}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter!r}")

    x = np.atleast_1d(np.asarray(initial, dtype=float)).copy()
    if x.ndim != 1:
        raise ValueError("initial must be scalar or 1-D")

    residual = float("inf")
    for iteration in range(1, max_iter + 1):
        fx = np.atleast_1d(np.asarray(func(x), dtype=float))
        if fx.shape != x.shape:
            raise ValueError(
                f"func returned shape {fx.shape}, expected {x.shape}"
            )
        if not np.all(np.isfinite(fx)):
            raise ConvergenceError(
                f"fixed-point map produced non-finite values at iteration "
                f"{iteration}: {fx!r}"
            )
        scale = np.maximum(1.0, np.abs(x))
        residual = float(np.max(np.abs(fx - x) / scale))
        x = (1.0 - damping) * x + damping * fx
        if residual <= tol:
            return FixedPointResult(x, iteration, residual, True)

    if raise_on_failure:
        raise ConvergenceError(
            f"fixed point not reached after {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})"
        )
    return FixedPointResult(x, max_iter, residual, False)


def solve_scalar_fixed_point(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    *,
    tol: float = 1e-12,
    expand: float = 2.0,
    max_expansions: int = 64,
) -> float:
    """Solve ``R = F[R]`` for a scalar decreasing recursion by bracketing.

    Brent's method is applied to ``g(R) = F[R] - R`` on ``[lower, upper]``.
    If the bracket does not straddle a root (``g`` same sign at both ends),
    the upper end is geometrically expanded up to ``max_expansions`` times
    -- useful because the analytical upper bound of Eq. 5.12 is only proven
    for particular ``C^2``.

    Returns the root ``R*``.
    """
    if lower >= upper:
        raise ValueError(f"need lower < upper, got [{lower!r}, {upper!r}]")
    g = lambda r: func(r) - r
    g_low = g(lower)
    if g_low == 0.0:
        return lower
    if g_low < 0.0:
        # F decreasing => g decreasing; g(lower) < 0 means the fixed point
        # is below `lower`, which for LoPC means no contention: clamp.
        return lower
    g_up = g(upper)
    expansions = 0
    while g_up > 0.0 and expansions < max_expansions:
        upper = lower + (upper - lower) * expand
        g_up = g(upper)
        expansions += 1
    if g_up > 0.0:
        raise ConvergenceError(
            f"could not bracket fixed point: g({upper!r}) = {g_up!r} > 0"
        )
    return float(brentq(g, lower, upper, xtol=tol, rtol=8.881784197001252e-16))
