"""Fixed-point machinery shared by the LoPC model solvers.

The LoPC equations form a small non-linear system (a quartic in the
homogeneous all-to-all case -- paper Section 5.3).  The paper suggests
"us[ing] an equation solver to find a numerical solution"; we provide two
reproducible numerical strategies:

* :func:`solve_fixed_point` -- damped successive substitution on a vector
  map ``x -> f(x)``.  All the LoPC response-time maps are contractions for
  feasible parameters once mildly damped, and this method needs nothing
  but the map itself (works for the heterogeneous Appendix-A model).
* :func:`solve_scalar_fixed_point` -- Brent bracketing on ``g(R) = F[R] - R``
  for scalar recursions like Eq. 5.11 where a bracket is known
  analytically.
* :func:`solve_fixed_point_batch` -- the vectorized counterpart of
  :func:`solve_fixed_point`: one damped iteration over a whole
  ``(points, *dims)`` stack of independent maps with per-point
  convergence masking, bit-identical to per-point scalar solves.
  States may carry structure in the trailing axes (the multi-class
  ``(points, classes, centres)`` layout, or the general model's
  ``(points, 3, P)`` residence stack); the residual reduces over all of
  them.  The batch model entry points
  (:func:`repro.core.alltoall.solve_batch`,
  :func:`repro.core.client_server.solve_workpile_batch`,
  :func:`repro.core.general.solve_general_batch`) and the sweep
  engine's vectorized fast path are built on it.

Both return diagnostics so callers (and tests) can verify convergence
instead of silently accepting a bad point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy.optimize import brentq

from repro.obs import (
    TRAJECTORY_CAP,
    observe_batch_solve,
    observe_scalar_solve,
)
from repro.obs import context as _obs_context

__all__ = [
    "BatchFixedPointResult",
    "FixedPointResult",
    "solve_fixed_point",
    "solve_fixed_point_batch",
    "solve_scalar_fixed_point",
]


class ConvergenceError(RuntimeError):
    """Raised when an iterative solve fails to reach tolerance."""


@dataclass(frozen=True)
class FixedPointResult:
    """Outcome of a damped fixed-point iteration.

    Attributes
    ----------
    value:
        The converged point (1-D :class:`numpy.ndarray`).
    iterations:
        Number of iterations performed.
    residual:
        Final infinity-norm of ``f(x) - x``.
    converged:
        Whether ``residual <= tol`` was reached within ``max_iter``.
    """

    value: np.ndarray
    iterations: int
    residual: float
    converged: bool


def solve_fixed_point(
    func: Callable[[np.ndarray], np.ndarray],
    initial: Sequence[float] | np.ndarray,
    *,
    x0: Sequence[float] | np.ndarray | None = None,
    damping: float = 0.5,
    tol: float = 1e-10,
    max_iter: int = 20_000,
    raise_on_failure: bool = True,
) -> FixedPointResult:
    """Solve ``x = f(x)`` by damped successive substitution.

    The update is ``x <- (1 - damping) * x + damping * f(x)``; ``damping=1``
    is plain substitution.  Convergence is declared when the infinity norm
    of ``f(x) - x`` relative to ``max(1, |x|)`` drops below ``tol``.

    Parameters
    ----------
    func:
        The map.  Must accept and return arrays of the same shape as
        ``initial`` and be finite on the iterates.
    initial:
        Cold-start point (e.g. the contention-free response times).
    x0:
        Optional warm-start state overriding ``initial`` as the first
        iterate.  Must match ``initial``'s shape and be finite.  The
        converged value is the same fixed point to within ``tol``; only
        the iteration count (and the low-order bits of the result)
        depend on the start.
    damping:
        Step fraction in (0, 1].
    tol, max_iter:
        Convergence tolerance / iteration cap.
    raise_on_failure:
        If True (default), raise :class:`ConvergenceError` when the cap is
        hit; otherwise return a result with ``converged=False``.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping!r}")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol!r}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter!r}")

    x = np.atleast_1d(np.asarray(initial, dtype=float)).copy()
    if x.ndim != 1:
        raise ValueError("initial must be scalar or 1-D")
    if x0 is not None:
        seed = np.atleast_1d(np.asarray(x0, dtype=float))
        if seed.shape != x.shape:
            raise ValueError(
                f"x0 shape {seed.shape} does not match initial shape "
                f"{x.shape}"
            )
        if not np.all(np.isfinite(seed)):
            raise ValueError("x0 must be finite")
        x = seed.copy()

    # Telemetry is one `is None` check when disabled; the residual
    # trajectory is only collected when an event sink is listening.
    tel = _obs_context.active()
    trajectory: list[float] | None = (
        [] if tel is not None and tel.events is not None else None
    )

    residual = float("inf")
    for iteration in range(1, max_iter + 1):
        fx = np.atleast_1d(np.asarray(func(x), dtype=float))
        if fx.shape != x.shape:
            raise ValueError(
                f"func returned shape {fx.shape}, expected {x.shape}"
            )
        if not np.all(np.isfinite(fx)):
            raise ConvergenceError(
                f"fixed-point map produced non-finite values at iteration "
                f"{iteration}: {fx!r}"
            )
        scale = np.maximum(1.0, np.abs(x))
        residual = float(np.max(np.abs(fx - x) / scale))
        if trajectory is not None and len(trajectory) < TRAJECTORY_CAP:
            trajectory.append(residual)
        x = (1.0 - damping) * x + damping * fx
        if residual <= tol:
            if tel is not None:
                observe_scalar_solve(
                    tel, "solver.fixed_point", iteration, residual, True,
                    trajectory,
                )
            return FixedPointResult(x, iteration, residual, True)

    if tel is not None:
        observe_scalar_solve(
            tel, "solver.fixed_point", max_iter, residual, False, trajectory
        )
    if raise_on_failure:
        raise ConvergenceError(
            f"fixed point not reached after {max_iter} iterations "
            f"(residual {residual:.3e} > tol {tol:.3e})"
        )
    return FixedPointResult(x, max_iter, residual, False)


@dataclass(frozen=True)
class BatchFixedPointResult:
    """Outcome of a batched damped fixed-point iteration.

    Attributes
    ----------
    value:
        ``(points, *dims)`` array of per-point solutions (same shape as
        the ``initial`` the solve was started from).
    iterations:
        ``(points,)`` -- iterations each point ran before freezing.
    residual:
        ``(points,)`` -- final relative infinity-norm residual per point
        (``inf`` for points that produced non-finite iterates).
    converged:
        ``(points,)`` bool -- per-point convergence flags.
    """

    value: np.ndarray
    iterations: np.ndarray
    residual: np.ndarray
    converged: np.ndarray

    def __len__(self) -> int:
        return int(self.value.shape[0])


def _apply_batch_seeds(
    x: np.ndarray, x0: np.ndarray | None
) -> "tuple[np.ndarray | None, np.ndarray]":
    """Overlay finite ``x0`` rows onto the cold-start stack ``x``.

    Returns ``(seeded, x)`` where ``seeded`` is the per-point bool mask
    of rows taken from ``x0`` (None when ``x0`` is None, so callers can
    distinguish "no warm-start requested" from "all rows fell back").
    Rows of ``x0`` containing any non-finite entry keep the cold start.
    """
    if x0 is None:
        return None, x
    seeds = np.asarray(x0, dtype=float)
    if seeds.shape != x.shape:
        raise ValueError(
            f"x0 shape {seeds.shape} does not match initial shape {x.shape}"
        )
    point_axes = tuple(range(1, x.ndim))
    seeded = np.all(np.isfinite(seeds), axis=point_axes)
    if seeded.any():
        x[seeded] = seeds[seeded]
    return seeded, x


def solve_fixed_point_batch(
    func: Callable[[np.ndarray, np.ndarray], np.ndarray],
    initial: Sequence[Sequence[float]] | np.ndarray,
    *,
    x0: np.ndarray | None = None,
    stager: "object | None" = None,
    damping: float = 0.5,
    tol: float = 1e-10,
    max_iter: int = 20_000,
    raise_on_failure: bool = True,
) -> BatchFixedPointResult:
    """Solve ``x_p = f(x_p)`` for many points in one masked iteration.

    The vectorized counterpart of :func:`solve_fixed_point`: ``initial``
    is ``(points, dims)`` -- or, for structured states like the
    multi-class kernels', ``(points, *dims)`` with any number of
    trailing axes (e.g. ``(points, classes, centres)``; the residual is
    taken over all trailing axes, exactly as if each point's state were
    flattened into one vector) -- and ``func(x_active, indices)`` must
    map an ``(m, *dims)`` array of *active* points (plus the ``(m,)``
    array of their row indices, so per-point parameters can be gathered)
    to an ``(m, *dims)`` array, elementwise per row.  Each point follows
    exactly the scalar update sequence -- damped step, relative
    infinity-norm residual, ``residual <= tol`` stop -- and freezes at
    its own convergence iteration, so a batched solve is bit-identical
    to per-point scalar solves of the same map.

    Points whose iterates go non-finite are frozen immediately with
    ``residual = inf`` (the scalar solver raises at that moment; here the
    remaining points keep iterating and the failure is reported at the
    end).  When ``raise_on_failure`` is True, a :class:`ConvergenceError`
    naming the failed point indices is raised after the loop if any point
    failed to converge.

    ``x0`` supplies optional per-point warm-start states: a
    ``(points, *dims)`` array matching ``initial``'s shape in which a
    row whose entries are all finite replaces that point's cold start,
    while any non-finite entry (conventionally ``nan``) leaves the point
    on ``initial`` -- so one batch call can mix seeded and cold points.
    Seeding only moves the first iterate; each point still converges to
    the same fixed point within ``tol``.

    ``stager`` (optional) stages point activation *inside* the solve so
    warm seeds can be interpolated from donor points as soon as those
    donors are nearly converged, without paying one solver call per
    refinement pass.  It must expose:

    - ``initial_active``: ``(points,)`` bool mask of points that start
      iterating immediately; the rest stay dormant (not iterated, not
      counted) until activated.
    - ``poll(x, residuals, active, dormant)``: called once per
      iteration while dormant points remain; yields ``(rows, seeds)``
      pairs of dormant row indices to activate now and their
      ``(len(rows), *dims)`` seed states (non-finite rows start cold).

    Per-point iteration counts are measured from each point's
    activation step, so telemetry means stay comparable with unstaged
    solves.  If every active point retires while some are still
    dormant, the remaining dormant points are force-activated cold
    rather than stalling the solve.  ``stager=None`` leaves the solve
    loop bit-identical to the unstaged path.
    """
    if not 0.0 < damping <= 1.0:
        raise ValueError(f"damping must lie in (0, 1], got {damping!r}")
    if tol <= 0:
        raise ValueError(f"tol must be > 0, got {tol!r}")
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter!r}")

    x = np.atleast_2d(np.asarray(initial, dtype=float)).copy()
    if x.ndim < 2:
        raise ValueError("initial must be a (points, *dims) array")
    n_points = x.shape[0]
    # Residuals and finiteness reduce over every axis but the points one.
    point_axes = tuple(range(1, x.ndim))
    seeded, x = _apply_batch_seeds(x, x0)

    iterations = np.zeros(n_points, dtype=np.int64)
    residuals = np.full(n_points, np.inf)
    converged = np.zeros(n_points, dtype=bool)
    active = np.ones(n_points, dtype=bool)
    # Activation step per point: iteration counts are reported relative
    # to it so staged points' telemetry matches a fresh solve's.
    activation = np.zeros(n_points, dtype=np.int64)
    dormant = np.zeros(n_points, dtype=bool)
    if stager is not None:
        initial_active = np.asarray(stager.initial_active, dtype=bool)
        if initial_active.shape != (n_points,):
            raise ValueError(
                f"stager.initial_active shape {initial_active.shape} does "
                f"not match ({n_points},)"
            )
        dormant = ~initial_active
        active &= initial_active
        if seeded is None:
            seeded = np.zeros(n_points, dtype=bool)

    tel = _obs_context.active()
    trajectory: list[float] | None = (
        [] if tel is not None and tel.events is not None else None
    )

    for iteration in range(1, max_iter + 1):
        if not active.any():
            if not dormant.any():
                break
            # Every active point retired before the remaining dormant
            # points' donors were ready: activate them cold instead of
            # stalling the solve.
            activation[dormant] = iteration - 1
            active[dormant] = True
            dormant[:] = False
        rows = np.flatnonzero(active)
        xa = x[rows]
        fx = np.asarray(func(xa, rows), dtype=float)
        if fx.ndim < 2:
            fx = np.atleast_2d(fx)
        if fx.shape != xa.shape:
            raise ValueError(
                f"func returned shape {fx.shape}, expected {xa.shape}"
            )
        finite = np.all(np.isfinite(fx), axis=point_axes)
        scale = np.maximum(1.0, np.abs(xa))
        with np.errstate(invalid="ignore"):
            residual = np.max(np.abs(fx - xa) / scale, axis=point_axes)
        new_x = (1.0 - damping) * xa + damping * fx
        # Non-finite rows freeze on their *previous* iterate (the scalar
        # solver raises before applying the update).
        bad = rows[~finite]
        residuals[bad] = np.inf
        iterations[bad] = iteration - activation[bad]
        active[bad] = False

        good = finite
        x[rows[good]] = new_x[good]
        residuals[rows[good]] = residual[good]
        iterations[rows[good]] = iteration - activation[rows[good]]
        done = rows[good][residual[good] <= tol]
        converged[done] = True
        active[done] = False
        if trajectory is not None and len(trajectory) < TRAJECTORY_CAP:
            finite_res = residual[good]
            trajectory.append(
                float(finite_res.max()) if finite_res.size else float("inf")
            )
        if dormant.any():
            for wake_rows, wake_seeds in stager.poll(
                x, residuals, active, dormant
            ):
                wake_rows = np.asarray(wake_rows, dtype=np.int64)
                if not wake_rows.size:
                    continue
                wake_seeds = np.asarray(wake_seeds, dtype=float)
                warm = np.all(np.isfinite(wake_seeds), axis=point_axes)
                x[wake_rows[warm]] = wake_seeds[warm]
                seeded[wake_rows[warm]] = True
                activation[wake_rows] = iteration
                dormant[wake_rows] = False
                active[wake_rows] = True

    if tel is not None:
        observe_batch_solve(
            tel, "solver.fixed_point_batch", iterations, converged,
            residuals, trajectory, seeded=seeded,
        )
    if raise_on_failure and not converged.all():
        failed = np.flatnonzero(~converged)
        nonfinite = failed[np.isinf(residuals[failed])]
        parts = []
        if nonfinite.size:
            first = int(nonfinite[0])
            parts.append(
                f"{nonfinite.size} produced non-finite values (point "
                f"{first} at iteration {int(iterations[first])})"
            )
        slow = failed.size - nonfinite.size
        if slow:
            worst = float(np.max(residuals[failed][np.isfinite(
                residuals[failed])]))
            parts.append(
                f"{slow} missed tol {tol:.3e} after {max_iter} iterations "
                f"(worst residual {worst:.3e})"
            )
        raise ConvergenceError(
            f"batched fixed point failed for {failed.size}/{n_points} "
            f"point(s) {failed.tolist()[:10]}: " + "; ".join(parts)
        )
    return BatchFixedPointResult(x, iterations, residuals, converged)


def solve_scalar_fixed_point(
    func: Callable[[float], float],
    lower: float,
    upper: float,
    *,
    tol: float = 1e-12,
    expand: float = 2.0,
    max_expansions: int = 64,
) -> float:
    """Solve ``R = F[R]`` for a scalar decreasing recursion by bracketing.

    Brent's method is applied to ``g(R) = F[R] - R`` on ``[lower, upper]``.
    If the bracket does not straddle a root (``g`` same sign at both ends),
    the upper end is geometrically expanded up to ``max_expansions`` times
    -- useful because the analytical upper bound of Eq. 5.12 is only proven
    for particular ``C^2``.

    Returns the root ``R*``.
    """
    if lower >= upper:
        raise ValueError(f"need lower < upper, got [{lower!r}, {upper!r}]")

    def g(r: float) -> float:
        return func(r) - r

    g_low = g(lower)
    if g_low == 0.0:
        return lower
    if g_low < 0.0:
        # F decreasing => g decreasing; g(lower) < 0 means the fixed point
        # is below `lower`, which for LoPC means no contention: clamp.
        return lower
    g_up = g(upper)
    expansions = 0
    while g_up > 0.0 and expansions < max_expansions:
        upper = lower + (upper - lower) * expand
        g_up = g(upper)
        expansions += 1
    if g_up > 0.0:
        raise ConvergenceError(
            f"could not bracket fixed point: g({upper!r}) = {g_up!r} > 0"
        )
    return float(brentq(g, lower, upper, xtol=tol, rtol=8.881784197001252e-16))
