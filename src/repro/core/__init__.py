"""The LoPC model family -- the paper's primary contribution.

Modules
-------
:mod:`repro.core.params`
    LoPC / LogP parameterisation (paper Section 3, Table 3.1).
:mod:`repro.core.results`
    The :class:`~repro.core.results.ModelSolution` record shared by every
    analytical model and by the simulator's measurements.
:mod:`repro.core.logp`
    Contention-free LogP-style baseline (the model LoPC is compared
    against throughout the evaluation).
:mod:`repro.core.alltoall`
    Homogeneous all-to-all AMVA model (paper Sections 5.1-5.2).
:mod:`repro.core.rule_of_thumb`
    The recursion ``F[R]`` and the bracketing bounds of Eq. 5.11/5.12.
:mod:`repro.core.client_server`
    Client-server workpile model and optimal server allocation (Ch. 6).
:mod:`repro.core.general`
    The general LoPC model of Appendix A (heterogeneous threads, visit
    matrices, multi-hop requests).
:mod:`repro.core.shared_memory`
    Protocol-processor (shared-memory) variant: ``Rw = W``.
:mod:`repro.core.nonblocking`
    Future-work extension (Ch. 7): non-blocking requests with k
    outstanding messages, in the style of Heidelberger & Trivedi.
:mod:`repro.core.solver`
    Damped fixed-point iteration and scalar bracketing used by all of the
    above.
"""

from repro.core.alltoall import AllToAllModel, solve_batch
from repro.core.client_server import ClientServerModel, solve_workpile_batch
from repro.core.general import GeneralLoPCModel, ThreadClass
from repro.core.logp import LogPModel
from repro.core.nonblocking import NonBlockingModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.results import ModelSolution
from repro.core.rule_of_thumb import (
    contention_bounds,
    fixed_point_recursion,
    rule_of_thumb_response,
    solve_recursion,
    upper_bound_constant,
)
from repro.core.scaling import (
    AlgorithmSpec,
    crossover,
    matvec_spec,
    optimal_processors,
    runtime_curve,
    speedup_curve,
)
from repro.core.shared_memory import SharedMemoryModel
from repro.core.solver import (
    BatchFixedPointResult,
    FixedPointResult,
    solve_fixed_point,
    solve_fixed_point_batch,
)

__all__ = [
    "AlgorithmParams",
    "AlgorithmSpec",
    "AllToAllModel",
    "BatchFixedPointResult",
    "ClientServerModel",
    "FixedPointResult",
    "GeneralLoPCModel",
    "LoPCParams",
    "LogPModel",
    "MachineParams",
    "ModelSolution",
    "NonBlockingModel",
    "SharedMemoryModel",
    "ThreadClass",
    "contention_bounds",
    "crossover",
    "fixed_point_recursion",
    "matvec_spec",
    "optimal_processors",
    "rule_of_thumb_response",
    "runtime_curve",
    "solve_batch",
    "solve_fixed_point",
    "solve_fixed_point_batch",
    "solve_recursion",
    "solve_workpile_batch",
    "speedup_curve",
    "upper_bound_constant",
]
