"""Solution records shared by the analytical models and the simulator.

Both the AMVA solvers and the event-driven simulator decompose a
compute/request cycle exactly as the paper's Figure 4-3/4-4::

    R = Rw + St + Rq + St + Ry

so a single record type can hold either a model prediction or a simulator
measurement, and the validation code can compare them term by term (that
per-component comparison *is* Figure 5-3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Mapping

__all__ = ["ModelSolution"]


@dataclass(frozen=True)
class ModelSolution:
    """Steady-state solution of one LoPC analysis (or one measurement).

    All times are in processor cycles; throughput is requests per cycle
    (system-wide).  Notation follows the paper's Table 4.1.

    Attributes
    ----------
    response_time:
        ``R`` -- mean duration of a complete compute/request cycle.
    compute_residence:
        ``Rw`` -- residence time of the computation thread per cycle,
        including interference from higher-priority request handlers.
    request_residence:
        ``Rq`` -- response time of a request handler at the destination
        (service plus queueing).
    reply_residence:
        ``Ry`` -- response time of the reply handler back at the home node.
    throughput:
        ``X`` -- system-wide request completion rate.
    request_queue:
        ``Qq`` -- mean number of request handlers queued (incl. in
        service) at a node.
    reply_queue:
        ``Qy`` -- mean number of reply handlers queued at a node.
    request_utilization:
        ``Uq`` -- fraction of node time spent in request handlers.
    reply_utilization:
        ``Uy`` -- fraction of node time spent in reply handlers.
    work:
        ``W`` -- the algorithmic work parameter the solution was computed
        for (kept so contention components are self-describing).
    latency:
        ``St`` -- the wire-time parameter used.
    handler_time:
        ``So`` -- the handler-cost parameter used.
    meta:
        Free-form provenance (solver iterations, seed, samples, ...).
    """

    response_time: float
    compute_residence: float
    request_residence: float
    reply_residence: float
    throughput: float
    request_queue: float
    reply_queue: float
    request_utilization: float
    reply_utilization: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # Paper-notation aliases
    # ------------------------------------------------------------------
    @property
    def R(self) -> float:  # noqa: N802
        return self.response_time

    @property
    def Rw(self) -> float:  # noqa: N802
        return self.compute_residence

    @property
    def Rq(self) -> float:  # noqa: N802
        return self.request_residence

    @property
    def Ry(self) -> float:  # noqa: N802
        return self.reply_residence

    @property
    def X(self) -> float:  # noqa: N802
        return self.throughput

    # ------------------------------------------------------------------
    # Contention decomposition (Figure 5-3)
    # ------------------------------------------------------------------
    @property
    def contention_free_cycle(self) -> float:
        """``W + 2 St + 2 So`` -- the cycle with all contention removed."""
        return self.work + 2.0 * self.latency + 2.0 * self.handler_time

    @property
    def total_contention(self) -> float:
        """``C = R - (W + 2 St + 2 So)`` -- LoPC's headline quantity."""
        return self.response_time - self.contention_free_cycle

    @property
    def compute_contention(self) -> float:
        """``Rw - W`` -- thread delay from handler interference (BKT)."""
        return self.compute_residence - self.work

    @property
    def request_contention(self) -> float:
        """``Rq - So`` -- request handler queueing delay."""
        return self.request_residence - self.handler_time

    @property
    def reply_contention(self) -> float:
        """``Ry - So`` -- reply handler queueing delay."""
        return self.reply_residence - self.handler_time

    @property
    def contention_fraction(self) -> float:
        """Fraction of the cycle spent on contention (Figure 5-1 y-axis)."""
        if self.response_time <= 0:
            return 0.0
        return self.total_contention / self.response_time

    def runtime(self, requests: int) -> float:
        """Total application runtime ``n * R`` for ``n`` requests per node."""
        if requests < 0:
            raise ValueError(f"requests must be >= 0, got {requests!r}")
        return requests * self.response_time

    # ------------------------------------------------------------------
    # Consistency and comparison helpers
    # ------------------------------------------------------------------
    def cycle_identity_error(self) -> float:
        """Absolute error in ``R - (Rw + 2 St + Rq + Ry)``.

        Zero (to rounding) for any well-formed solution or measurement;
        exposed so tests can assert the Figure 4-3 decomposition holds.
        """
        reconstructed = (
            self.compute_residence
            + 2.0 * self.latency
            + self.request_residence
            + self.reply_residence
        )
        return abs(self.response_time - reconstructed)

    def relative_error_to(self, reference: "ModelSolution") -> float:
        """Signed relative error of this solution's ``R`` vs a reference.

        Positive means this solution is *pessimistic* (predicts a larger
        response time than the reference) -- the sign convention used in
        the paper's accuracy claims.
        """
        if reference.response_time <= 0:
            raise ValueError("reference response_time must be > 0")
        return (
            self.response_time - reference.response_time
        ) / reference.response_time

    def as_dict(self) -> dict[str, float]:
        """Flat dict of all numeric fields plus derived components."""
        out: dict[str, float] = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "meta"
        }
        out.update(
            total_contention=self.total_contention,
            compute_contention=self.compute_contention,
            request_contention=self.request_contention,
            reply_contention=self.reply_contention,
            contention_fraction=self.contention_fraction,
            contention_free_cycle=self.contention_free_cycle,
        )
        return out
