"""The general LoPC model (paper Appendix A).

Handles arbitrary, heterogeneous communication patterns: each of the ``P``
nodes hosts one thread ``c`` with its own mean work ``W_c`` between
blocking requests and its own *visit ratios* ``V_ck`` -- the mean number
of request-handler visits thread ``c``'s cycle makes to node ``k``.  Rows
may sum to more than 1, modelling multi-hop requests that are forwarded
through intermediate nodes before the final node replies to the
originator.  Threads with no work/visits (e.g. workpile servers) simply
never contribute throughput.

Equation system (paper numbering)::

    X_c   = 1 / R_c                                 (A.1, Little per thread)
    X_ck  = V_ck X_c                                (A.2)
    Uq_k  = So sum_c X_ck                           (A.3)
    Uy_k  = X_k So                                  (A.4, replies come home)
    Qq_k  = Rq_k sum_c X_ck                         (A.5)
    Qy_k  = X_k Ry_k                                (A.6)
    Rq_k  = So (1 + Qq_k + Qy_k [+ C^2 corr])       (A.7 / 5.9)
    Ry_k  = So (1 + Qq_k        [+ C^2 corr])       (A.8 / 5.10)
    Rw_k  = (W_k + So Qq_k) / (1 - Uq_k)            (A.9, BKT)
          =  W_k                                     (protocol processor)
    R_c   = Rw_c + sum_k V_ck (St + Rq_k) + St + Ry_c   (A.10)

The homogeneous all-to-all model (Section 5) and the workpile model
(Section 6) are exact special cases; the test suite verifies both
reductions numerically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.params import MachineParams
from repro.core.results import ModelSolution
from repro.core.solver import solve_fixed_point, solve_fixed_point_batch

__all__ = [
    "GeneralLoPCModel",
    "GeneralSolution",
    "ThreadClass",
    "solve_general_batch",
]

#: Floor for the BKT denominator during transient iterations (see
#: GeneralLoPCModel._update); converged solutions are validated separately.
_BKT_DENOM_FLOOR = 0.02


@dataclass(frozen=True)
class ThreadClass:
    """A group of identically-behaving threads, for model construction.

    Attributes
    ----------
    name:
        Label used in reports ("client", "server", ...).
    count:
        How many nodes host a thread of this class.
    work:
        Mean computation ``W`` between requests, or ``None`` for a passive
        thread that never issues requests (a pure server).
    """

    name: str
    count: int
    work: float | None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"count must be >= 1, got {self.count!r}")
        if self.work is not None and self.work < 0:
            raise ValueError(f"work must be >= 0 or None, got {self.work!r}")

    @property
    def active(self) -> bool:
        return self.work is not None


@dataclass(frozen=True)
class GeneralSolution:
    """Per-node / per-thread solution of the general LoPC model.

    Arrays are indexed by node id ``0 .. P-1`` (thread ``c`` lives on node
    ``c``).  Passive threads have ``response_times = inf`` and zero
    throughput.
    """

    response_times: np.ndarray  # R_c
    compute_residences: np.ndarray  # Rw_c
    request_residences: np.ndarray  # Rq_k
    reply_residences: np.ndarray  # Ry_k
    throughputs: np.ndarray  # X_c
    request_queues: np.ndarray  # Qq_k
    reply_queues: np.ndarray  # Qy_k
    request_utilizations: np.ndarray  # Uq_k
    reply_utilizations: np.ndarray  # Uy_k
    works: np.ndarray  # W_c (nan for passive)
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def system_throughput(self) -> float:
        """Total request completion rate ``sum_c X_c``."""
        return float(self.throughputs.sum())

    @property
    def active(self) -> np.ndarray:
        """Boolean mask of nodes whose thread issues requests."""
        return np.isfinite(self.response_times)

    def node_solution(self, node: int) -> ModelSolution:
        """Project one node's figures into a :class:`ModelSolution`.

        Only meaningful for active threads (passive threads have no
        compute/request cycle).
        """
        if not self.active[node]:
            raise ValueError(f"thread on node {node} is passive (no cycle)")
        return ModelSolution(
            response_time=float(self.response_times[node]),
            compute_residence=float(self.compute_residences[node]),
            request_residence=float(self.request_residences[node]),
            reply_residence=float(self.reply_residences[node]),
            throughput=float(self.throughputs[node]),
            request_queue=float(self.request_queues[node]),
            reply_queue=float(self.reply_queues[node]),
            request_utilization=float(self.request_utilizations[node]),
            reply_utilization=float(self.reply_utilizations[node]),
            work=float(self.works[node]),
            latency=self.latency,
            handler_time=self.handler_time,
            meta=dict(self.meta, node=node),
        )


class GeneralLoPCModel:
    """Appendix-A LoPC: arbitrary visit matrices, heterogeneous threads.

    Parameters
    ----------
    machine:
        Architectural parameters ``(St, So, P, C^2)``.
    works:
        Length-``P`` sequence of per-thread work ``W_c``; ``None`` (or
        ``nan``) marks a passive thread that never issues requests.
    visits:
        ``P x P`` matrix of visit ratios ``V_ck`` (mean request-handler
        visits to node ``k`` per cycle of thread ``c``).  Rows of passive
        threads must be zero.  ``V_cc`` must be zero -- a node does not
        send itself messages through the network.
    protocol_processor:
        If True, handlers run on a dedicated protocol processor
        (``Rw_k = W_k``).
    """

    def __init__(
        self,
        machine: MachineParams,
        works: Sequence[float | None],
        visits: np.ndarray | Sequence[Sequence[float]],
        *,
        protocol_processor: bool = False,
        damping: float = 0.5,
        tol: float = 1e-12,
        max_iter: int = 100_000,
    ) -> None:
        if machine.gap != 0.0:
            raise ValueError(
                "LoPC assumes balanced network bandwidth (gap g = 0); "
                f"got gap={machine.gap!r}"
            )
        p = machine.processors
        works_arr = np.array(
            [np.nan if w is None else float(w) for w in works], dtype=float
        )
        if works_arr.shape != (p,):
            raise ValueError(
                f"works must have length P={p}, got {works_arr.shape}"
            )
        if np.any(works_arr[np.isfinite(works_arr)] < 0):
            raise ValueError("active works must be >= 0")

        visit_arr = np.asarray(visits, dtype=float)
        if visit_arr.shape != (p, p):
            raise ValueError(
                f"visits must be a {p}x{p} matrix, got shape {visit_arr.shape}"
            )
        if np.any(visit_arr < 0):
            raise ValueError("visit ratios must be >= 0")
        if np.any(np.diag(visit_arr) != 0):
            raise ValueError("self-visits V_cc must be zero")
        active = np.isfinite(works_arr)
        if not active.any():
            raise ValueError("at least one thread must be active")
        if np.any(visit_arr[~active].sum(axis=1) > 0):
            raise ValueError("passive threads must have zero visit rows")
        if np.any(np.isclose(visit_arr[active].sum(axis=1), 0.0)):
            raise ValueError(
                "active threads must visit at least one node per cycle"
            )

        self.machine = machine
        self.works = works_arr
        self.visits = visit_arr
        self.active = active
        self.protocol_processor = protocol_processor
        self.damping = damping
        self.tol = tol
        self.max_iter = max_iter

    # ------------------------------------------------------------------
    # Builders for the paper's two reference patterns
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous_alltoall(
        cls, machine: MachineParams, work: float, **kwargs: object
    ) -> "GeneralLoPCModel":
        """Uniform random all-to-all: ``V_ck = 1/(P-1)`` off-diagonal."""
        p = machine.processors
        visits = np.full((p, p), 1.0 / (p - 1))
        np.fill_diagonal(visits, 0.0)
        return cls(machine, [work] * p, visits, **kwargs)

    @classmethod
    def client_server(
        cls,
        machine: MachineParams,
        work: float,
        servers: int,
        **kwargs: object,
    ) -> "GeneralLoPCModel":
        """Workpile: nodes ``0..Ps-1`` are passive servers, the rest are
        clients visiting each server with ratio ``1/Ps``."""
        p = machine.processors
        if not 1 <= servers <= p - 1:
            raise ValueError(f"servers must lie in [1, {p - 1}], got {servers!r}")
        works: list[float | None] = [None] * servers + [work] * (p - servers)
        visits = np.zeros((p, p))
        visits[servers:, :servers] = 1.0 / servers
        return cls(machine, works, visits, **kwargs)

    @classmethod
    def multi_hop_ring(
        cls,
        machine: MachineParams,
        work: float,
        hops: int,
        **kwargs: object,
    ) -> "GeneralLoPCModel":
        """Requests forwarded ``hops`` times around a ring before replying.

        Thread ``c`` visits nodes ``c+1, ..., c+hops`` (mod P), each once
        per cycle; the row sum is ``hops`` > 1 for multi-hop patterns.

        Note: the *deterministic* simulated counterpart of this pattern
        self-synchronises into a contention-free schedule (the
        Brewer/Kuszmaul CM-5 effect the paper's introduction describes);
        use :meth:`random_multihop` traffic when validating the model.
        """
        p = machine.processors
        if not 1 <= hops <= p - 1:
            raise ValueError(f"hops must lie in [1, {p - 1}], got {hops!r}")
        visits = np.zeros((p, p))
        for c in range(p):
            for h in range(1, hops + 1):
                visits[c, (c + h) % p] = 1.0
        return cls(machine, [work] * p, visits, **kwargs)

    @classmethod
    def random_multihop(
        cls,
        machine: MachineParams,
        work: float,
        hops: int,
        **kwargs: object,
    ) -> "GeneralLoPCModel":
        """Requests forwarded through ``hops`` uniformly random nodes.

        Expected visit ratio ``V_ck = hops/(P-1)`` off-diagonal (row sums
        of ``hops`` -- multi-hop in the Appendix-A sense).
        """
        p = machine.processors
        if not 1 <= hops <= p - 1:
            raise ValueError(f"hops must lie in [1, {p - 1}], got {hops!r}")
        visits = np.full((p, p), hops / (p - 1))
        np.fill_diagonal(visits, 0.0)
        return cls(machine, [work] * p, visits, **kwargs)

    # ------------------------------------------------------------------
    def _unpack(self, state: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        p = self.machine.processors
        return state[:p], state[p : 2 * p], state[2 * p :]

    def _update(self, state: np.ndarray) -> np.ndarray:
        m = self.machine
        so, st, cv2 = m.handler_time, m.latency, m.handler_cv2
        rw, rq, ry = self._unpack(state)
        active = self.active
        works = np.where(active, self.works, 0.0)

        # A.10: total cycle per active thread.
        r = rw + self.visits @ (st + rq) + st + ry
        x = np.where(active, 1.0 / np.maximum(r, 1e-300), 0.0)  # A.1
        arrivals = self.visits.T @ x  # sum_c X_ck per node k  (A.2/A.3)
        uq = so * arrivals  # A.3
        uy = so * x  # A.4 (thread k's replies arrive at node k)
        qq = rq * arrivals  # A.5
        qy = ry * x  # A.6

        corr_q = residual_correction_vec(uq, cv2)
        corr_y = residual_correction_vec(uy, cv2)
        new_rq = so * (1.0 + qq + qy + corr_q + corr_y)  # A.7 / 5.9
        new_ry = so * (1.0 + qq + corr_q)  # A.8 / 5.10
        if self.protocol_processor:
            new_rw = works
        else:
            # Transient iterates can overshoot into Uq >= 1 (e.g. before
            # client response times have grown to reflect server load);
            # clamp the BKT denominator so the iteration can recover.  The
            # converged point is checked for feasibility in solve().
            denom = np.maximum(1.0 - uq, _BKT_DENOM_FLOOR)
            new_rw = (works + so * qq) / denom  # A.9
        return np.concatenate([new_rw, new_rq, new_ry])

    def solve(
        self, x0: Sequence[float] | np.ndarray | None = None
    ) -> GeneralSolution:
        """Solve the Appendix-A system by damped fixed-point iteration.

        ``x0`` optionally warm-starts the fixed point from a flat
        ``(3 P,)`` state (the concatenated ``[Rw, Rq, Ry]`` per-node
        residences, or a ``(3, P)`` stack, which is flattened); the
        solution reached is the same within ``tol``.
        """
        m = self.machine
        p = m.processors
        works0 = np.where(self.active, self.works, 0.0)
        initial = np.concatenate(
            [works0, np.full(p, m.handler_time), np.full(p, m.handler_time)]
        )
        if x0 is not None:
            x0 = np.asarray(x0, dtype=float).ravel()
        result = solve_fixed_point(
            self._update,
            initial,
            x0=x0,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        rw, rq, ry = self._unpack(result.value)
        st, so = m.latency, m.handler_time
        r = rw + self.visits @ (st + rq) + st + ry
        r = np.where(self.active, r, np.inf)
        x = np.where(self.active, 1.0 / r, 0.0)
        arrivals = self.visits.T @ x
        if not self.protocol_processor and np.any(
            so * arrivals >= 1.0 - _BKT_DENOM_FLOOR
        ):
            worst = int(np.argmax(arrivals))
            raise ValueError(
                "modelled pattern saturates node "
                f"{worst} (request-handler utilisation "
                f"{so * arrivals[worst]:.3f}); LoPC requires Uq < 1"
            )
        return GeneralSolution(
            response_times=r,
            compute_residences=np.where(self.active, rw, 0.0),
            request_residences=rq,
            reply_residences=ry,
            throughputs=x,
            request_queues=rq * arrivals,
            reply_queues=ry * x,
            request_utilizations=so * arrivals,
            reply_utilizations=so * x,
            works=self.works,
            latency=st,
            handler_time=so,
            meta={
                "model": "lopc-general",
                "protocol_processor": self.protocol_processor,
                "iterations": result.iterations,
                "residual": result.residual,
                "cv2": m.handler_cv2,
            },
        )


def residual_correction_vec(utilization: np.ndarray, cv2: float) -> np.ndarray:
    """Vectorised ``(C^2 - 1)/2 * U``
    (see :func:`repro.mva.residual.residual_correction`)."""
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2!r}")
    return 0.5 * (cv2 - 1.0) * np.asarray(utilization, dtype=float)


# ---------------------------------------------------------------------------
# Vectorized batch entry point
# ---------------------------------------------------------------------------
def solve_general_batch(
    models: Sequence[GeneralLoPCModel],
    *,
    x0: np.ndarray | None = None,
) -> list[GeneralSolution]:
    """Solve many Appendix-A models in one masked batch fixed point.

    All models must share the same node count ``P`` and the same solver
    controls (``damping``, ``tol``, ``max_iter``) -- the masked
    iteration applies one stopping rule to every point.  Everything else
    (machine scalars, works, visit matrices, ``protocol_processor``) may
    differ point to point.

    The state is the ``(points, 3, P)`` stack of per-node residences
    ``[Rw, Rq, Ry]`` driven through
    :func:`repro.core.solver.solve_fixed_point_batch`; each point
    freezes at its own convergence iteration.  The per-point matrix
    products use batched ``np.matmul``, which reproduces the scalar
    ``visits @ v`` products bit for bit on mainstream BLAS builds
    (asserted by this repo's test environment); results always agree
    with per-model :meth:`GeneralLoPCModel.solve` to solver tolerance.
    ``meta["batched"] = True`` marks the provenance.

    A point that saturates a node (``Uq >= 1``) raises the same
    :class:`ValueError` the scalar path raises, naming the point; a
    point whose iterates go non-finite surfaces as a
    :class:`~repro.core.solver.ConvergenceError` after the loop.

    ``x0`` optionally warm-starts points from a ``(points, 3, P)``
    residence stack; rows (whole points) with any non-finite entry keep
    the cold contention-free start.
    """
    if len(models) == 0:
        return []
    first = models[0]
    p = first.machine.processors
    for i, model in enumerate(models):
        if model.machine.processors != p:
            raise ValueError(
                f"all models must share P; model 0 has P={p}, model {i} "
                f"has P={model.machine.processors}"
            )
        if (
            model.damping != first.damping
            or model.tol != first.tol
            or model.max_iter != first.max_iter
        ):
            raise ValueError(
                "all models must share damping/tol/max_iter; model "
                f"{i} differs from model 0"
            )

    n_points = len(models)
    so = np.array([m.machine.handler_time for m in models])
    st = np.array([m.machine.latency for m in models])
    cv2 = np.array([m.machine.handler_cv2 for m in models])
    pp = np.array([m.protocol_processor for m in models])
    active = np.stack([m.active for m in models])
    works = np.where(active, np.stack([m.works for m in models]), 0.0)
    visits = np.stack([m.visits for m in models])
    # Keep the transpose a *view*: the scalar path computes
    # ``visits.T @ x`` on the untransposed storage, and matching its
    # BLAS path (transposed gemv) is what keeps batch == scalar bitwise.
    visits_t = visits.transpose(0, 2, 1)

    def update(state: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rw, rq, ry = state[:, 0], state[:, 1], state[:, 2]
        so_r = so[rows][:, np.newaxis]
        st_r = st[rows][:, np.newaxis]
        cv2_r = cv2[rows][:, np.newaxis]
        with np.errstate(all="ignore"):
            # A.10: total cycle per active thread.
            r = rw + np.matmul(
                visits[rows], (st_r + rq)[:, :, np.newaxis]
            )[:, :, 0] + st_r + ry
            x = np.where(
                active[rows], 1.0 / np.maximum(r, 1e-300), 0.0
            )  # A.1
            arrivals = np.matmul(
                visits_t[rows], x[:, :, np.newaxis]
            )[:, :, 0]  # sum_c X_ck per node k  (A.2/A.3)
            uq = so_r * arrivals  # A.3
            uy = so_r * x  # A.4 (thread k's replies arrive at node k)
            qq = rq * arrivals  # A.5
            qy = ry * x  # A.6

            corr_q = 0.5 * (cv2_r - 1.0) * uq
            corr_y = 0.5 * (cv2_r - 1.0) * uy
            new_rq = so_r * (1.0 + qq + qy + corr_q + corr_y)  # A.7 / 5.9
            new_ry = so_r * (1.0 + qq + corr_q)  # A.8 / 5.10
            # See _update: transient Uq >= 1 iterates are clamped so the
            # iteration can recover; converged points are re-checked below.
            denom = np.maximum(1.0 - uq, _BKT_DENOM_FLOOR)
            new_rw = np.where(
                pp[rows][:, np.newaxis], works[rows],
                (works[rows] + so_r * qq) / denom,  # A.9
            )
        return np.stack([new_rw, new_rq, new_ry], axis=1)

    initial = np.stack(
        [works, so[:, np.newaxis] * np.ones((n_points, p)),
         so[:, np.newaxis] * np.ones((n_points, p))],
        axis=1,
    )
    result = solve_fixed_point_batch(
        update,
        initial,
        x0=x0,
        damping=first.damping,
        tol=first.tol,
        max_iter=first.max_iter,
    )

    rw, rq, ry = result.value[:, 0], result.value[:, 1], result.value[:, 2]
    r = rw + np.matmul(
        visits, (st[:, np.newaxis] + rq)[:, :, np.newaxis]
    )[:, :, 0] + st[:, np.newaxis] + ry
    r = np.where(active, r, np.inf)
    x = np.where(active, 1.0 / r, 0.0)
    arrivals = np.matmul(visits_t, x[:, :, np.newaxis])[:, :, 0]
    uq = so[:, np.newaxis] * arrivals
    saturated = ~pp[:, np.newaxis] & (uq >= 1.0 - _BKT_DENOM_FLOOR)
    if np.any(saturated):
        point = int(np.flatnonzero(np.any(saturated, axis=1))[0])
        worst = int(np.argmax(arrivals[point]))
        raise ValueError(
            f"modelled pattern saturates node {worst} of point {point} "
            f"(request-handler utilisation {uq[point, worst]:.3f}); "
            "LoPC requires Uq < 1"
        )

    solutions = []
    for i, model in enumerate(models):
        solutions.append(
            GeneralSolution(
                response_times=r[i],
                compute_residences=np.where(active[i], rw[i], 0.0),
                request_residences=rq[i],
                reply_residences=ry[i],
                throughputs=x[i],
                request_queues=rq[i] * arrivals[i],
                reply_queues=ry[i] * x[i],
                request_utilizations=uq[i],
                reply_utilizations=so[i] * x[i],
                works=model.works,
                latency=float(st[i]),
                handler_time=float(so[i]),
                meta={
                    "model": "lopc-general",
                    "protocol_processor": bool(pp[i]),
                    "iterations": int(result.iterations[i]),
                    "residual": float(result.residual[i]),
                    "cv2": float(cv2[i]),
                    "batched": True,
                },
            )
        )
    return solutions
