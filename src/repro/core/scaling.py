"""Algorithm-design analysis: the use case LoPC is built for.

The paper's pitch (Chapter 1) is that algorithm designers need a cost
model that is "simple to use" yet accounts for first-order system
overheads *including contention*.  This module packages that workflow:

* describe an algorithm as a function ``P -> AlgorithmParams`` (total
  arithmetic and message counts usually depend on the machine size);
* get runtime / speedup / efficiency curves under any of the models
  (LogP baseline vs LoPC with contention);
* locate the processor count where scaling stops paying
  (:func:`optimal_processors`) and where one algorithm overtakes
  another (:func:`crossover`).

The matvec builder reproduces Section 3's example end to end: with
cyclic distribution, ``W(P) = N * t_madd / (P - 1)`` shrinks as the
machine grows, so per-message contention grows -- LogP keeps promising
speedup after LoPC (correctly) says communication has taken over.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Sequence

from repro.core.alltoall import AllToAllModel, solve_batch
from repro.core.logp import LogPModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams

__all__ = [
    "AlgorithmSpec",
    "ScalingPoint",
    "crossover",
    "matvec_spec",
    "optimal_processors",
    "optimal_processors_search",
    "runtime_curve",
    "speedup_curve",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A parallel algorithm, characterised per machine size.

    Attributes
    ----------
    name:
        Label used in reports.
    params_for:
        Function mapping a processor count ``P`` to the LogP/LoPC
        algorithmic characterisation on that machine.
    serial_time:
        Total single-processor runtime in cycles (for speedup curves).
    """

    name: str
    params_for: Callable[[int], AlgorithmParams]
    serial_time: float

    def __post_init__(self) -> None:
        if self.serial_time <= 0:
            raise ValueError(
                f"serial_time must be > 0, got {self.serial_time!r}"
            )


def matvec_spec(size: int, madd_cycles: float = 1.0) -> AlgorithmSpec:
    """Section 3's matrix-vector multiply as an :class:`AlgorithmSpec`.

    Per node on ``P`` processors: ``m = (N/P) N`` multiply-adds and
    ``n = (N/P)(P-1)`` blocking puts, so ``W = N t_madd / (P-1)``.
    Serial time is ``N^2 t_madd`` (no communication).
    """
    if size < 2:
        raise ValueError(f"size must be >= 2, got {size!r}")
    if madd_cycles <= 0:
        raise ValueError(f"madd_cycles must be > 0, got {madd_cycles!r}")

    def params_for(p: int) -> AlgorithmParams:
        rows = size / p
        return AlgorithmParams.from_operation_counts(
            arithmetic=rows * size,
            messages=max(1, round(rows * (p - 1))),
            cycles_per_op=madd_cycles,
        )

    return AlgorithmSpec(
        name=f"matvec-{size}",
        params_for=params_for,
        serial_time=size * size * madd_cycles,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """One machine size on a scaling curve."""

    processors: int
    work: float  # W(P)
    requests: int  # n(P)
    cycle_time: float  # R(P) under the chosen model
    runtime: float  # n(P) * R(P)
    speedup: float
    efficiency: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)


def _model_cycle(
    machine: MachineParams, algorithm: AlgorithmParams, model: str
) -> float:
    if model == "lopc":
        return AllToAllModel(machine).solve(algorithm).response_time
    if model == "logp":
        return LogPModel(machine).cycle_time(algorithm.work)
    raise ValueError(f"unknown model {model!r}; use 'lopc' or 'logp'")


def _cycle_times(
    grid: Sequence[tuple[MachineParams, AlgorithmParams]], model: str
) -> list[float]:
    """Cycle time per ``(machine, algorithm)`` point under ``model``.

    The LoPC points go through :func:`repro.core.alltoall.solve_batch`
    in one vectorized call (bit-identical to per-point solves); LogP is
    a closed form, evaluated directly.
    """
    if model == "lopc":
        params = [LoPCParams(machine=m, algorithm=a) for m, a in grid]
        return [sol.response_time for sol in solve_batch(params)]
    return [_model_cycle(m, a, model) for m, a in grid]


def runtime_curve(
    spec: AlgorithmSpec,
    machine: MachineParams,
    processor_counts: Sequence[int],
    model: str = "lopc",
) -> list[ScalingPoint]:
    """Predicted runtime/speedup of ``spec`` across machine sizes.

    ``machine.processors`` is overridden by each entry of
    ``processor_counts``; all other machine parameters are held fixed.
    The whole curve is one batched LoPC solve (the per-``P`` grid of
    :class:`LoPCParams` maps onto the vectorized AMVA kernel), so dense
    scaling studies cost one fixed point rather than one per ``P``.
    """
    grid: list[tuple[MachineParams, AlgorithmParams]] = []
    for p in processor_counts:
        if p < 2:
            raise ValueError(f"processor counts must be >= 2, got {p!r}")
        grid.append((replace(machine, processors=p), spec.params_for(p)))
    cycles = _cycle_times(grid, model)
    points: list[ScalingPoint] = []
    for (sized, algorithm), cycle in zip(grid, cycles):
        runtime = algorithm.requests * cycle
        speedup = spec.serial_time / runtime
        points.append(
            ScalingPoint(
                processors=sized.processors,
                work=algorithm.work,
                requests=algorithm.requests,
                cycle_time=cycle,
                runtime=runtime,
                speedup=speedup,
                efficiency=speedup / sized.processors,
                meta={"model": model, "algorithm": spec.name},
            )
        )
    return points


def speedup_curve(
    spec: AlgorithmSpec,
    machine: MachineParams,
    processor_counts: Sequence[int],
    model: str = "lopc",
) -> list[tuple[int, float]]:
    """Shorthand: ``(P, speedup)`` pairs."""
    return [
        (pt.processors, pt.speedup)
        for pt in runtime_curve(spec, machine, processor_counts, model)
    ]


def optimal_processors(
    spec: AlgorithmSpec,
    machine: MachineParams,
    processor_counts: Sequence[int],
    model: str = "lopc",
) -> ScalingPoint:
    """The machine size with the smallest predicted runtime."""
    curve = runtime_curve(spec, machine, processor_counts, model)
    return min(curve, key=lambda pt: pt.runtime)


def optimal_processors_search(
    spec: AlgorithmSpec,
    machine: MachineParams,
    p_range: tuple[int, int] = (2, 512),
    model: str = "lopc",
    max_solves: int = 24,
) -> ScalingPoint:
    """Like :func:`optimal_processors`, without scanning every ``P``.

    Runtime over ``P`` is unimodal for the algorithms this module
    characterises (speedup rises until contention overtakes the
    shrinking per-node work, then runtime climbs), so a golden-section
    search over the integer ``P`` axis -- each probe batch one
    :func:`runtime_curve` call -- finds the exact lattice argmin in
    ``O(log)`` solves instead of ``hi - lo``.  The returned point's
    ``meta`` records ``search_solves`` and ``search_points``.

    Caveat: integer message rounding (``n = round(rows (P-1))``) makes
    long plateaus jitter by well under 1%; on such near-flat tails the
    search returns a point *within that jitter* of the true minimum
    rather than the exact lattice argmin.  Curves with a genuine
    interior knee resolve exactly.
    """
    # Imported lazily: repro.opt's facade modules import repro.api,
    # which imports the core models -- a module-level import here would
    # make that a cycle.
    from repro.opt.scalar import golden_min
    from repro.opt.space import AxisSpec

    lo, hi = int(p_range[0]), int(p_range[1])
    if lo < 2:
        raise ValueError(f"processor counts must be >= 2, got {lo!r}")
    axis = AxisSpec("P", lo, hi, integer=True)
    cache: dict[int, ScalingPoint] = {}
    counters = {"solves": 0, "points": 0}

    def evaluate(ps: Sequence[float]) -> list[float]:
        fresh = sorted({int(p) for p in ps} - set(cache))
        if fresh:
            counters["solves"] += 1
            counters["points"] += len(fresh)
            for pt in runtime_curve(spec, machine, fresh, model):
                cache[pt.processors] = pt
        return [cache[int(p)].runtime for p in ps]

    result = golden_min(evaluate, axis, max_steps=max_solves)
    if result.x is None:  # pragma: no cover - runtime is always finite
        raise RuntimeError("optimal_processors_search found no finite point")
    best = cache[int(result.x)]
    return replace(
        best,
        meta={
            **dict(best.meta),
            "search_solves": counters["solves"],
            "search_points": counters["points"],
            "search_converged": result.converged,
        },
    )


def crossover(
    spec_a: AlgorithmSpec,
    spec_b: AlgorithmSpec,
    machine: MachineParams,
    processor_counts: Sequence[int],
    model: str = "lopc",
) -> int | None:
    """First machine size at which ``spec_b`` beats ``spec_a``.

    Returns None if ``spec_b`` never wins in the range.  The classic
    model-driven design question ("which algorithm, at what scale?")
    the LogP/LoPC line of work exists to answer.
    """
    curve_a = runtime_curve(spec_a, machine, processor_counts, model)
    curve_b = runtime_curve(spec_b, machine, processor_counts, model)
    for pa, pb in zip(curve_a, curve_b):
        if pb.runtime < pa.runtime:
            return pb.processors
    return None
