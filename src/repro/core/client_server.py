"""Client-server workpile LoPC model (paper Chapter 6).

The machine's ``P`` nodes are split into ``Pc`` clients, which do the
actual work, and ``Ps = P - Pc`` servers, which hand out chunks of work.
Each client repeats: process a chunk (``W`` cycles), then make a blocking
request to a uniformly random server for the next chunk.  Server threads
never compute and never initiate requests, so:

* client nodes receive no request handlers -- the client thread's
  residence is exactly ``W`` and its reply handler costs exactly ``So``;
* server nodes receive no reply handlers -- only request handlers contend.

The model for a given split (all by Little + Bard, equation numbers from
the paper)::

    X  = Pc / R                                  (6.2)
    Us = (X / Ps) So                             (6.4)
    Qs = (X / Ps) Rs                             (6.1, general form)
    Rs = So (1 + Qs + (C2-1)/2 Us)               (6.5, general Qs)
    R  = W + 2 St + Rs + So                      (6.7)

**Optimal allocation.**  At the throughput-maximising split the mean
number of customers per server is exactly 1 (the paper's exchange
argument), which collapses the system to closed form::

    Rs* = So (1 + sqrt((C2+1)/2))                          (6.6)
    Ps* = P Rs* / (R + Rs*)
        = P (1 + sqrt(2(C2+1))/2) So
          / (W + 2 St + (3 + sqrt(2(C2+1))) So)            (6.8)

Figure 6-2 plots the AMVA throughput curve against simulation for
``Ps = 1..31`` with the Eq. 6.8 optimum marked, plus the optimistic
LogP-style bounds ``X <= Ps/So`` and ``X <= Pc/(W + 2St + 2So)``
(:meth:`repro.core.logp.LogPModel.workpile_bound`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.core.params import MachineParams
from repro.core.solver import solve_fixed_point, solve_fixed_point_batch
from repro.mva.network import as_integer_array
from repro.mva.residual import residual_correction

__all__ = [
    "ClientServerModel",
    "WorkpileSolution",
    "solve_workpile_batch",
    "workpile_bounds_batch",
]


@dataclass(frozen=True)
class WorkpileSolution:
    """Steady-state solution of the workpile model for one (Ps, Pc) split.

    Attributes
    ----------
    servers, clients:
        The node split ``Ps`` / ``Pc``.
    throughput:
        ``X`` -- chunks processed per cycle, system-wide.
    response_time:
        ``R`` -- mean time per chunk at a client (work + round trip).
    server_residence:
        ``Rs`` -- response time of a request at a server (service +
        queueing).
    server_queue:
        ``Qs`` -- mean customers at each server (including in service).
    server_utilization:
        ``Us`` -- fraction of server time spent in request handlers.
    work, latency, handler_time:
        The parameters the solution was computed for.
    meta:
        Solver provenance.
    """

    servers: int
    clients: int
    throughput: float
    response_time: float
    server_residence: float
    server_queue: float
    server_utilization: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def X(self) -> float:  # noqa: N802 - paper notation
        return self.throughput

    @property
    def R(self) -> float:  # noqa: N802 - paper notation
        return self.response_time

    @property
    def Rs(self) -> float:  # noqa: N802 - paper notation
        return self.server_residence

    @property
    def server_contention(self) -> float:
        """Queueing delay at the server, ``Rs - So``."""
        return self.server_residence - self.handler_time

    @property
    def contention_free_cycle(self) -> float:
        """``W + 2 St + 2 So`` -- chunk cycle with an idle server."""
        return self.work + 2.0 * self.latency + 2.0 * self.handler_time

    def cycle_identity_error(self) -> float:
        """Absolute error in ``R - (W + 2 St + Rs + So)`` (Eq. 6.7)."""
        reconstructed = (
            self.work
            + 2.0 * self.latency
            + self.server_residence
            + self.handler_time
        )
        return abs(self.response_time - reconstructed)


@dataclass(frozen=True)
class ClientServerModel:
    """LoPC workpile model: throughput curves and optimal server counts.

    Parameters
    ----------
    machine:
        Architectural parameters ``(St, So, P, C^2)``.
    work:
        ``W`` -- mean client computation per chunk, in cycles.
    """

    machine: MachineParams
    work: float
    damping: float = 0.5
    tol: float = 1e-12
    max_iter: int = 50_000

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be >= 0, got {self.work!r}")
        if self.machine.gap != 0.0:
            raise ValueError(
                "LoPC assumes balanced network bandwidth (gap g = 0); "
                f"got gap={self.machine.gap!r}"
            )

    def _check_split(self, servers: int) -> int:
        if int(servers) != servers:
            raise ValueError(f"servers must be an integer, got {servers!r}")
        servers = int(servers)
        if not 1 <= servers <= self.machine.processors - 1:
            raise ValueError(
                f"servers must lie in [1, P-1] = [1, "
                f"{self.machine.processors - 1}], got {servers}"
            )
        return servers

    # ------------------------------------------------------------------
    def solve(
        self,
        servers: int,
        x0: Sequence[float] | np.ndarray | None = None,
    ) -> WorkpileSolution:
        """Solve the AMVA system for a split with ``servers`` server nodes.

        ``x0`` optionally warm-starts the fixed point from a ``[Rs]``
        state (typically a neighbouring split's server residence); the
        solution reached is the same within ``tol``.
        """
        servers = self._check_split(servers)
        m = self.machine
        clients = m.processors - servers
        so, st, cv2, w = m.handler_time, m.latency, m.handler_cv2, self.work

        def update(state: np.ndarray) -> np.ndarray:
            (rs,) = state
            r = w + 2.0 * st + rs + so  # Eq. 6.7
            lam = clients / r / servers  # per-server arrival rate X/Ps
            us = lam * so  # Eq. 6.4
            qs = lam * rs  # Eq. 6.1 general form
            new_rs = so * (1.0 + qs + residual_correction(us, cv2))  # Eq. 6.5
            return np.array([new_rs])

        result = solve_fixed_point(
            update,
            np.array([so]),
            x0=x0,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        (rs,) = result.value
        r = w + 2.0 * st + rs + so
        x = clients / r  # Eq. 6.2
        lam = x / servers
        return WorkpileSolution(
            servers=servers,
            clients=clients,
            throughput=x,
            response_time=r,
            server_residence=rs,
            server_queue=lam * rs,
            server_utilization=lam * so,
            work=w,
            latency=st,
            handler_time=so,
            meta={
                "model": "lopc-workpile",
                "iterations": result.iterations,
                "residual": result.residual,
                "cv2": cv2,
            },
        )

    def throughput(self, servers: int) -> float:
        """System throughput ``X`` for a given split (chunks/cycle)."""
        return self.solve(servers).throughput

    def throughput_curve(
        self, servers: Sequence[int] | None = None
    ) -> list[WorkpileSolution]:
        """Solve every split (default ``Ps = 1 .. P-1``) -- Figure 6-2."""
        if servers is None:
            servers = range(1, self.machine.processors)
        return [self.solve(ps) for ps in servers]

    def solve_many(
        self, servers: Sequence[int] | None = None
    ) -> list[WorkpileSolution]:
        """Vectorized :meth:`throughput_curve`: all splits in one batch.

        Bit-identical to per-split :meth:`solve` calls (same masked
        fixed-point updates), but one numpy iteration covers the whole
        curve.
        """
        if servers is None:
            servers = range(1, self.machine.processors)
        servers = [self._check_split(ps) for ps in servers]
        m = self.machine
        n = len(servers)
        return solve_workpile_batch(
            [self.work] * n,
            [m.latency] * n,
            [m.handler_time] * n,
            [m.handler_cv2] * n,
            [m.processors] * n,
            servers,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )

    # ------------------------------------------------------------------
    # Closed forms (Eqs. 6.6 and 6.8)
    # ------------------------------------------------------------------
    def optimal_server_residence(self) -> float:
        """``Rs* = So (1 + sqrt((C^2+1)/2))`` -- Eq. 6.6.

        The server response time at the throughput-optimal split, where
        the mean queue per server is exactly 1.
        """
        cv2 = self.machine.handler_cv2
        return self.machine.handler_time * (1.0 + math.sqrt((cv2 + 1.0) / 2.0))

    def optimal_servers_exact(self) -> float:
        """The (continuous) optimal server count ``Ps*`` -- Eq. 6.8."""
        m = self.machine
        rs = self.optimal_server_residence()
        r = self.work + 2.0 * m.latency + rs + m.handler_time  # Eq. 6.7
        return m.processors * rs / (r + rs)  # Eq. 6.3

    def optimal_servers(self) -> int:
        """Best integer split: round Eq. 6.8 and confirm against neighbours.

        The closed form is continuous; the discrete optimum is one of the
        two adjacent integers, so evaluate both (clamped to ``[1, P-1]``)
        and return the higher-throughput one.
        """
        exact = self.optimal_servers_exact()
        lo = max(1, min(self.machine.processors - 1, math.floor(exact)))
        hi = max(1, min(self.machine.processors - 1, math.ceil(exact)))
        candidates = sorted({lo, hi})
        return max(candidates, key=self.throughput)

    def optimal_throughput_closed_form(self) -> float:
        """Throughput at the Eq. 6.8 optimum via ``X = Ps*/Rs*`` (Eq. 6.1)."""
        return self.optimal_servers_exact() / self.optimal_server_residence()


# ---------------------------------------------------------------------------
# Vectorized batch entry point
# ---------------------------------------------------------------------------
def solve_workpile_batch(
    works: Sequence[float] | np.ndarray,
    latencies: Sequence[float] | np.ndarray,
    handler_times: Sequence[float] | np.ndarray,
    cv2s: Sequence[float] | np.ndarray,
    processors: Sequence[int] | np.ndarray,
    servers: Sequence[int] | np.ndarray,
    *,
    x0: np.ndarray | None = None,
    damping: float = 0.5,
    tol: float = 1e-12,
    max_iter: int = 50_000,
) -> list[WorkpileSolution]:
    """Solve many workpile ``(machine, W, Ps)`` points in one batch.

    Inputs broadcast to a common ``(points,)`` shape.  The scalar state
    ``[Rs]`` of every point advances through one masked
    :func:`repro.core.solver.solve_fixed_point_batch` iteration, so each
    returned :class:`WorkpileSolution` is bit-identical to the matching
    ``ClientServerModel(machine, work).solve(servers)`` call, with
    ``meta["batched"] = True`` marking the provenance.

    ``x0`` optionally warm-starts points from a ``(points,)`` or
    ``(points, 1)`` array of ``Rs`` states; non-finite entries
    (conventionally ``nan``) keep the cold ``So`` start.
    """
    w, st, so, cv2, p, ps = np.broadcast_arrays(
        np.asarray(works, dtype=float),
        np.asarray(latencies, dtype=float),
        np.asarray(handler_times, dtype=float),
        np.asarray(cv2s, dtype=float),
        as_integer_array(processors, "processors"),
        as_integer_array(servers, "servers"),
    )
    w, st, so, cv2 = (np.atleast_1d(a).ravel().copy() for a in (w, st, so, cv2))
    p, ps = (np.atleast_1d(a).ravel().copy() for a in (p, ps))
    if np.any(w < 0):
        raise ValueError("work (W) must be >= 0")
    if np.any(st < 0):
        raise ValueError("latency (St) must be >= 0")
    if np.any(so <= 0):
        raise ValueError("handler_time (So) must be > 0")
    if np.any(cv2 < 0):
        raise ValueError("handler_cv2 (C^2) must be >= 0")
    if np.any(p < 2):
        raise ValueError("processors (P) must be >= 2")
    if np.any((ps < 1) | (ps > p - 1)):
        bad = np.flatnonzero((ps < 1) | (ps > p - 1))
        raise ValueError(
            f"servers must lie in [1, P-1]; violated at point(s) "
            f"{bad.tolist()}"
        )
    clients = p - ps

    def update(state: np.ndarray, rows: np.ndarray) -> np.ndarray:
        rs = state[:, 0]
        so_r, cv2_r = so[rows], cv2[rows]
        with np.errstate(all="ignore"):
            r = w[rows] + 2.0 * st[rows] + rs + so_r  # Eq. 6.7
            lam = clients[rows] / r / ps[rows]  # per-server rate X/Ps
            us = lam * so_r  # Eq. 6.4
            qs = lam * rs  # Eq. 6.1 general form
            rc = 0.5 * (cv2_r - 1.0) * us  # residual correction
            new_rs = so_r * (1.0 + qs + rc)  # Eq. 6.5
        return new_rs[:, np.newaxis]

    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.ndim == 1:
            x0 = x0[:, np.newaxis]
    result = solve_fixed_point_batch(
        update,
        so[:, np.newaxis].copy(),
        x0=x0,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
    )
    rs = result.value[:, 0]
    r = w + 2.0 * st + rs + so
    x = clients / r  # Eq. 6.2
    lam = x / ps
    return [
        WorkpileSolution(
            servers=int(ps[i]),
            clients=int(clients[i]),
            throughput=float(x[i]),
            response_time=float(r[i]),
            server_residence=float(rs[i]),
            server_queue=float(lam[i] * rs[i]),
            server_utilization=float(lam[i] * so[i]),
            work=float(w[i]),
            latency=float(st[i]),
            handler_time=float(so[i]),
            meta={
                "model": "lopc-workpile",
                "iterations": int(result.iterations[i]),
                "residual": float(result.residual[i]),
                "cv2": float(cv2[i]),
                "batched": True,
            },
        )
        for i in range(w.size)
    ]


def workpile_bounds_batch(
    works: Sequence[float] | np.ndarray,
    latencies: Sequence[float] | np.ndarray,
    handler_times: Sequence[float] | np.ndarray,
    processors: Sequence[int] | np.ndarray,
    servers: Sequence[int] | np.ndarray,
) -> dict[str, np.ndarray]:
    """Vectorized LogP-style workpile throughput bounds (Figure 6-2).

    The closed forms of :meth:`repro.core.logp.LogPModel.workpile_server_bound`
    and :meth:`~repro.core.logp.LogPModel.workpile_client_bound` over a
    whole ``(points,)`` grid::

        server_bound = Ps / So
        client_bound = Pc / (W + 2 St + 2 So)

    Inputs broadcast to a common ``(points,)`` shape; validation matches
    the scalar methods (``1 <= Ps <= P - 1`` so both bounds exist).  The
    expressions are the same IEEE operations as the scalar methods, so
    the returned arrays are bit-identical to per-point
    :class:`~repro.core.logp.LogPModel` calls.

    Returns a mapping with ``(points,)`` arrays ``server_bound``,
    ``client_bound`` and ``bound`` (the elementwise binding minimum).
    """
    w, st, so, p, ps = np.broadcast_arrays(
        np.asarray(works, dtype=float),
        np.asarray(latencies, dtype=float),
        np.asarray(handler_times, dtype=float),
        as_integer_array(processors, "processors"),
        as_integer_array(servers, "servers"),
    )
    w, st, so = (np.atleast_1d(a).ravel().copy() for a in (w, st, so))
    p, ps = (np.atleast_1d(a).ravel().copy() for a in (p, ps))
    if np.any(w < 0):
        raise ValueError("work (W) must be >= 0")
    if np.any(st < 0):
        raise ValueError("latency (St) must be >= 0")
    if np.any(so <= 0):
        raise ValueError("handler_time (So) must be > 0")
    if np.any(p < 2):
        raise ValueError("processors (P) must be >= 2")
    if np.any((ps < 1) | (ps > p - 1)):
        bad = np.flatnonzero((ps < 1) | (ps > p - 1))
        raise ValueError(
            f"servers must lie in [1, P-1]; violated at point(s) "
            f"{bad.tolist()}"
        )
    clients = p - ps
    server_bound = ps / so
    client_bound = clients / (w + 2.0 * st + 2.0 * so)
    return {
        "server_bound": server_bound,
        "client_bound": client_bound,
        "bound": np.minimum(server_bound, client_bound),
    }
