"""Non-blocking requests: the paper's future-work extension (Chapter 7).

The thesis closes by proposing to extend LoPC to *non-blocking* requests
"using a technique pioneered by Heidelberger and Trivedi" (queueing models
for asynchronous tasks).  This module implements that extension for the
homogeneous all-to-all pattern with a send window of ``k`` outstanding
requests per thread:

* the thread computes ``W`` cycles, issues a request, and continues
  immediately *unless* ``k`` requests are already in flight, in which
  case it stalls until a reply retires one;
* because the thread keeps running while replies arrive, *both* request
  and reply handlers now interrupt it, and several replies may queue at a
  node simultaneously (the blocking model's "only one reply can queue"
  simplification no longer applies).

Model (homogeneous, per node; ``x`` = thread request rate)::

    Uq = x So           Uy = x So
    Qq = x Rq           Qy = x Ry
    Rq = So (1 + Qq + Qy + (C2-1)/2 (Uq + Uy))       as Eq. 5.9
    Ry = So (1 + Qq + Qy + (C2-1)/2 (Uq + Uy))       replies queue freely
    Rw = (W + So (Qq + Qy)) / (1 - Uq - Uy)          BKT, both classes
    T  = 2 St + Rq + Ry                              round-trip residue
    cycle = max(Rw, T / k)                           window law
    x  = 1 / cycle

The *window law* comes from the issue-time recurrence: issue ``i`` must
wait for the reply of issue ``i - k`` (window) and for its own compute
(``t_i >= t_{i-1} + Rw``), so the steady-state inter-issue time is
``max(Rw, T/k)``.  Note ``k = 1`` here is *not* the Chapter 4/5 blocking
model: a window-1 thread still overlaps its compute with the round trip
(it waits before the *next* send, not after its own), so its cycle is
``max(Rw, T)`` rather than ``Rw + T``.  As ``k -> oo`` the thread is
compute-bound at ``cycle = Rw``.  The crossover ``k* = T / Rw`` is the
bandwidth-delay product.  Validated against the simulator's non-blocking
workload in the integration tests and ``examples/nonblocking_study.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.params import MachineParams
from repro.core.solver import solve_scalar_fixed_point
from repro.mva.residual import residual_correction

__all__ = ["NonBlockingModel", "NonBlockingSolution"]


@dataclass(frozen=True)
class NonBlockingSolution:
    """Steady-state solution for the non-blocking all-to-all extension.

    Attributes
    ----------
    cycle_time:
        Mean time between successive request issues by one thread.
    throughput:
        System-wide request rate ``P / cycle_time``.
    round_trip:
        Mean request round trip ``2 St + Rq + Ry`` (latency of one
        request, which no longer bounds the issue rate once ``k`` covers
        the bandwidth-delay product).
    compute_residence, request_residence, reply_residence:
        ``Rw``, ``Rq``, ``Ry`` as in the blocking model.
    window:
        The outstanding-request limit ``k`` (``math.inf`` for unbounded).
    compute_bound:
        True when the window no longer limits throughput
        (``cycle_time == Rw``).
    """

    cycle_time: float
    throughput: float
    round_trip: float
    compute_residence: float
    request_residence: float
    reply_residence: float
    request_utilization: float
    reply_utilization: float
    window: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def compute_bound(self) -> bool:
        return math.isclose(self.cycle_time, self.compute_residence,
                            rel_tol=1e-9)

    @property
    def overlap_speedup(self) -> float:
        """Speedup over the blocking cycle ``Rw + round_trip``."""
        return (self.compute_residence + self.round_trip) / self.cycle_time


@dataclass(frozen=True)
class NonBlockingModel:
    """LoPC extension for k-outstanding non-blocking all-to-all traffic.

    Parameters
    ----------
    machine:
        Architectural parameters ``(St, So, P, C^2)``.
    window:
        Maximum outstanding requests per thread, ``k >= 1``;
        ``math.inf`` for unbounded pipelining.
    """

    machine: MachineParams
    window: float = math.inf
    damping: float = 0.5
    tol: float = 1e-12
    max_iter: int = 50_000

    def __post_init__(self) -> None:
        if not (self.window >= 1):
            raise ValueError(f"window must be >= 1, got {self.window!r}")

    def _components(self, work: float, cycle: float) -> tuple[float, float, float]:
        """``(Rw, Rq, Ry)`` implied by a candidate cycle time.

        Given the issue rate ``x = 1/cycle``, the handler equations are
        *linear*: request and reply handlers obey the same equation (both
        queue freely), so ``Rq = Ry = r`` with::

            r = So (1 + 2 x r + (C2-1) x So)   =>
            r = So (1 + (C2-1) x So) / (1 - 2 x So)

        and the BKT thread residence follows directly.  Requires
        ``2 x So < 1`` (handler load below saturation).
        """
        m = self.machine
        so, cv2 = m.handler_time, m.handler_cv2
        x = 1.0 / cycle
        load = 2.0 * x * so
        if load >= 1.0:
            raise ValueError(
                f"cycle {cycle!r} implies handler load {load:.3f} >= 1"
            )
        u = x * so
        r = so * (1.0 + 2.0 * residual_correction(u, cv2)) / (1.0 - load)
        rw = (work + so * (2.0 * x * r)) / (1.0 - load)
        return rw, r, r

    def solve(self, work: float) -> NonBlockingSolution:
        """Solve the windowed non-blocking system for work ``W``.

        The cycle map ``g(c) = max(Rw(c), T(c)/k)`` is strictly decreasing
        in ``c`` (longer cycles mean lighter load), so the fixed point is
        found by Brent bracketing just above the saturation cycle
        ``2 So`` (where each node spends its whole cycle in the two
        handlers every issue generates).

        Raises
        ------
        ValueError
            If the offered load saturates the nodes (``W <= 2 So`` with an
            unbounded window -- a finite window always self-limits).
        """
        if work < 0:
            raise ValueError(f"work must be >= 0, got {work!r}")
        m = self.machine
        so, st, k = m.handler_time, m.latency, self.window
        if math.isinf(k) and work <= 2.0 * so:
            raise ValueError(
                "unbounded non-blocking traffic saturates the node: need "
                f"W > 2 So, got W={work!r}, So={so!r}"
            )

        def cycle_map(c: float) -> float:
            rw, rq, ry = self._components(work, c)
            if math.isfinite(k):
                return max(rw, (2.0 * st + rq + ry) / k)
            return rw

        lower = 2.0 * so * (1.0 + 1e-9) + 1e-12
        upper = work + 4.0 * st + 8.0 * so + 2.0 * so * (
            k if math.isfinite(k) else 1.0
        )
        cycle = solve_scalar_fixed_point(
            cycle_map, lower, max(upper, lower * 2.0), tol=self.tol
        )
        rw, rq, ry = self._components(work, cycle)
        round_trip = 2.0 * st + rq + ry
        x = 1.0 / cycle
        return NonBlockingSolution(
            cycle_time=cycle,
            throughput=m.processors * x,
            round_trip=round_trip,
            compute_residence=rw,
            request_residence=rq,
            reply_residence=ry,
            request_utilization=x * so,
            reply_utilization=x * so,
            window=k,
            work=work,
            latency=st,
            handler_time=so,
            meta={"model": "lopc-nonblocking", "cv2": m.handler_cv2},
        )

    def critical_window(self, work: float) -> float:
        """The window ``k* = round_trip / Rw`` where throughput saturates.

        Below ``k*`` the thread stalls on the window (cycle ``T/k``);
        above it the thread is compute-bound and extra outstanding
        requests buy nothing.  ``k* <= 1`` means even a window of one
        never stalls (the round trip hides entirely under the compute).
        """
        unbounded = NonBlockingModel(
            machine=self.machine,
            window=math.inf,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        ).solve(work)
        return unbounded.round_trip / unbounded.compute_residence
