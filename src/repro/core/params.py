"""Parameterisation of the LoPC model (paper Section 3, Table 3.1).

LoPC is parameterised *exactly like LogP*: an architectural
characterisation plus an algorithmic characterisation.

Architectural parameters (Table 3.1)::

    LoPC   LogP   Description
    ----   ----   -------------------------------------------------------
    St     L      Average wire time (latency) in the interconnect
    So     o      Average cost of message dispatch (interrupt + handler)
    --     g      Peak processor-to-network bandwidth gap (LoPC: assumed 0)
    P      P      Number of processors
    C2     --     Variability of message processing time (optional;
                  squared coefficient of variation, default 1 = exponential)

Algorithmic parameters::

    W      average computation time between blocking requests (= m/n for
           an algorithm doing m cycles of arithmetic and n requests)
    n      total number of requests issued by each node

This module provides frozen dataclasses for both, the LogP <-> LoPC
mapping, and the rendering of Table 3.1 used by the ``table-3.1``
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

__all__ = [
    "AlgorithmParams",
    "LoPCParams",
    "MachineParams",
    "architectural_parameter_table",
]


@dataclass(frozen=True)
class MachineParams:
    """Architectural parameters of the LoPC model.

    Attributes
    ----------
    latency:
        ``St`` -- mean one-way wire time in the interconnect, in cycles.
        Corresponds exactly to LogP's ``L``.  Excludes all processing cost.
    handler_time:
        ``So`` -- mean cost of dispatching one message: taking the
        interrupt plus running the (request or reply) handler.
        Corresponds approximately to LogP's ``o``, but LoPC assumes an
        interrupt model with cheap sends rather than LogP's polling model.
    processors:
        ``P`` -- number of processing nodes (>= 2: a node cannot make a
        remote request to itself).
    handler_cv2:
        ``C^2`` -- squared coefficient of variation of handler service
        time.  ``1`` (default) models exponential handlers as in classical
        MVA; ``0`` models the near-deterministic short handlers the paper
        argues are typical.
    gap:
        LogP's ``g`` (inverse peak bandwidth).  LoPC assumes balanced
        network interfaces, i.e. ``gap = 0``; a non-zero value is stored
        for LogP bookkeeping but rejected by the contention solvers.
    """

    latency: float
    handler_time: float
    processors: int
    handler_cv2: float = 1.0
    gap: float = 0.0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency (St) must be >= 0, got {self.latency!r}")
        if self.handler_time <= 0:
            raise ValueError(
                f"handler_time (So) must be > 0, got {self.handler_time!r}"
            )
        if int(self.processors) != self.processors or self.processors < 2:
            raise ValueError(
                f"processors (P) must be an integer >= 2, got {self.processors!r}"
            )
        if self.handler_cv2 < 0:
            raise ValueError(
                f"handler_cv2 (C^2) must be >= 0, got {self.handler_cv2!r}"
            )
        if self.gap < 0:
            raise ValueError(f"gap (g) must be >= 0, got {self.gap!r}")

    # Convenience aliases matching the paper's symbols -------------------

    @property
    def St(self) -> float:  # noqa: N802 - paper notation
        """Paper symbol for :attr:`latency`."""
        return self.latency

    @property
    def So(self) -> float:  # noqa: N802 - paper notation
        """Paper symbol for :attr:`handler_time`."""
        return self.handler_time

    @property
    def P(self) -> int:  # noqa: N802 - paper notation
        """Paper symbol for :attr:`processors`."""
        return int(self.processors)

    @property
    def cv2(self) -> float:
        """Paper symbol ``C^2`` for :attr:`handler_cv2`."""
        return self.handler_cv2

    def with_cv2(self, cv2: float) -> "MachineParams":
        """Return a copy with a different handler variability."""
        return replace(self, handler_cv2=cv2)

    @classmethod
    def from_logp(
        cls,
        L: float,  # noqa: N803 - paper notation
        o: float,
        P: int,  # noqa: N803 - paper notation
        g: float = 0.0,
        handler_cv2: float = 1.0,
    ) -> "MachineParams":
        """Build LoPC machine parameters from a LogP characterisation.

        ``St = L``, ``So = o`` and ``P = P`` (Table 3.1); ``g`` is carried
        along but LoPC assumes balanced bandwidth (``g = 0``).
        """
        return cls(
            latency=L, handler_time=o, processors=P, handler_cv2=handler_cv2, gap=g
        )

    def to_logp(self) -> dict[str, float]:
        """The LogP view of these parameters (Table 3.1, right column)."""
        return {"L": self.latency, "o": self.handler_time, "g": self.gap,
                "P": float(self.processors)}

    def to_dict(self) -> dict[str, float | int]:
        """JSON-scalar mapping, stable for cache keys and sweep specs."""
        return {
            "latency": self.latency,
            "handler_time": self.handler_time,
            "processors": int(self.processors),
            "handler_cv2": self.handler_cv2,
            "gap": self.gap,
        }

    @classmethod
    def from_dict(cls, data: dict[str, float | int]) -> "MachineParams":
        """Inverse of :meth:`to_dict` (validates via ``__post_init__``)."""
        return cls(**data)


@dataclass(frozen=True)
class AlgorithmParams:
    """Algorithmic characterisation shared by LogP and LoPC.

    Attributes
    ----------
    work:
        ``W`` -- mean computation time between blocking requests, in
        cycles.  Derived as total arithmetic per node over total requests
        per node, ``W = m / n`` (Section 3's matrix-vector example).
    requests:
        ``n`` -- total number of requests issued by each node.  Used only
        to scale the per-cycle response time ``R`` to a total runtime
        ``n * R``; the steady-state solution itself depends only on ``W``.
    """

    work: float
    requests: int = 1

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work (W) must be >= 0, got {self.work!r}")
        if int(self.requests) != self.requests or self.requests < 1:
            raise ValueError(
                f"requests (n) must be an integer >= 1, got {self.requests!r}"
            )

    @property
    def W(self) -> float:  # noqa: N802 - paper notation
        """Paper symbol for :attr:`work`."""
        return self.work

    @property
    def n(self) -> int:
        """Paper symbol for :attr:`requests`."""
        return int(self.requests)

    @classmethod
    def from_operation_counts(cls, arithmetic: float, messages: int,
                              cycles_per_op: float = 1.0) -> "AlgorithmParams":
        """Characterise an algorithm from raw operation counts.

        Parameters
        ----------
        arithmetic:
            Total arithmetic operations ``m`` per node.
        messages:
            Total blocking requests ``n`` per node.
        cycles_per_op:
            Cost of one arithmetic operation in cycles.

        Returns ``W = m * cycles_per_op / n`` with ``n`` requests -- the
        derivation of Section 3.
        """
        if messages < 1:
            raise ValueError(f"messages must be >= 1, got {messages!r}")
        if arithmetic < 0:
            raise ValueError(f"arithmetic must be >= 0, got {arithmetic!r}")
        if cycles_per_op <= 0:
            raise ValueError(f"cycles_per_op must be > 0, got {cycles_per_op!r}")
        return cls(work=arithmetic * cycles_per_op / messages, requests=messages)

    def to_dict(self) -> dict[str, float | int]:
        """JSON-scalar mapping, stable for cache keys and sweep specs."""
        return {"work": self.work, "requests": int(self.requests)}

    @classmethod
    def from_dict(cls, data: dict[str, float | int]) -> "AlgorithmParams":
        """Inverse of :meth:`to_dict` (validates via ``__post_init__``)."""
        return cls(**data)


@dataclass(frozen=True)
class LoPCParams:
    """A complete LoPC parameterisation: machine + algorithm."""

    machine: MachineParams
    algorithm: AlgorithmParams

    @property
    def contention_free_cycle(self) -> float:
        """``W + 2*St + 2*So`` -- the no-contention compute/request cycle."""
        return (
            self.algorithm.work
            + 2.0 * self.machine.latency
            + 2.0 * self.machine.handler_time
        )

    def __iter__(self) -> Iterator[float]:
        """Iterate ``(W, St, So, P, C^2)`` -- handy for table rows."""
        yield self.algorithm.work
        yield self.machine.latency
        yield self.machine.handler_time
        yield float(self.machine.processors)
        yield self.machine.handler_cv2

    def to_dict(self) -> dict[str, dict[str, float | int]]:
        """Nested JSON mapping of both halves of the parameterisation."""
        return {
            "machine": self.machine.to_dict(),
            "algorithm": self.algorithm.to_dict(),
        }

    @classmethod
    def from_dict(
        cls, data: dict[str, dict[str, float | int]]
    ) -> "LoPCParams":
        """Inverse of :meth:`to_dict`."""
        return cls(
            machine=MachineParams.from_dict(data["machine"]),
            algorithm=AlgorithmParams.from_dict(data["algorithm"]),
        )


_TABLE_3_1 = (
    ("St", "L", "Average wire time (latency) in the interconnect"),
    ("So", "o", "Average cost of message dispatch"),
    ("-", "g", "Peak processor to network bandwidth"),
    ("P", "P", "Number of processors"),
    ("C2", "-", "Variability in message processing time (optional)"),
)


def architectural_parameter_table() -> tuple[tuple[str, str, str], ...]:
    """Rows of Table 3.1: ``(LoPC symbol, LogP symbol, description)``.

    Returned as data (not a formatted string) so the experiment runner and
    docs render it consistently.
    """
    return _TABLE_3_1
