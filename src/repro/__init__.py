"""repro -- reproduction of *LoPC: Modeling Contention in Parallel Algorithms*.

LoPC (Frank, PPoPP 1997 / MIT MS thesis 1996) extends the LogP model of
parallel computation with a contention term ``C`` computed by approximate
mean value analysis, for active-message machines where message handlers
interrupt the computation thread and queue in a hardware FIFO.

Package layout
--------------
``repro.core``
    The LoPC model family: homogeneous all-to-all (Section 5),
    client-server workpile (Chapter 6), the general Appendix-A model,
    the shared-memory (protocol-processor) variant, the rule-of-thumb
    bounds, the non-blocking extension, and the contention-free LogP
    baseline.
``repro.mva``
    Mean-value-analysis substrate: Little's law, residual life, Bard's
    approximation, the BKT priority approximation, exact and approximate
    MVA for closed networks.
``repro.sim``
    Event-driven simulator of the paper's machine model (the validation
    substrate that stands in for MIT Alewife).
``repro.workloads``
    Paired model/simulation workload builders: all-to-all, workpile,
    matrix-vector multiply, visit-matrix patterns.
``repro.experiments``
    One runner per table/figure in the paper's evaluation, plus the
    accuracy-claims checks.
``repro.validation``
    Model-vs-simulation comparison utilities.

``repro.api``
    The fluent scenario facade over all of the above: one
    :func:`scenario` entry point with ``analytic()`` / ``bounds()`` /
    ``simulate()`` backends and cache-backed ``study()`` sweeps.

Quick start
-----------
>>> from repro import scenario
>>> sc = scenario("alltoall", P=32, St=40.0, So=200.0, C2=0.0, W=1024.0)
>>> round(sc.analytic().response_time, 1)  # doctest: +SKIP
1510.3
>>> sc.bounds()["upper"] >= sc.analytic().R  # doctest: +SKIP
True

(The model classes underneath -- ``AllToAllModel`` and friends -- stay
importable for code that wants the full solution objects.)
"""

from repro.api import (
    Scenario,
    Solution,
    Study,
    UnsupportedBackend,
    list_scenarios,
    scenario,
)
from repro.opt import OptResult
from repro.core import (
    AlgorithmParams,
    AllToAllModel,
    ClientServerModel,
    GeneralLoPCModel,
    LoPCParams,
    LogPModel,
    MachineParams,
    ModelSolution,
    NonBlockingModel,
    SharedMemoryModel,
    contention_bounds,
    rule_of_thumb_response,
)

__version__ = "1.0.0"

__all__ = [
    "AlgorithmParams",
    "AllToAllModel",
    "ClientServerModel",
    "GeneralLoPCModel",
    "LoPCParams",
    "LogPModel",
    "MachineParams",
    "ModelSolution",
    "NonBlockingModel",
    "OptResult",
    "Scenario",
    "SharedMemoryModel",
    "Solution",
    "Study",
    "UnsupportedBackend",
    "__version__",
    "contention_bounds",
    "list_scenarios",
    "rule_of_thumb_response",
]
