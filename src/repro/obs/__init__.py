"""``repro.obs``: the unified telemetry layer.

A dependency-free observability subsystem spanning the whole stack:

* :class:`~repro.obs.metrics.MetricsRegistry` -- thread-safe counters,
  gauges, summary stats and ``span(name)`` timers;
* :class:`~repro.obs.events.EventLog` -- a structured JSONL event sink;
* :class:`~repro.obs.progress.ProgressReporter` /
  :class:`~repro.obs.progress.ConsoleProgress` -- the progress callback
  protocol and its console renderer;
* :mod:`~repro.obs.context` -- the active-bundle context the
  instrumented layers look up (``telemetry(...)`` to install one).

The design contract, shared with :mod:`repro.sim.trace`: when no bundle
is active, every hook in the solvers, kernels, simulator and sweep
runner costs a single ``is None`` check.  Enabling metrics never
changes results -- instrumentation observes the values the solvers
already computed (iteration counts, residuals, convergence masks) and
is covered by bit-identity tests against telemetry-off runs.

The helpers below fold solver diagnostics into a bundle; they live here
so the solver and kernel hook sites stay one call each.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.context import (
    Telemetry,
    activate,
    active,
    current_metrics,
    telemetry,
)
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ConsoleProgress, ProgressReporter, as_progress

__all__ = [
    "ConsoleProgress",
    "EventLog",
    "MetricsRegistry",
    "ProgressReporter",
    "Telemetry",
    "activate",
    "active",
    "as_progress",
    "current_metrics",
    "observe_batch_solve",
    "observe_opt_query",
    "observe_opt_step",
    "observe_scalar_solve",
    "telemetry",
]

#: Cap on recorded residual trajectories (one float per iteration).
TRAJECTORY_CAP = 4096


def observe_scalar_solve(
    tel: Telemetry,
    name: str,
    iterations: int,
    residual: float,
    converged: bool,
    trajectory: "list[float] | None" = None,
) -> None:
    """Fold one scalar solve's diagnostics into a telemetry bundle."""
    metrics = tel.metrics
    if metrics is not None:
        metrics.inc(f"{name}.solves")
        metrics.inc(f"{name}.converged" if converged else f"{name}.failed")
        metrics.observe(f"{name}.iterations", iterations)
        if math.isfinite(residual):
            metrics.observe(f"{name}.residual", residual)
    if tel.events is not None:
        tel.events.emit(
            name,
            iterations=int(iterations),
            residual=float(residual),
            converged=bool(converged),
            residual_trajectory=trajectory,
        )


def observe_batch_solve(
    tel: Telemetry,
    name: str,
    iterations: np.ndarray,
    converged: np.ndarray,
    residuals: np.ndarray | None = None,
    trajectory: "list[float] | None" = None,
    seeded: np.ndarray | None = None,
    **extra: object,
) -> None:
    """Fold one batch kernel's per-point diagnostics into a bundle.

    ``iterations`` and ``converged`` are the kernel's ``(points,)``
    arrays; the registry sees per-point iteration statistics (via
    ``observe_many``) and converged/failed counts, the event log one
    summary event -- never one record per point.

    ``seeded`` is the warm-start mask for solves given per-point initial
    states: True rows started from a caller-provided seed, False rows
    from the kernel's cold start.  When present, the iteration stats are
    additionally split into ``{name}.warm_iterations`` /
    ``{name}.cold_iterations`` summaries and the event carries the
    seeded/cold point counts, so warm-start effectiveness is measurable
    from `stats` output alone.
    """
    n_points = int(np.asarray(converged).size)
    if n_points == 0:
        return
    iter_arr = np.asarray(iterations)
    n_converged = int(np.asarray(converged).sum())
    seed_arr = None if seeded is None else np.asarray(seeded, dtype=bool)
    metrics = tel.metrics
    if metrics is not None:
        metrics.inc(f"{name}.solves")
        metrics.inc(f"{name}.points", n_points)
        metrics.inc(f"{name}.converged", n_converged)
        if n_points - n_converged:
            metrics.inc(f"{name}.failed", n_points - n_converged)
        metrics.observe_many(f"{name}.iterations", iter_arr)
        if seed_arr is not None:
            warm = iter_arr[seed_arr]
            cold = iter_arr[~seed_arr]
            if warm.size:
                metrics.observe_many(f"{name}.warm_iterations", warm)
            if cold.size:
                metrics.observe_many(f"{name}.cold_iterations", cold)
        if residuals is not None:
            res = np.asarray(residuals)
            finite = res[np.isfinite(res)]
            if finite.size:
                metrics.observe_many(f"{name}.residual", finite)
    if tel.events is not None:
        if seed_arr is not None:
            n_seeded = int(seed_arr.sum())
            extra = {
                "seeded": n_seeded,
                "cold": n_points - n_seeded,
                **extra,
            }
        tel.events.emit(
            name,
            points=n_points,
            converged=n_converged,
            iterations_min=int(iter_arr.min()),
            iterations_max=int(iter_arr.max()),
            iterations_mean=float(iter_arr.mean()),
            residual_trajectory=trajectory,
            **extra,
        )


def observe_opt_step(tel: Telemetry, **fields: object) -> None:
    """Fold one optimizer iteration into a bundle (``opt.step`` event +
    step counter); called from the search drivers' ``on_step`` hooks."""
    if tel.metrics is not None:
        tel.metrics.inc("opt.steps")
    if tel.events is not None:
        # The search drivers tag their payloads "kind": bisect/golden/...;
        # remap so it cannot collide with the event's own kind field.
        fields = dict(fields)
        method = fields.pop("kind", None)
        if method is not None:
            fields["search"] = method
        tel.events.emit("opt.step", **fields)


def observe_opt_query(
    tel: Telemetry,
    scenario: str,
    mode: str,
    method: str,
    solves: int,
    points: int,
    converged: bool,
) -> None:
    """Fold one completed inverse query into a bundle.

    The headline statistic is ``opt.solves_per_query`` -- the number of
    batch-solver dispatches one answer cost, the quantity
    ``benchmarks/bench_opt.py`` compares against a full grid scan.
    """
    if tel.metrics is not None:
        metrics = tel.metrics
        metrics.inc("opt.queries")
        metrics.inc("opt.solves", solves)
        metrics.inc("opt.points", points)
        metrics.inc("opt.converged" if converged else "opt.failed")
        metrics.observe("opt.solves_per_query", solves)
        metrics.observe("opt.points_per_query", points)
    if tel.events is not None:
        tel.events.emit(
            "opt.query",
            scenario=scenario,
            mode=mode,
            method=method,
            solves=int(solves),
            points=int(points),
            converged=bool(converged),
        )
