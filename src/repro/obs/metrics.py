"""Thread-safe metrics: counters, gauges, summary stats, and timers.

:class:`MetricsRegistry` is the one mutable object of the telemetry
layer.  Hooks all over the stack -- the fixed-point solvers, the batch
MVA kernels, the simulator run loops, the sweep runner and executors --
record into whichever registry is active (see :mod:`repro.obs.context`);
when none is, every hook is a single ``is None`` check, mirroring the
``node.tracer`` contract of :mod:`repro.sim.trace`.

Four instrument families, all keyed by dotted names:

``inc(name, n)``
    Monotonic counters (``sim.events``, ``sweep.cache.hits`` ...).
``gauge(name, v)`` / ``gauge_max(name, v)``
    Last-value and high-water gauges (``sim.heap_high_water``).
``observe(name, v)`` / ``observe_many(name, array)``
    Summary statistics -- count/total/min/max (and a derived mean) --
    for per-solve observations like iteration counts.  ``observe_many``
    folds a whole numpy array in O(1) registry operations, which is what
    the batch kernels feed per-point iteration vectors through.
``span(name)``
    A context manager timing a block into the timer family.

Everything is JSON-serialisable through :meth:`MetricsRegistry.as_dict`
(the schema the ``--metrics`` flag writes and ``lopc-repro stats``
renders) and guarded by one re-entrant lock, so pool-free concurrent
use (threads sharing a registry) is safe.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

__all__ = ["MetricsRegistry"]


class _Summary:
    """Running count/total/min/max of one observation series."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, count: int, total: float, lo: float, hi: float) -> None:
        self.count += count
        self.total += total
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    def as_dict(self) -> dict[str, float]:
        mean = self.total / self.count if self.count else 0.0
        return {
            "count": int(self.count),
            "total": float(self.total),
            "min": float(self.min) if self.count else 0.0,
            "max": float(self.max) if self.count else 0.0,
            "mean": float(mean),
        }


class MetricsRegistry:
    """A process-local registry of counters, gauges, stats and timers."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._stats: dict[str, _Summary] = {}
        self._timers: dict[str, _Summary] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    # -- gauges --------------------------------------------------------
    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name`` to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def gauge_max(self, name: str, value: float) -> None:
        """Raise the gauge ``name`` to ``value`` if it is a new high."""
        value = float(value)
        with self._lock:
            if value > self._gauges.get(name, -math.inf):
                self._gauges[name] = value

    # -- observations --------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Fold one observation into the summary stats for ``name``."""
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = _Summary()
            stat.add(float(value))

    def observe_many(
        self, name: str, values: Sequence[float] | np.ndarray
    ) -> None:
        """Fold a whole array of observations in O(1) registry updates.

        The batch kernels push per-point iteration vectors through this;
        the reduction happens in numpy, the registry sees one update.
        """
        arr = np.asarray(values, dtype=float)
        if arr.size == 0:
            return
        count = int(arr.size)
        total = float(arr.sum())
        lo = float(arr.min())
        hi = float(arr.max())
        with self._lock:
            stat = self._stats.get(name)
            if stat is None:
                stat = self._stats[name] = _Summary()
            stat.add_many(count, total, lo, hi)

    # -- timers --------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block into the timer family (seconds)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            with self._lock:
                stat = self._timers.get(name)
                if stat is None:
                    stat = self._timers[name] = _Summary()
                stat.add(elapsed)

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, dict]:
        """JSON-serialisable snapshot: the ``--metrics`` file schema."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "stats": {k: s.as_dict() for k, s in self._stats.items()},
                "timers": {k: s.as_dict() for k, s in self._timers.items()},
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, stats={len(self._stats)}, "
                f"timers={len(self._timers)})"
            )
