"""Structured JSONL event sink.

An :class:`EventLog` records timestamped, typed events -- one JSON
object per line when backed by a file, plain dicts when in-memory.
The solvers emit one end-of-solve event (with the residual trajectory
when one was collected), the sweep runner emits ``sweep.start`` /
``sweep.chunk`` / ``sweep.finish``, the simulator layer emits per-run
summaries.  Events are *never* recorded per simulator event or per
solver iteration: a sink stays cheap enough to leave on for whole
studies.

The sink accepts a path (opened and owned by the log), an open
file-like object (borrowed; the caller closes it), or nothing (an
in-memory list, handy in tests and for folding into result metadata).
"""

from __future__ import annotations

import io
import json
import threading
import time
from pathlib import Path
from typing import Union

__all__ = ["EventLog"]

SinkLike = Union["EventLog", str, Path, io.IOBase, None]


class EventLog:
    """A thread-safe, append-only log of structured events."""

    def __init__(self, sink: str | Path | io.IOBase | None = None) -> None:
        self._lock = threading.Lock()
        self._records: list[dict] | None = None
        self._owns_file = False
        if sink is None:
            self._file = None
            self._records = []
        elif isinstance(sink, (str, Path)):
            path = Path(sink)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._file = path.open("w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink

    @classmethod
    def coerce(cls, sink: SinkLike) -> "EventLog | None":
        """An :class:`EventLog` for any accepted sink spelling, or None."""
        if sink is None or isinstance(sink, EventLog):
            return sink
        return cls(sink)

    def emit(self, kind: str, **fields: object) -> None:
        """Record one event; ``kind`` plus flat JSON-serialisable fields."""
        record = {"kind": kind, "time": time.time()}
        record.update(fields)
        with self._lock:
            if self._file is not None:
                self._file.write(json.dumps(record) + "\n")
            else:
                self._records.append(record)

    @property
    def records(self) -> list[dict]:
        """In-memory records (empty for file-backed logs)."""
        with self._lock:
            return list(self._records) if self._records is not None else []

    def close(self) -> None:
        """Flush and close a file the log opened itself (else a no-op)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()
                if self._owns_file:
                    self._file.close()
                    self._file = None
                    self._records = []

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
