"""The active-telemetry context: how hooks find the registry.

The instrumented layers (solvers, batch kernels, simulator, executors)
cannot take a ``metrics=`` argument without threading it through every
model and evaluator signature -- and through the cache keys those
signatures feed.  Instead, one module-level *active bundle* is
installed for the duration of a run (:func:`activate`, used by
``run_sweep`` and the CLI) and hooks look it up:

    tel = context.active()
    if tel is None:          # the disabled path: one check, no work
        ...

``active() is None`` is the whole disabled-overhead story, mirroring
the ``node.tracer`` idiom of :mod:`repro.sim.trace`.  The bundle is
process-local: process-pool workers never see the parent's registry
(their wall time and event counts travel back in record meta instead),
which is documented behaviour, not an accident.

:func:`telemetry` is the public convenience wrapper: it coerces path /
callable arguments and activates the bundle around a ``with`` block, so
any code path -- not just ``run_sweep`` -- can be observed::

    with telemetry(metrics=reg):
        model.solve_work(1000.0)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.events import EventLog, SinkLike
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter, as_progress

__all__ = ["Telemetry", "activate", "active", "current_metrics", "telemetry"]


@dataclass(frozen=True)
class Telemetry:
    """The bundle of sinks a run records into (any subset may be None)."""

    metrics: MetricsRegistry | None = None
    events: EventLog | None = None
    progress: ProgressReporter | None = None

    @property
    def enabled(self) -> bool:
        return (
            self.metrics is not None
            or self.events is not None
            or self.progress is not None
        )


_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The currently-installed bundle, or None (telemetry disabled)."""
    return _ACTIVE


def current_metrics() -> MetricsRegistry | None:
    """Shorthand for the active bundle's registry (hot-path hooks)."""
    tel = _ACTIVE
    return tel.metrics if tel is not None else None


@contextmanager
def activate(tel: Telemetry | None) -> Iterator[Telemetry | None]:
    """Install ``tel`` as the active bundle for the block (re-entrant)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tel
    try:
        yield tel
    finally:
        _ACTIVE = previous


@contextmanager
def telemetry(
    metrics: MetricsRegistry | bool | None = None,
    events: SinkLike = None,
    progress: object = None,
) -> Iterator[Telemetry]:
    """Activate a telemetry bundle around a block, coercing sink spellings.

    ``metrics=True`` creates a fresh :class:`MetricsRegistry` (read it
    off the yielded bundle); ``events`` accepts a path, an open file, or
    an :class:`EventLog`; ``progress`` accepts a reporter or a bare
    ``(done, total, info)`` callable.  An event log opened here (from a
    path) is closed on exit.
    """
    if metrics is True:
        metrics = MetricsRegistry()
    elif metrics is False:
        metrics = None
    own_events = not isinstance(events, (EventLog, type(None)))
    log = EventLog.coerce(events)
    tel = Telemetry(
        metrics=metrics, events=log, progress=as_progress(progress)
    )
    try:
        with activate(tel):
            yield tel
    finally:
        if own_events and log is not None:
            log.close()
