"""Progress reporting: a tiny callback protocol plus a console renderer.

A progress reporter is anything with an ``update(done, total, info)``
method; :func:`as_progress` also adapts a bare callable of the same
three arguments, so ``run_sweep(..., progress=print_fn)`` works without
ceremony.  ``info`` is a flat mapping of whatever the emitter knows --
the sweep runner sends cache hit/miss counts, the batch/scalar/sim
routing split so far, elapsed seconds and an ETA.

:class:`ConsoleProgress` renders one line per update to ``stderr``
(stdout stays clean for result tables), which is what the CLI's
``--progress`` flag installs.
"""

from __future__ import annotations

import sys
from typing import Callable, Mapping, Protocol, runtime_checkable

__all__ = ["ConsoleProgress", "ProgressReporter", "as_progress"]


@runtime_checkable
class ProgressReporter(Protocol):
    """The callback protocol the sweep runner (and Study.run) accept."""

    def update(
        self, done: int, total: int, info: Mapping[str, object]
    ) -> None:  # pragma: no cover - protocol signature
        ...


class _CallbackProgress:
    """Adapter wrapping a plain ``(done, total, info)`` callable."""

    def __init__(self, func: Callable[[int, int, Mapping], None]) -> None:
        self._func = func

    def update(self, done: int, total: int, info: Mapping[str, object]) -> None:
        self._func(done, total, info)


class ConsoleProgress:
    """Render progress as one line per update (stderr by default)."""

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr

    def update(self, done: int, total: int, info: Mapping[str, object]) -> None:
        pct = 100.0 * done / total if total else 100.0
        parts = [f"{done}/{total} ({pct:.0f}%)"]
        label = info.get("spec")
        if label:
            parts.insert(0, f"[{label}]")
        hits = info.get("cache_hits")
        if hits is not None:
            parts.append(f"cache {hits} hit(s)")
        routing = info.get("routing")
        if routing:
            split = "/".join(
                f"{routing[k]} {k}" for k in ("batch", "scalar", "sim")
                if routing.get(k)
            )
            if split:
                parts.append(split)
        eta = info.get("eta")
        if eta is not None:
            parts.append(f"eta {float(eta):.1f}s")
        print(" ".join(str(p) for p in parts), file=self.stream, flush=True)


def as_progress(progress: object) -> "ProgressReporter | None":
    """Coerce ``None`` / reporter / bare callable to a reporter (or None)."""
    if progress is None:
        return None
    if hasattr(progress, "update"):
        return progress  # type: ignore[return-value]
    if callable(progress):
        return _CallbackProgress(progress)
    raise TypeError(
        f"progress must be None, a reporter with .update(), or a callable; "
        f"got {progress!r}"
    )
