"""Scenario machinery: typed schemas, backends, and the fluent facade.

A *scenario class* declares, in one place, everything the system knows
about one workload: its parameter schema (:class:`Param` entries in the
paper's notation, plus :class:`ParamFamily` patterns for open-ended
parameter sets like the multi-class ``N{c}``/``D{c}_{k}`` encoding) and
its :class:`Backend` implementations -- ``analytic``, ``bounds`` and
``sim`` functions with their result-affecting defaults and optional
vectorized batch kernels.  The concrete declarations live in
:mod:`repro.api.scenarios`; :mod:`repro.sweep.evaluators` registers the
same backends under their legacy string names, so the facade and the
string-keyed sweep API are two views of one registry.

Instantiating a scenario class (usually via the :func:`scenario`
factory) binds parameter values::

    sc = scenario("alltoall", P=32, St=40.0, So=200.0, C2=0.0, W=1000.0)
    sc.analytic().response_time     # LoPC AMVA solution
    sc.bounds()["upper"]            # Eq. 5.12 rule-of-thumb bound
    sc.simulate(seed=7).R           # event-driven measurement
    sc.study(W=range(2, 2049, 64))  # -> Study over the existing sweeps

Parameter values are kept *verbatim* (no silent coercion): the sweep
cache keys on the canonical JSON of the parameters, so ``W=2`` and
``W=2.0`` are different cache records and the facade must hand the
runner exactly what the caller wrote, just like a hand-built
:class:`~repro.sweep.spec.SweepSpec` would.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

__all__ = [
    "Backend",
    "Param",
    "ParamFamily",
    "REQUIRED",
    "Scenario",
    "UnsupportedBackend",
    "find_backend",
    "get_scenario_class",
    "list_scenarios",
    "scenario",
]


class UnsupportedBackend(ValueError):
    """A scenario has no backend for the requested role.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; carries the scenario and the roles it
    *does* support so the message is actionable.
    """

    def __init__(self, scenario_name: str, role: str, available: Sequence[str]):
        self.scenario = scenario_name
        self.role = role
        self.available = tuple(available)
        known = ", ".join(self.available) or "(none)"
        super().__init__(
            f"scenario {scenario_name!r} has no {role!r} backend; "
            f"available: {known}"
        )


class _Required:
    """Sentinel: a schema parameter with no default."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "REQUIRED"


#: Marks a :class:`Param` the caller must supply (directly or on an axis).
REQUIRED = _Required()


@dataclass(frozen=True)
class Param:
    """One named scenario parameter.

    ``type`` drives CLI string parsing and loose validation only --
    values are *not* converted, so cache keys match hand-built sweeps.
    ``control=True`` marks simulation controls (``cycles``, ``seed``,
    ``streams`` ...) that only the ``sim`` backend consumes.

    ``lo``/``hi`` declare an optional numeric validity range.  Besides
    documentation, they mark the parameter as an *optimizable axis*:
    ``optimize(over={name: (a, b)})`` validates the search box against
    them, and :meth:`Scenario.optimizable` lists them.
    """

    name: str
    type: type
    default: object = REQUIRED
    doc: str = ""
    control: bool = False
    lo: float | None = None
    hi: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("parameter name must be non-empty")
        if self.type not in (int, float, bool, str):
            raise ValueError(
                f"parameter {self.name!r} type must be int/float/bool/str, "
                f"got {self.type!r}"
            )
        if (self.lo is None) != (self.hi is None):
            raise ValueError(
                f"parameter {self.name!r} must declare lo and hi together"
            )
        if self.lo is not None and self.type not in (int, float):
            raise ValueError(
                f"parameter {self.name!r}: lo/hi bounds need a numeric type"
            )
        if self.lo is not None and not float(self.lo) < float(self.hi):
            raise ValueError(
                f"parameter {self.name!r}: lo ({self.lo}) must be below "
                f"hi ({self.hi})"
            )

    @property
    def optimizable(self) -> bool:
        """True when the schema declares a search range for this parameter."""
        return self.lo is not None

    @property
    def required(self) -> bool:
        """True when the caller must supply this parameter."""
        return self.default is REQUIRED


@dataclass(frozen=True)
class ParamFamily:
    """An open-ended parameter set matched by pattern.

    The multi-class scenario encodes classes and centres as flat scalars
    (``N0``, ``Z1``, ``D0_2`` ...) so networks of any shape stay
    sweepable and cacheable; a family declares one such pattern with a
    display ``template`` for docs and CLI help.
    """

    template: str
    pattern: str
    type: type
    doc: str = ""

    def __post_init__(self) -> None:
        re.compile(self.pattern)  # fail fast on a bad declaration

    def matches(self, name: str) -> bool:
        """True when ``name`` belongs to this family."""
        return re.fullmatch(self.pattern, name) is not None


@dataclass(frozen=True)
class Backend:
    """One way of evaluating a scenario point.

    Attributes
    ----------
    role:
        ``"analytic"``, ``"bounds"`` or ``"sim"`` -- the facade method
        this backend serves.
    evaluator:
        Legacy registry name (:mod:`repro.sweep.evaluators` registers
        ``func``/``batch`` under it, preserving every existing cache
        key and spec file).
    func:
        The point evaluator: flat params mapping -> flat values dict
        (``_``-prefixed keys become metadata).  Exactly the callable the
        string registry serves, so facade and legacy results are
        bit-identical by construction.
    uses:
        Schema parameter names this backend consumes, or ``None`` for
        every schema parameter (families included).  Parameters outside
        ``uses`` are silently dropped when compiling for this backend,
        so one scenario instance can carry both model and simulation
        parameters.
    defaults:
        Result-affecting defaults, merged into the parameters *before*
        cache keying (mirrors ``register_evaluator(defaults=...)``).
    batch:
        Optional vectorized companion over a list of param dicts
        (bit-identical values; the sweep runner's fast path).
    warm:
        Optional warm-start companion ``(params_list, seeds) ->
        (raw_values_list, states_list)``: like ``batch`` but accepting
        one initial-state array (or ``None`` for a cold start) per
        point, and returning each point's converged solver state
        alongside its values so the sweep runner can seed neighbouring
        points.  Only meaningful alongside ``batch``.
    staged:
        Whether ``warm`` additionally accepts a ``stager`` keyword and
        forwards it to the batched fixed-point solve, so the sweep
        runner can stage every refinement pass inside one solver call
        (see :class:`repro.core.solver.solve_fixed_point_batch`).
        Only meaningful alongside ``warm``.
    hints:
        Declared shape knowledge for the optimizer: solved column ->
        ``{param: "increasing" | "decreasing" | "unimodal"}``.
        ``increasing``/``decreasing`` mean the column is monotone in
        that parameter over its validity range (so inverse queries can
        bisect); ``unimodal`` means a single interior *maximum* (so
        ``maximize=`` can golden-section).  Axes without a hint fall
        back to pattern search.  Hints are facts about the model --
        declare only what has been verified.
    """

    role: str
    evaluator: str
    func: Callable[[Mapping[str, object]], dict]
    uses: tuple[str, ...] | None = None
    defaults: Mapping[str, object] = field(default_factory=dict)
    batch: Callable[[Sequence[Mapping[str, object]]], list] | None = None
    warm: Callable[..., tuple] | None = None
    staged: bool = False
    hints: Mapping[str, Mapping[str, str]] = field(default_factory=dict)
    doc: str = ""

    _HINT_SHAPES = ("increasing", "decreasing", "unimodal")

    def __post_init__(self) -> None:
        if self.role not in ("analytic", "bounds", "sim"):
            raise ValueError(
                f"backend role must be analytic/bounds/sim, got {self.role!r}"
            )
        if not self.evaluator:
            raise ValueError("backend evaluator name must be non-empty")
        if self.warm is not None and self.batch is None:
            raise ValueError(
                f"backend {self.evaluator!r} declares a warm companion "
                "without a batch companion; warm-start rides the batch "
                "fast path"
            )
        if self.staged and self.warm is None:
            raise ValueError(
                f"backend {self.evaluator!r} declares staged activation "
                "without a warm companion; staging extends the warm path"
            )
        for column, shapes in self.hints.items():
            for param, shape in dict(shapes).items():
                if shape not in self._HINT_SHAPES:
                    raise ValueError(
                        f"backend {self.evaluator!r} hint "
                        f"{column}/{param}={shape!r} is not one of "
                        f"{'/'.join(self._HINT_SHAPES)}"
                    )


_SCENARIOS: dict[str, type["Scenario"]] = {}

_SCALAR_TYPES = (str, int, float, bool, type(None))


class Scenario:
    """Base class: a declared workload bound to parameter values.

    Subclasses set ``name``, ``title``, ``schema`` (a tuple of
    :class:`Param`/:class:`ParamFamily`) and ``backends`` (a tuple of
    :class:`Backend`); defining ``name`` registers the class, making it
    reachable through :func:`scenario` and listing in
    :func:`list_scenarios`.

    Instances are immutable in spirit: :meth:`with_params` returns a new
    instance rather than mutating, so partially-specified scenarios can
    be shared and specialised (a machine description reused across
    studies, say).
    """

    #: Registry key; subclasses must override.
    name: str = ""
    #: One-line human description.
    title: str = ""
    #: Parameter schema (Param and ParamFamily entries).
    schema: tuple = ()
    #: Backend declarations (at most one per role).
    backends: tuple = ()

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if not cls.name:
            return  # abstract intermediates stay unregistered
        if cls.name in _SCENARIOS:
            other = _SCENARIOS[cls.name]
            raise ValueError(
                f"scenario {cls.name!r} already registered by "
                f"{other.__module__}.{other.__qualname__}"
            )
        roles = [b.role for b in cls.backends]
        if len(set(roles)) != len(roles):
            raise ValueError(
                f"scenario {cls.name!r} declares duplicate backend roles: "
                f"{roles}"
            )
        # Backend defaults feed cache keys, schema defaults feed docs;
        # both are declared by hand, so drift between them would make
        # `--describe` and the runtime silently disagree.  Fail at class
        # definition instead.
        for backend in cls.backends:
            for key, value in backend.defaults.items():
                entry = cls.find_param(key)
                if entry is None:
                    raise ValueError(
                        f"scenario {cls.name!r} {backend.role} backend "
                        f"declares a default for undeclared parameter "
                        f"{key!r}"
                    )
                if (isinstance(entry, Param) and not entry.required
                        and entry.default != value):
                    raise ValueError(
                        f"scenario {cls.name!r} {backend.role} backend "
                        f"default {key}={value!r} disagrees with the "
                        f"schema default {entry.default!r}"
                    )
            # Hints name schema parameters the backend consumes; a typo
            # here would silently route the optimizer to the wrong
            # search, so fail at class definition like the defaults.
            for column, shapes in backend.hints.items():
                for key in shapes:
                    if cls.find_param(key) is None:
                        raise ValueError(
                            f"scenario {cls.name!r} {backend.role} backend "
                            f"hints on undeclared parameter {key!r} "
                            f"(column {column!r})"
                        )
        _SCENARIOS[cls.name] = cls

    # -- schema helpers (classmethods: usable without parameters) ------
    @classmethod
    def params_schema(cls) -> tuple:
        """The declared schema entries, in declaration order."""
        return tuple(cls.schema)

    @classmethod
    def param_names(cls) -> list[str]:
        """Fixed parameter names (family templates excluded)."""
        return [p.name for p in cls.schema if isinstance(p, Param)]

    @classmethod
    def find_param(cls, name: str) -> Param | ParamFamily | None:
        """The schema entry governing ``name``, or None."""
        for entry in cls.schema:
            if isinstance(entry, Param):
                if entry.name == name:
                    return entry
            elif entry.matches(name):
                return entry
        return None

    @classmethod
    def accepts(cls, name: str) -> bool:
        """True when ``name`` is a declared parameter of this scenario."""
        return cls.find_param(name) is not None

    @classmethod
    def backend(cls, role: str) -> Backend:
        """The backend declared for ``role``; raises
        :class:`UnsupportedBackend` (a ValueError) with the known list."""
        for candidate in cls.backends:
            if candidate.role == role:
                return candidate
        raise UnsupportedBackend(
            cls.name, role, sorted(b.role for b in cls.backends)
        )

    @classmethod
    def optimizable(cls, role: str = "analytic") -> dict[str, tuple[float, float]]:
        """Parameters with a declared search range the ``role`` backend
        consumes: name -> ``(lo, hi)``.  The default ``over=`` menu for
        :meth:`optimize`."""
        backend = cls.backend(role)
        return {
            p.name: (float(p.lo), float(p.hi))
            for p in cls.schema
            if isinstance(p, Param)
            and p.optimizable
            and cls.backend_accepts(backend, p.name)
        }

    @classmethod
    def backend_roles(cls) -> list[str]:
        """Declared backend roles, sorted for stable display."""
        return sorted(b.role for b in cls.backends)

    @classmethod
    def backend_accepts(cls, backend: Backend, name: str) -> bool:
        """True when ``backend`` consumes parameter ``name``."""
        if backend.uses is None:
            return cls.accepts(name)
        return name in backend.uses

    @classmethod
    def parse_value(cls, name: str, text: str) -> object:
        """Parse a CLI ``KEY=VALUE`` string by the schema's declared type."""
        entry = cls.find_param(name)
        if entry is None:
            raise ValueError(
                f"unknown parameter {name!r} for scenario {cls.name!r}; "
                f"known: {', '.join(cls.param_names())}"
            )
        kind = entry.type
        if kind is bool:
            lowered = text.strip().lower()
            if lowered in ("true", "1", "yes", "on"):
                return True
            if lowered in ("false", "0", "no", "off"):
                return False
            raise ValueError(f"parameter {name!r} expects a boolean, got {text!r}")
        if kind is int:
            return int(text)
        if kind is float:
            return float(text)
        return text

    @classmethod
    def describe(cls) -> str:
        """Human-readable schema + backend summary (CLI ``scenario show``)."""
        lines = [f"{cls.name}: {cls.title}".rstrip(": "), "", "parameters:"]
        for entry in cls.schema:
            if isinstance(entry, Param):
                default = ("required" if entry.required
                           else f"default {entry.default!r}")
                tag = " [sim control]" if entry.control else ""
                lines.append(
                    f"  {entry.name:<12} {entry.type.__name__:<6} "
                    f"{default:<18} {entry.doc}{tag}"
                )
            else:
                lines.append(
                    f"  {entry.template:<12} {entry.type.__name__:<6} "
                    f"{'(family)':<18} {entry.doc}"
                )
        lines.append("")
        lines.append("backends:")
        for backend in sorted(cls.backends, key=lambda b: b.role):
            lines.append(
                f"  {backend.role:<9} -> {backend.evaluator}"
                + (f"  {backend.doc}" if backend.doc else "")
            )
        return "\n".join(lines)

    # -- instances -----------------------------------------------------
    def __init__(self, **params: object) -> None:
        cls = type(self)
        if not cls.name:
            raise TypeError(
                "Scenario is abstract; instantiate a registered subclass "
                "or call repro.scenario(name, ...)"
            )
        self.given: dict[str, object] = {}
        for key, value in params.items():
            checked = self._check_value(key, value)
            if checked is None:
                continue  # explicit None == "leave unset" (see below)
            self.given[key] = checked

    @classmethod
    def _check_value(cls, name: str, value: object) -> object:
        entry = cls.find_param(name)
        if entry is None:
            raise ValueError(
                f"unknown parameter {name!r} for scenario {cls.name!r}; "
                f"known: {', '.join(cls.param_names())}"
            )
        if isinstance(value, np.generic):
            value = value.item()
        if value is None:
            # Accepted only where the schema's default *is* None (an
            # optional parameter like multiclass `kinds`); it means
            # "leave unset", so it never lands in params or cache keys.
            if isinstance(entry, Param) and entry.default is None:
                return None
            raise TypeError(
                f"parameter {name!r} does not accept None"
            )
        if not isinstance(value, _SCALAR_TYPES):
            raise TypeError(
                f"parameter {name!r} must be a JSON scalar, got "
                f"{type(value).__name__}: {value!r} (sweep an axis via "
                ".study(...) instead)"
            )
        kind = entry.type
        if kind is bool:
            if not isinstance(value, bool):
                raise TypeError(
                    f"parameter {name!r} expects a bool, got {value!r}"
                )
        elif kind in (int, float):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"parameter {name!r} expects a number, got {value!r}"
                )
            if kind is int and isinstance(value, float) and not value.is_integer():
                raise TypeError(
                    f"parameter {name!r} expects an integer, got {value!r}"
                )
            if isinstance(value, float) and not np.isfinite(value):
                raise ValueError(
                    f"parameter {name!r} must be finite, got {value!r}"
                )
        elif kind is str and not isinstance(value, str):
            raise TypeError(
                f"parameter {name!r} expects a string, got {value!r}"
            )
        return value

    @property
    def params(self) -> dict[str, object]:
        """The explicitly-bound parameters (defaults not filled in)."""
        return dict(self.given)

    def with_params(self, **updates: object) -> "Scenario":
        """A new instance with ``updates`` merged over these parameters."""
        merged = dict(self.given)
        merged.update(updates)
        return type(self)(**merged)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.given.items()))
        return f"scenario({type(self).name!r}, {inner})"

    # -- point evaluation ----------------------------------------------
    def resolve(self, role: str, overrides: Mapping[str, object] | None = None,
                ) -> dict[str, object]:
        """The full parameter dict one ``role`` evaluation runs with.

        Backend defaults first, then the bound parameters, then
        ``overrides`` -- restricted to what the backend consumes, and
        checked for missing required parameters.  This is byte-identical
        to the params the sweep runner caches the same point under.
        """
        cls = type(self)
        backend = cls.backend(role)
        merged: dict[str, object] = dict(backend.defaults)
        for key, value in self.given.items():
            if cls.backend_accepts(backend, key):
                merged[key] = value
        for key, value in dict(overrides or {}).items():
            if not cls.backend_accepts(backend, key):
                raise ValueError(
                    f"parameter {key!r} is not used by the {role!r} backend "
                    f"of scenario {cls.name!r}"
                )
            checked = self._check_value(key, value)
            if checked is None:
                merged.pop(key, None)  # explicit None unsets the parameter
            else:
                merged[key] = checked
        missing = [
            p.name
            for p in cls.schema
            if isinstance(p, Param)
            and p.required
            and cls.backend_accepts(backend, p.name)
            and p.name not in merged
        ]
        if missing:
            raise ValueError(
                f"scenario {cls.name!r} {role} backend is missing required "
                f"parameter(s): {', '.join(missing)}"
            )
        return merged

    def _solve(self, role: str, overrides: Mapping[str, object]) -> object:
        # Deferred import: the evaluator shim imports the scenario
        # declarations at its bottom, so this module cannot depend on it
        # at import time.
        from repro.api.solution import Solution
        from repro.sweep import evaluators

        backend = type(self).backend(role)
        params = self.resolve(role, overrides)
        try:
            registered = evaluators.get_evaluator(backend.evaluator)
        except KeyError:
            registered = None
        if registered is backend.func:
            # The normal path: one record shape, one timing convention,
            # shared *by construction* with every sweep record.
            record = evaluators.evaluate_point((backend.evaluator, params))
        else:
            # A scenario class declared outside the built-ins (or a
            # test-patched registry): evaluate directly, through the
            # same record splitter.
            start = time.perf_counter()
            raw = backend.func(params)
            record = evaluators._split_record(
                raw, time.perf_counter() - start
            )
        return Solution(
            scenario=type(self).name,
            backend=role,
            evaluator=backend.evaluator,
            params=params,
            values=record["values"],
            meta=record["meta"],
        )

    def analytic(self, **overrides: object):
        """Solve the scenario's analytic model; returns a Solution.

        Keyword arguments override bound parameters for this call only
        (e.g. ``method="bard"`` on the multi-class scenario).
        """
        return self._solve("analytic", overrides)

    def bounds(self, **overrides: object):
        """Evaluate the scenario's closed-form bounds; returns a Solution."""
        return self._solve("bounds", overrides)

    def simulate(self, **overrides: object):
        """Measure the scenario on the event-driven simulator.

        Returns a Solution; ``seed=``, ``cycles=`` and the other
        simulation controls are ordinary parameter overrides.
        """
        return self._solve("sim", overrides)

    # -- studies -------------------------------------------------------
    def study(self, *, jobs: int = 1, cache: object = None,
              seed: int | None = None, batch: bool = True,
              name: str | None = None, **axes: object):
        """A :class:`~repro.api.study.Study` sweeping ``axes`` over this
        scenario.

        Each keyword names a schema parameter and gives an iterable of
        values (``W=range(2, 2049, 2)``); the cross product of the axes
        over the bound parameters compiles to the existing
        :class:`~repro.sweep.spec.SweepSpec` machinery, preserving cache
        keys and the vectorized batch fast path.  ``jobs``, ``cache``,
        ``seed`` (spec-level, an int that derives per-point seeds) and
        ``batch`` plumb straight through to
        :func:`repro.sweep.runner.run_sweep`.  To sweep the *scenario's*
        ``seed`` parameter itself, pass an axis instance under any other
        keyword: ``study(seeds=GridAxis("seed", (1, 2, 3)))``.
        """
        from repro.api.study import Study

        return Study(self, axes, jobs=jobs, cache=cache, seed=seed,
                     batch=batch, name=name)

    # -- inverse queries -----------------------------------------------
    def optimize(self, *, minimize: str | None = None,
                 maximize: str | None = None, knee: str | None = None,
                 over: Mapping[str, object] | None = None,
                 subject_to: object = None, backend: str = "analytic",
                 warm_start: bool = False, max_solves: int = 48,
                 width: int = 4, xtol: float | None = None,
                 grid: int = 9, rounds: int = 3,
                 metrics: object = None, events: object = None):
        """Answer an inverse query; returns an
        :class:`~repro.opt.result.OptResult`.

        Exactly one of ``minimize=``/``maximize=``/``knee=`` names the
        objective -- a solved column (``"R"``, ``"X"`` ...) or, for
        capacity questions under ``subject_to=`` constraints, one of
        the searched parameters itself ("largest ``W`` with ``R <=
        1000``").  ``over`` is the search box, ``{param: (lo, hi)}``;
        see :meth:`optimizable` for the declared ranges.  Every
        optimizer iteration is one vectorized batch solve; the method
        (bisection, golden-section, boundary pick, pattern search) is
        chosen from the backend's declared monotonicity hints.

        ``metrics=``/``events=`` activate :mod:`repro.obs` telemetry
        for this query, exactly like ``Study.run``: pass a
        :class:`~repro.obs.MetricsRegistry` (or ``True`` for a fresh
        one, snapshot landing in ``result.meta["telemetry"]``) and an
        event sink (path, file object, or :class:`~repro.obs.EventLog`).
        """
        from repro import obs
        from repro.opt.optimizer import run_optimize

        registry = obs.MetricsRegistry() if metrics is True else metrics
        event_log = obs.EventLog.coerce(events)
        tel_kwargs = {}
        if registry is not None:
            tel_kwargs["metrics"] = registry
        if event_log is not None:
            tel_kwargs["events"] = event_log
        try:
            if tel_kwargs:
                with obs.telemetry(**tel_kwargs):
                    result = run_optimize(
                        self, minimize=minimize, maximize=maximize,
                        knee=knee, over=over, subject_to=subject_to,
                        role=backend, warm_start=warm_start,
                        width=width, xtol=xtol, max_solves=max_solves,
                        grid=grid, rounds=rounds,
                    )
            else:
                result = run_optimize(
                    self, minimize=minimize, maximize=maximize, knee=knee,
                    over=over, subject_to=subject_to, role=backend,
                    warm_start=warm_start, width=width, xtol=xtol,
                    max_solves=max_solves, grid=grid, rounds=rounds,
                )
        finally:
            if event_log is not None and event_log is not events:
                event_log.close()
        if metrics is True and registry is not None:
            data = result.to_dict()
            data["meta"]["telemetry"] = registry.as_dict()
            result = type(result).from_dict(data)
        return result


def scenario(name: str, **params: object) -> Scenario:
    """Instantiate the registered scenario class ``name`` with ``params``.

    The one facade entry point::

        sc = repro.scenario("alltoall", P=32, St=40.0, So=200.0, W=1000.0)
    """
    return get_scenario_class(name)(**params)


def get_scenario_class(name: str) -> type[Scenario]:
    """The registered scenario class, or KeyError with the known list."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS)) or "(none)"
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None


def list_scenarios() -> list[str]:
    """Registered scenario names, sorted for stable docs and CLI help."""
    return sorted(_SCENARIOS)


def find_backend(evaluator: str) -> tuple[type[Scenario], Backend] | None:
    """Reverse lookup: the scenario class and backend registered under a
    legacy evaluator name, or None for evaluators registered outside the
    facade (``SweepResult.best`` uses this to type its winning row)."""
    for cls in _SCENARIOS.values():
        for backend in cls.backends:
            if backend.evaluator == evaluator:
                return cls, backend
    return None
