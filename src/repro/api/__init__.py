"""repro.api -- the fluent scenario facade over the whole system.

One coherent entry point to the three engines the reproduction grew:
the analytic LoPC/MVA solvers (:mod:`repro.core`, :mod:`repro.mva`),
the event-driven simulator (:mod:`repro.sim`), and the cached parallel
sweep runner (:mod:`repro.sweep`)::

    from repro import scenario

    sc = scenario("alltoall", P=32, St=40.0, So=200.0, C2=0.0, W=1000.0)
    sc.analytic().response_time        # LoPC AMVA prediction
    sc.bounds()["upper"]               # Eq. 5.12 rule-of-thumb bound
    sc.simulate(seed=7, cycles=200).R  # event-driven measurement

    study = sc.study(W=range(2, 2049, 64), jobs=4, cache=".lopc-cache")
    study.analytic()                   # SweepResult via the sweep engine

Layers
------
:mod:`repro.api.solution`
    :class:`Solution` -- the uniform typed result every backend returns
    (JSON round trip via ``to_dict``/``from_dict``).
:mod:`repro.api.scenario`
    The machinery: parameter schemas (:class:`Param`,
    :class:`ParamFamily`), :class:`Backend` declarations, the
    :class:`Scenario` base class and the :func:`scenario` factory.
:mod:`repro.api.scenarios`
    The built-in workloads -- all-to-all, workpile, multi-class MVA,
    non-blocking -- each declaring schema + backends + batch kernels in
    one class.  :mod:`repro.sweep.evaluators` registers these same
    backends under their legacy string names, so facade and string
    registry share one implementation and one result cache.
:mod:`repro.api.study`
    :class:`Study` -- sweeps expressed on the facade, compiled down to
    the existing :class:`~repro.sweep.spec.SweepSpec` runner (cache
    keys unchanged).
"""

from repro.api.scenario import (
    Backend,
    Param,
    ParamFamily,
    Scenario,
    UnsupportedBackend,
    find_backend,
    get_scenario_class,
    list_scenarios,
    scenario,
)
from repro.api.solution import Solution
from repro.api.scenarios import (
    AllToAllScenario,
    MultiClassScenario,
    NonBlockingScenario,
    SharedMemoryScenario,
    WorkpileScenario,
)
from repro.api.study import Study

__all__ = [
    "AllToAllScenario",
    "Backend",
    "MultiClassScenario",
    "NonBlockingScenario",
    "Param",
    "ParamFamily",
    "Scenario",
    "SharedMemoryScenario",
    "Solution",
    "Study",
    "UnsupportedBackend",
    "WorkpileScenario",
    "find_backend",
    "get_scenario_class",
    "list_scenarios",
    "scenario",
]
