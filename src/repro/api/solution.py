"""The uniform result type of the scenario facade.

Every facade entry point -- ``Scenario.analytic()``, ``.bounds()``,
``.simulate()``, and each point of a :class:`~repro.api.study.Study` --
returns a :class:`Solution`: one typed record naming the scenario and
backend that produced it, the fully-resolved parameters (explicit values
plus the backend's result-affecting defaults, exactly what the sweep
cache keys on), the value columns, and the evaluation metadata.

Values are the *same* flat column dicts the legacy evaluators emit
(``R``, ``X``, ``Rq`` ... in the paper's notation), so a ``Solution`` is
interchangeable with a cached sweep record; :meth:`Solution.to_dict` /
:meth:`Solution.from_dict` round-trip through plain JSON.  Columns are
reachable three ways::

    sol["R"]             # mapping style
    sol.R                # attribute style (any value column)
    sol.response_time    # the common aliases, spelled out

so quick scripts can use the paper's symbols while longer programs read
aloud.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping

__all__ = ["Solution"]

#: Common column aliases: long, readable names for the paper's symbols.
_ALIASES: dict[str, str] = {
    "response_time": "R",
    "throughput": "X",
    "compute_residence": "Rw",
    "request_residence": "Rq",
    "reply_residence": "Ry",
}


@dataclass(frozen=True)
class Solution:
    """One evaluated scenario point: typed provenance + value columns.

    Attributes
    ----------
    scenario:
        Registered scenario name (``"alltoall"``, ``"workpile"``, ...).
    backend:
        Which backend produced the values: ``"analytic"``, ``"bounds"``
        or ``"sim"``.
    evaluator:
        The legacy evaluator name the backend registers as
        (``"alltoall-model"`` ...); with :attr:`params` this identifies
        the sweep-cache record the same evaluation would hit.
    params:
        Fully-resolved parameters: the explicit values merged over the
        backend's result-affecting defaults -- byte-identical to what
        :func:`repro.sweep.runner.run_sweep` caches points under.
    values:
        Flat result columns in the paper's notation.
    meta:
        Non-result metadata (``wall_time``, simulator ``events``, ...).
    """

    scenario: str
    backend: str
    evaluator: str
    params: Mapping[str, object]
    values: Mapping[str, float]
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    # -- column access -------------------------------------------------
    def __getitem__(self, name: str) -> float:
        """``sol["R"]``: one value column."""
        return self.values[name]

    def __getattr__(self, name: str):
        # Only consulted for names that are not dataclass fields.
        values = object.__getattribute__(self, "values")
        key = _ALIASES.get(name, name)
        if key in values:
            return values[key]
        raise AttributeError(
            f"{type(self).__name__} for scenario "
            f"{object.__getattribute__(self, 'scenario')!r} has no value "
            f"column {key!r}; columns: {sorted(values)}"
        )

    def __contains__(self, name: str) -> bool:
        return name in self.values

    @property
    def columns(self) -> list[str]:
        """Value column names, sorted for stable display."""
        return sorted(self.values)

    def satisfies(self, *constraints: object) -> bool:
        """Whether this solution meets :mod:`repro.opt` constraint
        predicates, e.g. ``sol.satisfies("R <= 1000", "X >= 0.01")``.

        Predicates may reference any parameter or value column (values
        shadow same-named parameters, matching the optimizer's view);
        an unknown column raises ``KeyError`` naming the known ones.
        """
        from repro.opt.space import parse_constraints

        merged = {**dict(self.params), **dict(self.values)}
        return all(c.ok(merged) for c in parse_constraints(constraints))

    # -- round trip ----------------------------------------------------
    def to_dict(self) -> dict[str, object]:
        """Plain-JSON form; inverse of :meth:`from_dict`."""
        return {
            "scenario": self.scenario,
            "backend": self.backend,
            "evaluator": self.evaluator,
            "params": dict(self.params),
            "values": dict(self.values),
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Solution":
        """Rebuild a :class:`Solution` from :meth:`to_dict` output."""
        unknown = set(data) - {
            "scenario", "backend", "evaluator", "params", "values", "meta",
        }
        if unknown:
            raise ValueError(f"unknown Solution keys: {sorted(unknown)}")
        return cls(
            scenario=str(data["scenario"]),
            backend=str(data["backend"]),
            evaluator=str(data["evaluator"]),
            params=dict(data["params"]),
            values=dict(data["values"]),
            meta=dict(data.get("meta", {})),
        )

    def to_json(self) -> str:
        """Compact JSON text of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Solution":
        """Rebuild a :class:`Solution` from :meth:`to_json` text."""
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        """One human line: scenario, backend, and the headline columns."""
        head = ", ".join(
            f"{k}={self.values[k]:.6g}"
            for k in ("R", "X")
            if k in self.values
        )
        extra = len(self.values) - sum(k in self.values for k in ("R", "X"))
        tail = f" (+{extra} more columns)" if extra > 0 else ""
        return f"{self.scenario}/{self.backend}: {head or 'no R/X'}{tail}"
