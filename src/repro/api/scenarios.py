"""The built-in scenario declarations -- one class per workload.

Each class declares, in one place, a workload's parameter schema (the
paper's symbols: ``P``, ``St``, ``So``, ``C2``, ``W`` ... plus its
simulation controls) and its backends: the analytic LoPC solution, the
closed-form bounds, and the event-driven simulation, each with its
result-affecting defaults and -- where one exists -- the vectorized
batch kernel the sweep runner fast-paths through.

These declarations are the *single source of truth* for the evaluator
registry: :mod:`repro.sweep.evaluators` registers every backend below
under its legacy string name (``alltoall-model``, ``workpile-sim``,
...), so hand-written :class:`~repro.sweep.spec.SweepSpec` files, the
string-keyed ``register_evaluator`` API, and the fluent facade all hit
the same functions and the same content-addressed cache records.

Parameter naming follows the paper throughout: ``P`` processors, ``St``
wire latency, ``So`` handler occupancy, ``C2`` handler variability,
``W`` work per request, ``Ps`` workpile servers, ``k`` non-blocking
window.  Multi-class networks are encoded as flat scalars (``N{c}``,
``Z{c}``, ``D{c}_{k}``) so they stay sweepable and cacheable.

The evaluator functions themselves are plain top-level callables over
flat JSON mappings -- the contract the sweep executors and cache
require -- and are byte-compatible with the pre-facade registry: same
parameters, same value columns, same cache keys.
"""

from __future__ import annotations

import math
import re
from typing import Mapping, Sequence

import numpy as np

from repro.api.scenario import Backend, Param, ParamFamily, Scenario
from repro.core.alltoall import AllToAllModel, solve_batch
from repro.core.client_server import (
    ClientServerModel,
    solve_workpile_batch,
    workpile_bounds_batch,
)
from repro.core.general import GeneralLoPCModel, solve_general_batch
from repro.core.logp import LogPModel
from repro.core.nonblocking import NonBlockingModel
from repro.core.params import AlgorithmParams, LoPCParams, MachineParams
from repro.core.rule_of_thumb import contention_bounds
from repro.core.shared_memory import SharedMemoryModel
from repro.mva.batch import batch_multiclass_amva, batch_multiclass_mva
from repro.mva.multiclass import MultiClassAMVAResult, multiclass_amva, multiclass_mva
from repro.sim.machine import MachineConfig

__all__ = [
    "AllToAllScenario",
    "GeneralScenario",
    "MultiClassScenario",
    "NonBlockingScenario",
    "SCENARIO_CLASSES",
    "SharedMemoryScenario",
    "WorkpileScenario",
    "general_network_from_params",
    "machine_from_params",
]


# ---------------------------------------------------------------------------
# Shared parameter plumbing
# ---------------------------------------------------------------------------
def machine_from_params(params: Mapping[str, object]) -> MachineParams:
    """Build :class:`MachineParams` from paper-notation sweep parameters."""
    return MachineParams(
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        processors=int(params["P"]),
        handler_cv2=float(params.get("C2", 0.0)),
    )


def _config_from_params(params: Mapping[str, object]) -> MachineConfig:
    return MachineConfig(
        processors=int(params["P"]),
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        handler_cv2=float(params.get("C2", 0.0)),
        latency_cv2=float(params.get("latency_cv2", 0.0)),
        seed=int(params.get("seed", 0)),
    )


#: The machine-description parameters every message-passing scenario shares.
#: The lo/hi ranges mirror the fuzz generator's overshoot domain
#: (:mod:`repro.fuzz.generators`) -- they mark the parameters as
#: optimizable axes and bound the search boxes ``optimize()`` accepts.
_MACHINE_PARAMS = (
    Param("P", int, doc="processors", lo=2, hi=256),
    Param("St", float, doc="one-way wire latency, cycles", lo=0.0, hi=1000.0),
    Param("So", float, doc="handler service time, cycles", lo=1.0, hi=1000.0),
    Param("C2", float, default=0.0, doc="handler service-time CV^2",
          lo=0.0, hi=4.0),
)

#: Simulation controls shared by the cycle-driven workloads.
_SIM_CONTROLS = (
    Param("seed", int, default=0, doc="simulator seed", control=True),
    Param("work_cv2", float, default=0.0, doc="compute-burst CV^2",
          control=True),
    Param("latency_cv2", float, default=0.0, doc="wire-latency CV^2",
          control=True),
    Param("streams", bool, default=True,
          doc="bulk-drawn RNG streams (False = seed-exact scalar path)",
          control=True),
)


# ---------------------------------------------------------------------------
# All-to-all (paper Section 5)
# ---------------------------------------------------------------------------
def _alltoall_values(sol) -> dict[str, object]:
    """The ``alltoall-model`` value columns of one :class:`ModelSolution`."""
    return {
        "R": sol.response_time,
        "Rw": sol.compute_residence,
        "Rq": sol.request_residence,
        "Ry": sol.reply_residence,
        "X": sol.throughput,
        "Uq": sol.request_utilization,
        "Uy": sol.reply_utilization,
        "total_contention": sol.total_contention,
        "compute_contention": sol.compute_contention,
        "request_contention": sol.request_contention,
        "reply_contention": sol.reply_contention,
        "contention_fraction": sol.contention_fraction,
    }


def _alltoall_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    sol = AllToAllModel(machine).solve_work(float(params["W"]))
    return _alltoall_values(sol)


def _alltoall_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    return [_alltoall_values(sol) for sol in solve_batch(grid)]


def _stack_seeds(
    seeds: Sequence[object], shape: tuple[int, ...]
) -> np.ndarray:
    """Stack per-point seed arrays into a batch ``x0``.

    ``None`` entries (and seeds of the wrong shape, e.g. from a network
    whose structure changed along the sweep) become NaN rows, which the
    batch kernels treat as cold starts -- an all-``None`` chunk solves
    bit-identically to the plain batch companion, while its points
    still land in the ``cold_iterations`` telemetry split.
    """
    x0 = np.full((len(seeds),) + shape, np.nan)
    for i, seed in enumerate(seeds):
        if seed is None:
            continue
        arr = np.asarray(seed, dtype=float)
        if arr.shape == shape:
            x0[i] = arr
    return x0


def _alltoall_state(sol) -> np.ndarray:
    """One point's fixed-point state ``[Rw, Rq, Ry]`` for warm-starting."""
    return np.array(
        [sol.compute_residence, sol.request_residence, sol.reply_residence]
    )


def _alltoall_model_warm(
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object],
    stager: object | None = None,
) -> tuple[list[dict[str, object]], list[np.ndarray]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    solutions = solve_batch(grid, x0=_stack_seeds(seeds, (3,)), stager=stager)
    # One stacked extraction: a per-point _alltoall_state() np.array call
    # is measurable overhead at dense-grid point counts.
    states = np.column_stack([
        [sol.compute_residence for sol in solutions],
        [sol.request_residence for sol in solutions],
        [sol.reply_residence for sol in solutions],
    ])
    return [_alltoall_values(sol) for sol in solutions], list(states)


def _alltoall_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    lower, upper = contention_bounds(machine, float(params["W"]))
    return {"lower": lower, "upper": upper}


def _alltoall_bounds_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Closed forms: the only iterative work is the Eq. 5.12 constant
    # kappa(C^2), lru-cached per distinct C^2 (upper_bound_constant), so
    # one Brent solve serves the whole grid.  Batch capability here buys
    # in-process dispatch (no pool round-trip per point).
    return [_alltoall_bounds(params) for params in params_list]


def _alltoall_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.alltoall import run_alltoall

    config = _config_from_params(params)
    measured = run_alltoall(
        config,
        work=float(params["W"]),
        cycles=int(params.get("cycles", 300)),
        work_cv2=float(params.get("work_cv2", 0.0)),
        use_streams=bool(params.get("streams", True)),
    )
    return {
        "R": measured.response_time,
        "Rw": measured.compute_residence,
        "Rq": measured.request_residence,
        "Ry": measured.reply_residence,
        "X": measured.throughput,
        "Uq": measured.request_utilization,
        "Uy": measured.reply_utilization,
        "total_contention": measured.total_contention,
        "compute_contention": measured.compute_contention,
        "request_contention": measured.request_contention,
        "reply_contention": measured.reply_contention,
        "handler_queue": measured.handler_queue,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


class AllToAllScenario(Scenario):
    """Homogeneous all-to-all traffic (paper Section 5).

    Every thread computes ``W`` cycles, sends one blocking request to a
    uniformly random peer, and waits for the reply; contention is the
    queueing of request and reply handlers.  The analytic backend is the
    LoPC AMVA solution, the bounds backend the Eq. 5.12 contention-free
    / rule-of-thumb bracket, the sim backend the event-driven machine.
    """

    name = "alltoall"
    title = "homogeneous all-to-all request/reply traffic (Section 5)"
    schema = _MACHINE_PARAMS + (
        Param("W", float, doc="compute between blocking requests, cycles",
              lo=0.0, hi=20000.0),
        Param("cycles", int, default=300, doc="request cycles per node",
              control=True),
    ) + _SIM_CONTROLS
    backends = (
        Backend(
            role="analytic",
            evaluator="alltoall-model",
            func=_alltoall_model,
            uses=("P", "St", "So", "C2", "W"),
            batch=_alltoall_model_batch,
            warm=_alltoall_model_warm,
            staged=True,
            # Verified numerically over the fuzz domain: per-node R
            # grows with work and both service costs, throughput falls
            # with work.  R is *constant in P* for this symmetric
            # pattern (each node still issues P-1 requests per cycle of
            # its own), so no P hint -- "size P" questions belong to
            # workpile or repro.core.scaling, where P changes the work.
            hints={
                "R": {"W": "increasing", "So": "increasing",
                      "St": "increasing"},
                "X": {"W": "decreasing"},
            },
            doc="LoPC AMVA solution of the Section-5 all-to-all",
        ),
        Backend(
            role="bounds",
            evaluator="alltoall-bounds",
            func=_alltoall_bounds,
            uses=("P", "St", "So", "C2", "W"),
            batch=_alltoall_bounds_batch,
            doc="Eq. 5.12 contention-free / rule-of-thumb bounds",
        ),
        Backend(
            role="sim",
            evaluator="alltoall-sim",
            func=_alltoall_sim,
            uses=("P", "St", "So", "C2", "W", "cycles", "seed", "work_cv2",
                  "latency_cv2", "streams"),
            # `streams` is result-affecting (bulk draws change the
            # trajectory a fixed seed produces), so it lives in the
            # cache key like any other parameter; the pre-stream scalar
            # path stays reachable as streams=False.
            defaults={"cycles": 300, "seed": 0, "work_cv2": 0.0,
                      "latency_cv2": 0.0, "streams": True},
            doc="event-driven simulation of the same workload",
        ),
    )


# ---------------------------------------------------------------------------
# Shared memory with a protocol processor (paper Section 5.1)
# ---------------------------------------------------------------------------
def _sharedmem_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    sol = SharedMemoryModel(machine).solve_work(float(params["W"]))
    return _alltoall_values(sol)


def _sharedmem_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    # SharedMemoryModel delegates to AllToAllModel(protocol_processor=
    # True) with identical solver settings, so the shared batch kernel
    # is bit-identical to the scalar path here too.
    return [
        _alltoall_values(sol)
        for sol in solve_batch(grid, protocol_processor=True)
    ]


def _sharedmem_model_warm(
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object],
    stager: object | None = None,
) -> tuple[list[dict[str, object]], list[np.ndarray]]:
    grid = [
        LoPCParams(
            machine=machine_from_params(params),
            algorithm=AlgorithmParams(work=float(params["W"])),
        )
        for params in params_list
    ]
    solutions = solve_batch(
        grid, x0=_stack_seeds(seeds, (3,)), protocol_processor=True,
        stager=stager,
    )
    return (
        [_alltoall_values(sol) for sol in solutions],
        [_alltoall_state(sol) for sol in solutions],
    )


class SharedMemoryScenario(Scenario):
    """Shared-memory node with a protocol processor (paper Section 5.1).

    The same all-to-all traffic as :class:`AllToAllScenario`, but the
    handlers run on dedicated protocol-processor hardware: the compute
    thread is never interrupted (``Rw = W``) and contention appears only
    as queueing at the protocol processor (``Rq``, ``Ry``).  Analytic
    only -- the Holt-style occupancy study contrasts it against the
    ``alltoall`` scenario on the same machine.
    """

    name = "sharedmem"
    title = "shared-memory node with a protocol processor (Section 5.1)"
    schema = _MACHINE_PARAMS + (
        Param("W", float, doc="compute between remote accesses, cycles",
              lo=0.0, hi=20000.0),
    )
    backends = (
        Backend(
            role="analytic",
            evaluator="sharedmem-model",
            func=_sharedmem_model,
            uses=("P", "St", "So", "C2", "W"),
            batch=_sharedmem_model_batch,
            warm=_sharedmem_model_warm,
            staged=True,
            # Same symmetric pattern as alltoall (R constant in P).
            hints={
                "R": {"W": "increasing", "So": "increasing",
                      "St": "increasing"},
                "X": {"W": "decreasing"},
            },
            doc="LoPC AMVA with handlers on a protocol processor",
        ),
    )


# ---------------------------------------------------------------------------
# Client-server workpile (paper Chapter 6)
# ---------------------------------------------------------------------------
def _workpile_values(sol) -> dict[str, object]:
    """The ``workpile-model`` value columns of one :class:`WorkpileSolution`."""
    return {
        "X": sol.throughput,
        "R": sol.response_time,
        "Rs": sol.server_residence,
        "Qs": sol.server_queue,
        "Us": sol.server_utilization,
    }


def _workpile_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    model = ClientServerModel(machine, work=float(params["W"]))
    sol = model.solve(int(params["Ps"]))
    return _workpile_values(sol)


def _workpile_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Validate each machine exactly like the scalar path before the
    # vectorized solve.
    for params in params_list:
        machine_from_params(params)
    solutions = solve_workpile_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [float(p.get("C2", 0.0)) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
    )
    return [_workpile_values(sol) for sol in solutions]


def _workpile_model_warm(
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object],
) -> tuple[list[dict[str, object]], list[np.ndarray]]:
    for params in params_list:
        machine_from_params(params)
    solutions = solve_workpile_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [float(p.get("C2", 0.0)) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
        x0=_stack_seeds(seeds, (1,)),
    )
    return (
        [_workpile_values(sol) for sol in solutions],
        [np.array([sol.server_residence]) for sol in solutions],
    )


def _workpile_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.workpile import run_workpile

    config = _config_from_params(params)
    measured = run_workpile(
        config,
        servers=int(params["Ps"]),
        work=float(params["W"]),
        chunks=int(params.get("chunks", 250)),
        work_cv2=float(params.get("work_cv2", 0.0)),
        use_streams=bool(params.get("streams", True)),
    )
    return {
        "X": measured.throughput,
        "wall_X": measured.wall_throughput,
        "R": measured.response_time,
        "Rs": measured.server_residence,
        "Qs": measured.server_queue,
        "Us": measured.server_utilization,
        "cycles_measured": measured.cycles_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


def _workpile_bounds(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    logp = LogPModel(machine)
    servers = int(params["Ps"])
    clients = machine.processors - servers
    return {
        "server_bound": logp.workpile_server_bound(servers),
        "client_bound": logp.workpile_client_bound(clients, float(params["W"])),
    }


def _workpile_bounds_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # Validate each machine exactly like the scalar path, then evaluate
    # the LogP closed forms for the whole grid in one vectorized call.
    for params in params_list:
        machine_from_params(params)
    arrays = workpile_bounds_batch(
        [float(p["W"]) for p in params_list],
        [float(p["St"]) for p in params_list],
        [float(p["So"]) for p in params_list],
        [int(p["P"]) for p in params_list],
        [int(p["Ps"]) for p in params_list],
    )
    return [
        {
            "server_bound": float(arrays["server_bound"][i]),
            "client_bound": float(arrays["client_bound"][i]),
        }
        for i in range(len(params_list))
    ]


class WorkpileScenario(Scenario):
    """Client-server workpile on a split machine (paper Chapter 6).

    ``Ps`` of the ``P`` nodes serve chunks, the rest run client threads
    that compute ``W`` cycles per chunk and block on the next request.
    The analytic backend is the LoPC client-server solution, the bounds
    backend the optimistic LogP saturation pair, the sim backend the
    measured workpile for one ``(Ps, P - Ps)`` split.
    """

    name = "workpile"
    title = "client-server workpile on a split machine (Chapter 6)"
    schema = _MACHINE_PARAMS + (
        Param("W", float, doc="client compute per chunk, cycles",
              lo=0.0, hi=20000.0),
        Param("Ps", int, doc="server count (clients = P - Ps)",
              lo=1, hi=255),
        Param("chunks", int, default=250, doc="chunks per client",
              control=True),
    ) + _SIM_CONTROLS
    backends = (
        Backend(
            role="analytic",
            evaluator="workpile-model",
            func=_workpile_model,
            uses=("P", "St", "So", "C2", "W", "Ps"),
            batch=_workpile_model_batch,
            warm=_workpile_model_warm,
            # Verified numerically: per-chunk response falls as servers
            # are added (less queueing) and grows with work and machine
            # size; aggregate throughput *peaks* at an interior
            # client/server split -- the fig-6.2 story -- so X over Ps
            # is the repo's canonical unimodal axis.
            hints={
                "R": {"W": "increasing", "Ps": "decreasing",
                      "P": "increasing"},
                "X": {"Ps": "unimodal", "W": "decreasing",
                      "P": "increasing"},
            },
            doc="LoPC client-server workpile solution",
        ),
        Backend(
            role="bounds",
            evaluator="workpile-bounds",
            func=_workpile_bounds,
            uses=("P", "St", "So", "C2", "W", "Ps"),
            batch=_workpile_bounds_batch,
            doc="LogP-style optimistic saturation bounds",
        ),
        Backend(
            role="sim",
            evaluator="workpile-sim",
            func=_workpile_sim,
            uses=("P", "St", "So", "C2", "W", "Ps", "chunks", "seed",
                  "work_cv2", "latency_cv2", "streams"),
            # chunks matches fig-6.2's default, not run_workpile's 300.
            defaults={"chunks": 250, "seed": 0, "work_cv2": 0.0,
                      "latency_cv2": 0.0, "streams": True},
            doc="simulated workpile for one (Ps, Pc) split",
        ),
    )


# ---------------------------------------------------------------------------
# Multi-class MVA (Chapter-6 heterogeneous studies)
# ---------------------------------------------------------------------------
def _multiclass_network_from_params(
    params: Mapping[str, object],
) -> tuple[list[list[float]], list[int], list[float], list[str] | None, str]:
    """Decode a multi-class network from flat sweep parameters.

    Classes and centres are encoded as JSON scalars so multi-class
    networks stay sweepable and cacheable: populations ``N0, N1, ...``,
    optional think times ``Z{c}`` (default 0), demands ``D{c}_{k}``, an
    optional comma-separated ``kinds`` string and a ``method`` of
    ``"exact"`` (default), ``"bard"`` or ``"schweitzer"``.
    """
    n_classes = 0
    while f"N{n_classes}" in params:
        n_classes += 1
    if n_classes == 0:
        raise ValueError(
            "multiclass-mva needs class populations N0, N1, ... in params"
        )
    n_centers = 0
    while f"D0_{n_centers}" in params:
        n_centers += 1
    if n_centers == 0:
        raise ValueError(
            "multiclass-mva needs per-centre demands D0_0, D0_1, ... in params"
        )
    # Reject class/centre keys beyond the contiguous N0.. / D0_0.. runs:
    # a gapped index (a typo'd N2 without N1, a D0_3 without D0_2) would
    # otherwise silently drop part of the network from the solution.
    for key in params:
        match = re.fullmatch(r"N(\d+)|Z(\d+)|D(\d+)_(\d+)", key)
        if match is None:
            continue
        n_idx, z_idx, d_cls, d_ctr = match.groups()
        cls = int(n_idx or z_idx or d_cls)
        if cls >= n_classes:
            raise ValueError(
                f"multiclass-mva param {key!r} names class {cls}, but only "
                f"classes 0..{n_classes - 1} are defined -- N0..N{{c}} must "
                "be contiguous"
            )
        if d_ctr is not None and int(d_ctr) >= n_centers:
            raise ValueError(
                f"multiclass-mva param {key!r} names centre {int(d_ctr)}, "
                f"but only centres 0..{n_centers - 1} are defined -- "
                "D0_0..D0_{k} must be contiguous"
            )
    try:
        demands = [
            [float(params[f"D{c}_{k}"]) for k in range(n_centers)]
            for c in range(n_classes)
        ]
    except KeyError as exc:
        raise ValueError(
            f"multiclass-mva params missing demand {exc.args[0]!r}: every "
            f"class needs demands D{{c}}_0..D{{c}}_{n_centers - 1}"
        ) from None
    populations = [int(params[f"N{c}"]) for c in range(n_classes)]
    think_times = [float(params.get(f"Z{c}", 0.0)) for c in range(n_classes)]
    kinds_param = params.get("kinds")
    kinds = str(kinds_param).split(",") if kinds_param else None
    return demands, populations, think_times, kinds, str(params.get("method", "exact"))


def _multiclass_values(res) -> dict[str, object]:
    """The ``multiclass-mva`` value columns of one scalar-shaped result."""
    values: dict[str, object] = {"X": float(res.throughputs.sum())}
    for c in range(len(res.populations)):
        values[f"X{c}"] = float(res.throughputs[c])
        values[f"R{c}"] = float(res.cycle_times[c])
    for k in range(res.queue_lengths.size):
        values[f"Q{k}"] = float(res.queue_lengths[k])
    if isinstance(res, MultiClassAMVAResult):
        values["_iterations"] = int(res.iterations)
        values["_converged"] = bool(res.converged)
    return values


def _multiclass_values_from_batch(batch, j: int) -> dict[str, object]:
    """One point's value columns straight from the stacked batch arrays.

    Same keys and (bit-identical) numbers as
    ``_multiclass_values(batch.point(j))`` without the per-point array
    copies -- the batch fast path assembles thousands of these.
    """
    throughputs = batch.throughputs[j]
    values: dict[str, object] = {"X": float(throughputs.sum())}
    cycles = batch.cycle_times[j]
    for c in range(throughputs.size):
        values[f"X{c}"] = float(throughputs[c])
        values[f"R{c}"] = float(cycles[c])
    queues = batch.queue_lengths[j]
    for k in range(queues.size):
        values[f"Q{k}"] = float(queues[k])
    if batch.method != "exact":
        values["_iterations"] = int(batch.iterations[j])
        values["_converged"] = bool(batch.converged[j])
    return values


def _multiclass_model(params: Mapping[str, object]) -> dict[str, object]:
    demands, populations, think_times, kinds, method = (
        _multiclass_network_from_params(params)
    )
    if method == "exact":
        res = multiclass_mva(demands, populations, think_times=think_times,
                             kinds=kinds)
    else:
        res = multiclass_amva(demands, populations, think_times=think_times,
                              kinds=kinds, method=method)
    return _multiclass_values(res)


def _multiclass_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    values, _ = _multiclass_solve_grouped(params_list, None)
    return values


def _multiclass_model_warm(
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object],
) -> tuple[list[dict[str, object]], list[np.ndarray | None]]:
    return _multiclass_solve_grouped(params_list, seeds)


def _multiclass_solve_grouped(
    params_list: Sequence[Mapping[str, object]],
    seeds: Sequence[object] | None,
) -> tuple[list[dict[str, object]], list[np.ndarray | None]]:
    # Points sharing a structure (method, kinds, class/centre counts)
    # batch into one vectorized kernel call; a heterogeneous miss list
    # (e.g. a method axis) becomes one call per group, in order.  Seeds
    # (class-queue matrices from neighbouring solves) apply to the AMVA
    # groups only; the exact recursion has no fixed point to warm-start
    # and reports no state.
    parsed = [_multiclass_network_from_params(p) for p in params_list]
    groups: dict[tuple, list[int]] = {}
    for i, (demands, populations, _, kinds, method) in enumerate(parsed):
        signature = (
            method,
            tuple(kinds) if kinds is not None else None,
            len(populations),
            len(demands[0]),
        )
        groups.setdefault(signature, []).append(i)

    out: list[dict[str, object] | None] = [None] * len(parsed)
    states: list[np.ndarray | None] = [None] * len(parsed)
    for (method, kinds, _, _), indices in groups.items():
        demands = np.array([parsed[i][0] for i in indices])
        populations = np.array([parsed[i][1] for i in indices])
        think_times = np.array([parsed[i][2] for i in indices])
        kinds_list = list(kinds) if kinds is not None else None
        if method == "exact":
            batch = batch_multiclass_mva(
                demands, populations, think_times, kinds=kinds_list
            )
        else:
            x0 = (
                _stack_seeds(
                    [seeds[i] for i in indices], demands.shape[1:]
                )
                if seeds is not None
                else None
            )
            batch = batch_multiclass_amva(
                demands, populations, think_times, kinds=kinds_list,
                method=method, x0=x0,
            )
            for j, i in enumerate(indices):
                states[i] = np.array(batch.class_queue_lengths[j])
        for j, i in enumerate(indices):
            out[i] = _multiclass_values_from_batch(batch, j)
    return out, states


class MultiClassScenario(Scenario):
    """Closed multi-class product-form network (Chapter-6 studies).

    Classes and centres are flat scalars -- ``N0, N1, ...``
    populations, optional ``Z{c}`` think times, ``D{c}_{k}`` demands --
    so heterogeneous networks sweep and cache like any other scenario.
    Analytic only: ``method="exact"`` walks the population lattice,
    ``"bard"``/``"schweitzer"`` run the approximate fixed point.
    """

    name = "multiclass"
    title = "closed multi-class MVA network (heterogeneous studies)"
    schema = (
        ParamFamily("N{c}", r"N\d+", int, "population of class c"),
        ParamFamily("Z{c}", r"Z\d+", float, "think time of class c"),
        ParamFamily("D{c}_{k}", r"D\d+_\d+", float,
                    "demand of class c at centre k"),
        Param("method", str, default="exact",
              doc="exact | bard | schweitzer"),
        Param("kinds", str, default=None,
              doc="comma-separated centre kinds (queueing/delay)"),
    )
    backends = (
        Backend(
            role="analytic",
            evaluator="multiclass-mva",
            func=_multiclass_model,
            uses=None,  # the whole schema, families included
            defaults={"method": "exact"},
            batch=_multiclass_model_batch,
            warm=_multiclass_model_warm,
            doc="exact or approximate multi-class MVA",
        ),
    )


# ---------------------------------------------------------------------------
# General visit-matrix LoPC (paper Appendix A)
# ---------------------------------------------------------------------------
def general_network_from_params(
    params: Mapping[str, object],
) -> tuple[list[float | None], np.ndarray]:
    """Decode an Appendix-A network from flat sweep parameters.

    Threads and nodes are encoded as JSON scalars so arbitrary
    topologies stay sweepable and cacheable: per-thread works ``W{c}``
    (omitting ``W{c}`` leaves thread ``c`` passive -- a pure server)
    and visit ratios ``V{c}_{k}`` -- the mean request-handler visits
    thread ``c``'s cycle makes to node ``k`` (omitted entries are 0).
    Structural validation (zero diagonal, passive rows empty, at least
    one active thread) is :class:`GeneralLoPCModel`'s, so the facade and
    direct model construction reject exactly the same networks.
    """
    p = int(params["P"])
    works: list[float | None] = [None] * p
    visits = np.zeros((p, p))
    for key, value in params.items():
        match = re.fullmatch(r"W(\d+)", key)
        if match is not None:
            c = int(match.group(1))
            if c >= p:
                raise ValueError(
                    f"general param {key!r} names thread {c}, but P={p} "
                    f"defines threads 0..{p - 1}"
                )
            works[c] = float(value)  # type: ignore[call-overload]
            continue
        match = re.fullmatch(r"V(\d+)_(\d+)", key)
        if match is not None:
            c, k = int(match.group(1)), int(match.group(2))
            if c >= p or k >= p:
                raise ValueError(
                    f"general param {key!r} names node {max(c, k)}, but "
                    f"P={p} defines nodes 0..{p - 1}"
                )
            visits[c, k] = float(value)  # type: ignore[call-overload]
    return works, visits


def _general_model_from_params(
    params: Mapping[str, object],
) -> GeneralLoPCModel:
    works, visits = general_network_from_params(params)
    return GeneralLoPCModel(
        machine_from_params(params),
        works,
        visits,
        protocol_processor=bool(params.get("protocol_processor", False)),
    )


def _general_values(sol) -> dict[str, object]:
    """The ``general-model`` value columns of one :class:`GeneralSolution`.

    Passive threads have no cycle, so ``R{c}``/``X{c}`` columns exist
    for active threads only; the per-node handler figures (``Uq{k}``,
    ``Qq{k}``) cover every node.
    """
    values: dict[str, object] = {"X": sol.system_throughput}
    for c in np.flatnonzero(sol.active):
        values[f"R{int(c)}"] = float(sol.response_times[c])
        values[f"X{int(c)}"] = float(sol.throughputs[c])
    for k in range(sol.request_utilizations.size):
        values[f"Uq{k}"] = float(sol.request_utilizations[k])
        values[f"Qq{k}"] = float(sol.request_queues[k])
    values["_iterations"] = int(sol.meta["iterations"])
    return values


def _general_model(params: Mapping[str, object]) -> dict[str, object]:
    return _general_values(_general_model_from_params(params).solve())


def _general_model_batch(
    params_list: Sequence[Mapping[str, object]],
) -> list[dict[str, object]]:
    # solve_general_batch requires one shared node count P; a sweep that
    # crosses P becomes one masked batch call per P group, in order.
    models = [_general_model_from_params(p) for p in params_list]
    groups: dict[int, list[int]] = {}
    for i, model in enumerate(models):
        groups.setdefault(model.machine.processors, []).append(i)
    out: list[dict[str, object] | None] = [None] * len(models)
    for indices in groups.values():
        solutions = solve_general_batch([models[i] for i in indices])
        for j, i in enumerate(indices):
            out[i] = _general_values(solutions[j])
    return out  # type: ignore[return-value]


class GeneralScenario(Scenario):
    """General visit-matrix LoPC network (paper Appendix A).

    Each of the ``P`` nodes hosts one thread with its own work ``W{c}``
    between blocking requests and its own visit ratios ``V{c}_{k}``;
    rows may sum past 1 (multi-hop forwarding) and threads without a
    ``W{c}`` are passive servers.  The homogeneous all-to-all and the
    workpile are exact special cases.  Analytic only -- this is the
    facade for every topology the fixed workloads cannot express.
    """

    name = "general"
    title = "general visit-matrix LoPC network (Appendix A)"
    schema = _MACHINE_PARAMS + (
        Param("protocol_processor", bool, default=False,
              doc="handlers on dedicated protocol processors (Rw = W)"),
        ParamFamily("W{c}", r"W\d+", float,
                    "work of thread c between requests (omit = passive)"),
        ParamFamily("V{c}_{k}", r"V\d+_\d+", float,
                    "visit ratio of thread c to node k (omit = 0)"),
    )
    backends = (
        Backend(
            role="analytic",
            evaluator="general-model",
            func=_general_model,
            uses=None,  # the whole schema, families included
            defaults={"protocol_processor": False},
            batch=_general_model_batch,
            doc="Appendix-A AMVA over an arbitrary visit matrix",
        ),
    )


# ---------------------------------------------------------------------------
# Non-blocking all-to-all (thesis Chapter 7 extension)
# ---------------------------------------------------------------------------
def _nonblocking_window(params: Mapping[str, object]) -> float:
    """Decode the window parameter: ``k=0`` (exactly) means unbounded.

    JSON parameters must be finite, so the facade spells "no window
    limit" as ``k=0`` (the default) rather than infinity.  A negative
    window is a sign typo, not a request for unbounded pipelining, so
    it raises just like the model's own ``window >= 1`` validation.
    """
    k = float(params.get("k", 0.0))
    if k < 0.0:
        raise ValueError(
            f"window k must be >= 1, or 0 for unbounded, got {k!r}"
        )
    return math.inf if k == 0.0 else k


def _nonblocking_model(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    sol = NonBlockingModel(machine, window=_nonblocking_window(params)).solve(
        float(params["W"])
    )
    return {
        "R": sol.cycle_time,
        "X": sol.throughput,
        "round_trip": sol.round_trip,
        "Rw": sol.compute_residence,
        "Rq": sol.request_residence,
        "Ry": sol.reply_residence,
        "Uq": sol.request_utilization,
        "Uy": sol.reply_utilization,
        "overlap_speedup": sol.overlap_speedup,
    }


def _nonblocking_sim(params: Mapping[str, object]) -> dict[str, object]:
    from repro.workloads.nonblocking import run_nonblocking_alltoall

    config = _config_from_params(params)
    measured = run_nonblocking_alltoall(
        config,
        work=float(params["W"]),
        window=_nonblocking_window(params),
        cycles=int(params.get("cycles", 400)),
        work_cv2=float(params.get("work_cv2", 0.0)),
        use_streams=bool(params.get("streams", True)),
    )
    return {
        "R": measured.cycle_time,
        "X": measured.throughput,
        "round_trip": measured.round_trip,
        "overlap_speedup": measured.overlap_speedup,
        "cycles_measured": measured.requests_measured,
        "sim_time": measured.sim_time,
        "_events": measured.meta["events"],
    }


class NonBlockingScenario(Scenario):
    """k-outstanding non-blocking all-to-all traffic (thesis Chapter 7).

    Threads issue up to ``k`` overlapping requests before stalling
    (``k=0`` = unbounded pipelining); the cycle time obeys
    ``max(Rw, round_trip / k)``.  Analytic backend: the windowed LoPC
    fixed point; sim backend: the measured issue rate.  Note an
    unbounded window needs ``W > 2 So`` or the nodes saturate.
    """

    name = "nonblocking"
    title = "non-blocking all-to-all with a send window (Chapter 7)"
    schema = _MACHINE_PARAMS + (
        Param("W", float, doc="compute between request issues, cycles",
              lo=0.0, hi=20000.0),
        Param("k", float, default=0.0,
              doc="outstanding-request window; 0 = unbounded"),
        Param("cycles", int, default=400, doc="issues per node",
              control=True),
    ) + _SIM_CONTROLS
    backends = (
        Backend(
            role="analytic",
            evaluator="nonblocking-model",
            func=_nonblocking_model,
            uses=("P", "St", "So", "C2", "W", "k"),
            defaults={"k": 0.0},
            # Verified numerically over k >= 1: widening the window
            # never slows the cycle (R non-increasing -- it plateaus
            # once the window stops binding, which weak "decreasing"
            # monotonicity covers).  k=0 encodes "unbounded" and sits
            # outside the monotone run, so boxes should start at 1.
            hints={"R": {"W": "increasing", "k": "decreasing"}},
            doc="windowed LoPC fixed point (cycle = max(Rw, T/k))",
        ),
        Backend(
            role="sim",
            evaluator="nonblocking-sim",
            func=_nonblocking_sim,
            uses=("P", "St", "So", "C2", "W", "k", "cycles", "seed",
                  "work_cv2", "latency_cv2", "streams"),
            defaults={"k": 0.0, "cycles": 400, "seed": 0, "work_cv2": 0.0,
                      "latency_cv2": 0.0, "streams": True},
            doc="measured issue rate of the windowed workload",
        ),
    )


#: Declaration order drives registration order in the legacy registry.
SCENARIO_CLASSES: tuple[type[Scenario], ...] = (
    AllToAllScenario,
    SharedMemoryScenario,
    WorkpileScenario,
    MultiClassScenario,
    GeneralScenario,
    NonBlockingScenario,
)
