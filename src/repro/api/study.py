"""Studies: parameter sweeps expressed on the scenario facade.

A :class:`Study` is a scenario plus one or more swept axes.  It does no
evaluation of its own: :meth:`Study.spec` compiles the scenario's bound
parameters and the axes down to an ordinary
:class:`~repro.sweep.spec.SweepSpec` naming the backend's legacy
evaluator, and the run methods hand that spec to
:func:`~repro.sweep.runner.run_sweep` -- so a study inherits the
content-addressed result cache, the vectorized batch fast path, and the
process-pool executors unchanged, and its cache keys are byte-identical
to a hand-written spec over the same parameters.

>>> sc = scenario("alltoall", P=32, St=40.0, So=200.0, C2=0.0)
>>> study = sc.study(W=(2, 32, 512), jobs=2, cache=".lopc-cache")
>>> result = study.analytic()          # SweepResult, cache-backed
>>> sols = study.solutions("analytic")  # the same points as Solutions
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.api.scenario import Param, Scenario
from repro.api.solution import Solution
from repro.sweep.results import SweepResult
from repro.sweep.runner import CacheLike, run_sweep
from repro.sweep.spec import Axis, GridAxis, RandomAxis, SweepSpec, ZipAxis

__all__ = ["Study"]

_AXIS_TYPES = (GridAxis, ZipAxis, RandomAxis)


class Study:
    """A scenario swept over one or more parameter axes.

    Parameters
    ----------
    scenario:
        The bound :class:`~repro.api.scenario.Scenario` supplying the
        fixed parameters.
    axes:
        Mapping of parameter name to either an iterable of values (one
        :class:`~repro.sweep.spec.GridAxis` per entry, cross-producted
        in declaration order) or a ready-made axis instance
        (:class:`~repro.sweep.spec.RandomAxis` for sampled sweeps).
    jobs, cache, batch:
        Plumbed straight to :func:`~repro.sweep.runner.run_sweep`.
    seed:
        Optional *spec-level* seed: every expanded point receives a
        deterministically derived per-point ``seed`` (see
        :func:`~repro.sweep.spec.derive_point_seed`).  Distinct from
        binding ``seed=`` on the scenario, which fixes one seed for all
        points.
    name:
        Default spec name (report labels only -- never part of cache
        keys); per-run ``name=`` arguments override it.
    """

    def __init__(
        self,
        scenario: Scenario,
        axes: Mapping[str, object],
        *,
        jobs: int = 1,
        cache: CacheLike = None,
        seed: int | None = None,
        batch: bool = True,
        name: str | None = None,
    ) -> None:
        if not axes:
            raise ValueError(
                "a study needs at least one swept axis, e.g. "
                "scenario.study(W=range(2, 2049, 64))"
            )
        if seed is not None and (isinstance(seed, bool)
                                 or not isinstance(seed, int)):
            # Catches sc.study(W=..., seed=[1, 2, 3]) silently landing
            # on the spec-level seed instead of a swept axis.
            raise TypeError(
                f"spec-level seed must be an int, got {seed!r}; to sweep "
                "per-point seeds pass an axis instance, e.g. "
                "study(seeds=GridAxis('seed', (1, 2, 3)))"
            )
        self.scenario = scenario
        self.jobs = jobs
        self.cache = cache
        self.seed = seed
        self.batch = batch
        self.name = name
        cls = type(scenario)
        self.axes: tuple[Axis, ...] = tuple(
            self._build_axis(cls, key, value) for key, value in axes.items()
        )

    @staticmethod
    def _build_axis(cls: type[Scenario], name: str, value: object) -> Axis:
        if isinstance(value, _AXIS_TYPES):
            for axis_name in value.names:
                if not cls.accepts(axis_name):
                    raise ValueError(
                        f"axis parameter {axis_name!r} is not declared by "
                        f"scenario {cls.name!r}"
                    )
            return value
        if not cls.accepts(name):
            raise ValueError(
                f"unknown axis parameter {name!r} for scenario "
                f"{cls.name!r}; known: {', '.join(cls.param_names())}"
            )
        if isinstance(value, (str, bytes)) or not isinstance(value, Iterable):
            raise TypeError(
                f"axis {name!r} needs an iterable of values, got {value!r}"
            )
        values = tuple(value)
        for item in values:
            cls._check_value(name, item)  # type-compat; values kept verbatim
        return GridAxis(name, values)

    def __len__(self) -> int:
        n = 1
        for axis in self.axes:
            n *= len(axis.steps())
        return n

    def __repr__(self) -> str:
        swept = ", ".join("/".join(axis.names) for axis in self.axes)
        return (
            f"Study({type(self.scenario).name!r}, axes=[{swept}], "
            f"points={len(self)})"
        )

    # -- compilation ---------------------------------------------------
    def spec(self, role: str = "analytic", name: str | None = None) -> SweepSpec:
        """Compile this study to a :class:`SweepSpec` for ``role``.

        The base carries exactly the scenario's explicitly-bound
        parameters (filtered to what the backend consumes); omitted
        defaults are merged by the runner from the evaluator's declared
        defaults, so the compiled spec hits the same cache records as
        the equivalent hand-written one.  An axis *shadows* a bound
        parameter of the same name -- "pick a workload, vary one axis"
        works without rebuilding the scenario.
        """
        cls = type(self.scenario)
        backend = cls.backend(role)
        axis_names = {n for axis in self.axes for n in axis.names}
        for axis in self.axes:
            for axis_name in axis.names:
                if not cls.backend_accepts(backend, axis_name):
                    raise ValueError(
                        f"axis parameter {axis_name!r} is not used by the "
                        f"{role!r} backend of scenario {cls.name!r}; "
                        "sweeping it would evaluate duplicate points"
                    )
        base = {
            key: value
            for key, value in self.scenario.given.items()
            if cls.backend_accepts(backend, key) and key not in axis_names
        }
        missing = [
            p.name
            for p in cls.schema
            if isinstance(p, Param)
            and p.required
            and cls.backend_accepts(backend, p.name)
            and p.name not in base
            and p.name not in axis_names
        ]
        if missing:
            raise ValueError(
                f"scenario {cls.name!r} {role} study is missing required "
                f"parameter(s): {', '.join(missing)} (bind them on the "
                "scenario or sweep them on an axis)"
            )
        # The spec-level seed injects a derived per-point `seed` param;
        # on a backend that never reads one (the deterministic analytic
        # and bounds solvers) that would only fragment the cache and add
        # a meaningless column, so it applies to seed-consuming backends
        # only -- one study can carry a seed for its sim runs and still
        # share analytic records with every other sweep.
        seed = self.seed if cls.backend_accepts(backend, "seed") else None
        return SweepSpec(
            name=name or self.name or f"study/{cls.name}/{role}",
            evaluator=backend.evaluator,
            base=base,
            axes=self.axes,
            seed=seed,
        )

    # -- execution -----------------------------------------------------
    def run(
        self,
        role: str = "analytic",
        name: str | None = None,
        *,
        warm_start: bool = False,
        metrics: object = None,
        progress: object = None,
        events: object = None,
    ) -> SweepResult:
        """Evaluate every point through the existing sweep runner.

        ``warm_start=True`` seeds each point's solver iteration from
        neighbouring points along the swept axes (see
        :func:`~repro.sweep.runner.run_sweep`) -- same fixed points to
        within solver tolerance, same cache keys, roughly half the AMVA
        iterations on dense grids.  ``metrics`` / ``progress`` /
        ``events`` plumb straight to
        :func:`~repro.sweep.runner.run_sweep`'s telemetry arguments:
        pass ``metrics=True`` (or a registry) to get solver iteration
        stats, cache traffic and routing splits in the result metadata,
        ``progress=`` a reporter or callable for live updates, and
        ``events=`` a JSONL path or sink for structured events.
        """
        return run_sweep(
            self.spec(role, name),
            cache=self.cache,
            jobs=self.jobs,
            batch=self.batch,
            warm_start=warm_start,
            metrics=metrics,
            progress=progress,
            events=events,
        )

    def analytic(self, name: str | None = None, **telemetry: object) -> SweepResult:
        """Run the analytic backend over the grid; returns a SweepResult."""
        return self.run("analytic", name, **telemetry)

    def bounds(self, name: str | None = None, **telemetry: object) -> SweepResult:
        """Run the bounds backend over the grid; returns a SweepResult."""
        return self.run("bounds", name, **telemetry)

    def simulate(self, name: str | None = None, **telemetry: object) -> SweepResult:
        """Run the simulation backend over the grid; returns a SweepResult."""
        return self.run("sim", name, **telemetry)

    def optimize(
        self,
        *,
        minimize: str | None = None,
        maximize: str | None = None,
        knee: str | None = None,
        subject_to: object = None,
        role: str = "analytic",
        **kwargs: object,
    ):
        """Answer an inverse query over this study's axes.

        The search box is derived from the axes -- a
        :class:`~repro.sweep.spec.GridAxis` contributes the min/max of
        its values, a :class:`~repro.sweep.spec.RandomAxis` its
        ``low``/``high`` range (``log``/``integer`` geometry preserved)
        -- so ``study(W=range(2, 2049, 64)).optimize(minimize="R")``
        asks "over the same space I would sweep, what is the best
        point?" with a handful of batch solves instead of the full
        grid.  Remaining keywords plumb to
        :meth:`~repro.api.scenario.Scenario.optimize`.
        """
        from repro.opt.space import AxisSpec

        cls = type(self.scenario)
        over: dict[str, object] = {}
        for axis in self.axes:
            if isinstance(axis, ZipAxis):
                raise ValueError(
                    "optimize() cannot derive a box from a ZipAxis "
                    f"(correlated parameters {'/'.join(axis.names)}); "
                    "pass explicit bounds via scenario.optimize(over=...)"
                )
            if isinstance(axis, RandomAxis):
                over[axis.name] = AxisSpec(
                    axis.name, float(axis.low), float(axis.high),
                    integer=axis.integer, log=axis.log,
                )
                continue
            numeric = [
                v for v in axis.values
                if isinstance(v, (int, float)) and not isinstance(v, bool)
            ]
            if not numeric:
                raise ValueError(
                    f"optimize() needs numeric values on axis {axis.name!r}"
                )
            entry = cls.find_param(axis.name)
            integer = getattr(entry, "type", float) is int
            over[axis.name] = AxisSpec(
                axis.name, float(min(numeric)), float(max(numeric)),
                integer=integer,
            )
        return self.scenario.optimize(
            minimize=minimize, maximize=maximize, knee=knee, over=over,
            subject_to=subject_to, backend=role, **kwargs,
        )

    def solutions(self, role: str = "analytic",
                  name: str | None = None) -> list[Solution]:
        """Run ``role`` and wrap every point as a :class:`Solution`.

        The columns and parameters are exactly the sweep records'
        (cache-backed and batch-fast-pathed); the wrapper only adds the
        typed provenance fields.
        """
        backend = type(self.scenario).backend(role)
        result = self.run(role, name)
        return [
            Solution(
                scenario=type(self.scenario).name,
                backend=role,
                evaluator=backend.evaluator,
                params=record.params,
                values=record.values,
                meta=record.meta,
            )
            for record in result
        ]
