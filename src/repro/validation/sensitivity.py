"""Sensitivity of the reproduction to the paper's unstated constants.

The paper's evaluation figures omit some operating-point constants
(``St`` for the Chapter 5 figures; ``W`` and ``St`` for Figure 6-2).
EXPERIMENTS.md asserts the reproduced *shapes* are insensitive to those
choices; this module is the machinery behind that claim: grid sweeps
that re-run the model-vs-simulator comparison across plausible ranges
and report worst-case errors.

Used by the test suite (``tests/validation/test_sensitivity.py``) and
available to users who pick different constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.alltoall import AllToAllModel
from repro.core.client_server import ClientServerModel
from repro.core.params import MachineParams
from repro.sim.machine import MachineConfig
from repro.validation.compare import signed_error_pct
from repro.workloads.alltoall import run_alltoall
from repro.workloads.workpile import run_workpile

__all__ = [
    "GridPoint",
    "SensitivityReport",
    "alltoall_sensitivity",
    "workpile_sensitivity",
]


@dataclass(frozen=True)
class GridPoint:
    """One operating point of a sensitivity sweep."""

    parameters: Mapping[str, float]
    model_value: float
    measured_value: float
    error_pct: float


@dataclass(frozen=True)
class SensitivityReport:
    """Worst/mean errors over a parameter grid."""

    quantity: str
    points: Sequence[GridPoint] = field(repr=False)

    @property
    def worst_error_pct(self) -> float:
        return max(abs(p.error_pct) for p in self.points)

    @property
    def mean_error_pct(self) -> float:
        return sum(abs(p.error_pct) for p in self.points) / len(self.points)

    @property
    def always_pessimistic(self) -> bool:
        """True when the model never under-predicts (response times) /
        never over-predicts (throughputs) beyond sampling noise."""
        return all(p.error_pct >= -1.5 for p in self.points)

    def within(self, bound_pct: float) -> bool:
        return self.worst_error_pct <= bound_pct


def alltoall_sensitivity(
    latencies: Sequence[float] = (0.0, 20.0, 80.0, 200.0),
    works: Sequence[float] = (0.0, 200.0, 1024.0),
    handler_time: float = 200.0,
    processors: int = 16,
    handler_cv2: float = 0.0,
    cycles: int = 200,
    seed: int = 90125,
) -> SensitivityReport:
    """Model-vs-sim response-time error over an (St, W) grid.

    The Chapter 5 figures fix ``St`` implicitly; this sweep shows the
    "within ~6%" claim holds for any reasonable choice.
    """
    points: list[GridPoint] = []
    for st in latencies:
        machine = MachineParams(latency=st, handler_time=handler_time,
                                processors=processors,
                                handler_cv2=handler_cv2)
        model = AllToAllModel(machine)
        config = MachineConfig.from_machine_params(machine, seed=seed)
        for work in works:
            predicted = model.solve_work(work).response_time
            measured = run_alltoall(config, work=work,
                                    cycles=cycles).response_time
            points.append(
                GridPoint(
                    parameters={"St": st, "W": work},
                    model_value=predicted,
                    measured_value=measured,
                    error_pct=signed_error_pct(predicted, measured),
                )
            )
    return SensitivityReport(quantity="alltoall response time",
                             points=points)


def workpile_sensitivity(
    latencies: Sequence[float] = (0.0, 10.0, 40.0),
    works: Sequence[float] = (0.0, 250.0, 1000.0),
    servers: int = 8,
    handler_time: float = 131.0,
    processors: int = 32,
    handler_cv2: float = 0.0,
    chunks: int = 200,
    seed: int = 90126,
) -> SensitivityReport:
    """Model-vs-sim throughput error over the Figure 6-2 unknowns."""
    points: list[GridPoint] = []
    for st in latencies:
        machine = MachineParams(latency=st, handler_time=handler_time,
                                processors=processors,
                                handler_cv2=handler_cv2)
        config = MachineConfig.from_machine_params(machine, seed=seed)
        for work in works:
            model = ClientServerModel(machine, work=work)
            predicted = model.solve(servers).throughput
            measured = run_workpile(config, servers=servers, work=work,
                                    chunks=chunks).throughput
            # Positive = model optimistic for throughput; flip the sign so
            # "pessimistic" keeps one meaning across reports.
            points.append(
                GridPoint(
                    parameters={"St": st, "W": work},
                    model_value=predicted,
                    measured_value=measured,
                    error_pct=-signed_error_pct(predicted, measured),
                )
            )
    return SensitivityReport(quantity="workpile throughput", points=points)
