"""Error metrics and structured model-vs-simulation comparisons.

Sign convention follows the paper: *positive* error means the model is
pessimistic (predicts a larger response time / smaller throughput than
measured).  The paper's headline claims, all checked by the ``claims``
experiment and the integration tests:

* LoPC response time within ~6 % of measurement (pessimistic, worst at
  ``W = 0``, error -> 0 as ``W`` grows);
* the contention-free (LogP-style) model *under*-predicts by up to 37 %
  at ``W = 0`` and still ~13 % at ``W = 1024``;
* most of LoPC's ``W = 0`` error sits in the reply-handler term (the
  paper reports a 76 % over-prediction of reply queueing);
* the workpile model's throughput is conservative by <= ~3 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.results import ModelSolution
from repro.validation.tolerances import CONTENTION_FLOOR
from repro.workloads.base import SimulationMeasurement

__all__ = [
    "ComparisonReport",
    "compare_alltoall",
    "relative_error",
    "signed_error_pct",
]


def relative_error(predicted: float, measured: float) -> float:
    """Signed relative error ``(predicted - measured) / measured``.

    Positive = model pessimistic (for residence times) per the paper's
    convention.
    """
    if measured == 0:
        raise ValueError("measured value is zero; relative error undefined")
    return (predicted - measured) / measured


def signed_error_pct(predicted: float, measured: float) -> float:
    """:func:`relative_error` in percent."""
    return 100.0 * relative_error(predicted, measured)


@dataclass(frozen=True)
class ComparisonReport:
    """Per-component model-vs-simulation errors for one configuration.

    All errors are signed percentages (positive = model pessimistic).
    """

    work: float
    response_error: float
    compute_error: float
    request_error: float
    reply_error: float
    total_contention_error: float
    reply_contention_error: float | None
    model: ModelSolution = field(compare=False)
    measurement: SimulationMeasurement = field(compare=False)
    extra: Mapping[str, float] = field(default_factory=dict, compare=False)

    def max_component_error(self) -> float:
        """Largest absolute per-component residence error (percent)."""
        return max(
            abs(self.response_error),
            abs(self.compute_error),
            abs(self.request_error),
            abs(self.reply_error),
        )


def compare_alltoall(
    model: ModelSolution, measurement: SimulationMeasurement
) -> ComparisonReport:
    """Compare a model solution against a simulation measurement.

    Component errors compare the Figure 4-3 terms directly; contention
    errors compare the Figure 5-3 decomposition (model minus measured
    queueing above the contention-free floor).
    """
    reply_cont_err: float | None
    if measurement.reply_contention > CONTENTION_FLOOR:
        reply_cont_err = signed_error_pct(
            model.reply_contention, measurement.reply_contention
        )
    else:
        reply_cont_err = None
    if abs(measurement.total_contention) > CONTENTION_FLOOR:
        total_cont_err = signed_error_pct(
            model.total_contention, measurement.total_contention
        )
    else:
        total_cont_err = 0.0
    return ComparisonReport(
        work=measurement.work,
        response_error=signed_error_pct(
            model.response_time, measurement.response_time
        ),
        compute_error=signed_error_pct(
            model.compute_residence, measurement.compute_residence
        ),
        request_error=signed_error_pct(
            model.request_residence, measurement.request_residence
        ),
        reply_error=signed_error_pct(
            model.reply_residence, measurement.reply_residence
        ),
        total_contention_error=total_cont_err,
        reply_contention_error=reply_cont_err,
        model=model,
        measurement=measurement,
    )
