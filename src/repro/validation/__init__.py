"""Model-vs-simulation comparison utilities."""

from repro.validation import tolerances
from repro.validation.compare import (
    ComparisonReport,
    compare_alltoall,
    relative_error,
    signed_error_pct,
)

__all__ = [
    "ComparisonReport",
    "compare_alltoall",
    "relative_error",
    "signed_error_pct",
    "tolerances",
]
