"""Centralised invariant tolerances.

Every numeric band the validation layer asserts -- the shape checks in
:mod:`repro.validation`, the integration tests, and the scenario fuzzer
(:mod:`repro.fuzz`) -- is declared here, once, with its provenance.
Scattered per-check literals made the sim-vs-analytic bands impossible
to audit; a fuzzer that gates CI needs its thresholds reviewable in one
place.

Two kinds of tolerance live here and should not be confused:

* **slack** constants absorb floating-point noise on relations that are
  mathematically exact or one-sided (bounds bracket the model, Bard is
  pessimistic, populations are conserved).  They are tiny (``1e-9``-ish)
  and a violation means a *bug*, not model error.
* **band** constants describe how far an *approximation* is allowed to
  drift from its reference (Schweitzer vs. exact MVA, simulation vs.
  analytic model).  They are calibrated empirically -- each records the
  measurement that justified it -- and a violation means the
  approximation degraded, which is exactly what the fuzzer exists to
  catch early.
"""

from __future__ import annotations

__all__ = [
    "ABS_SLACK",
    "AMVA_MULTICLASS_ORDER_BAND",
    "BARD_VS_EXACT_REL_SLACK",
    "BOUNDS_REL_SLACK",
    "CONTENTION_FLOOR",
    "GENERAL_BATCH_REL",
    "OPT_VS_GRID_REL",
    "POPULATION_CONSERVATION_REL",
    "REL_SLACK",
    "SCHWEITZER_VS_BARD_REL_SLACK",
    "SCHWEITZER_VS_EXACT_BAND",
    "SIM_RESPONSE_PCT_BAND",
    "SIM_THROUGHPUT_PCT_BAND",
    "UTILISATION_SLACK",
]

#: Generic absolute slack (in cycles) for one-sided assertions on
#: residence/cycle times.  Covers accumulation noise in the damped
#: fixed-point solves (tol=1e-12 on states of magnitude <= ~1e6).
ABS_SLACK = 1e-9

#: Generic relative slack for identities that are exact in real
#: arithmetic (e.g. the workpile cycle decomposition R = W+2St+Rs+So).
REL_SLACK = 1e-9

#: Below this, a measured contention component counts as zero and its
#: relative error is undefined (guards the divisions in
#: :func:`repro.validation.compare.compare_alltoall`).
CONTENTION_FLOOR = 1e-9

#: The rule-of-thumb bracket (Eq. 5.12) and the LogP workpile bounds are
#: derived, not fitted: lower <= model <= upper holds analytically, so
#: only solver noise needs absorbing.
BOUNDS_REL_SLACK = 1e-9

#: Bard AMVA (full-population residence) is pessimistic relative to the
#: exact MVA recursion -- but only provably so for a *single* class.
#: Measured over 1,500 random closed networks (1-3 classes, 1-4
#: centres, mixed queueing/delay kinds, optional think times): the 488
#: single-class points never dip below exact (min margin +1.3e-7), so
#: single-class networks assert the strict ordering with this slack.
BARD_VS_EXACT_REL_SLACK = 1e-9

#: With 2+ classes the AMVA orderings are heuristics, not theorems: the
#: same 1,500-network measurement saw Bard dip up to 0.40% *below*
#: exact and Schweitzer rise up to 0.12% *above* Bard.  Multi-class
#: points therefore assert the orderings only up to this band (~5x the
#: observed worst case).
AMVA_MULTICLASS_ORDER_BAND = 0.02

#: Schweitzer's (N-1)/N scaling removes queue mass from Bard's update,
#: so single-class cycle times sit at or below Bard's (same
#: measurement: strict at every single-class point, min margin 1.3e-7).
SCHWEITZER_VS_BARD_REL_SLACK = 1e-9

#: How far Schweitzer AMVA may drift from exact MVA, relative.  NOTE:
#: Schweitzer is *not* one-sidedly optimistic (a prior 300-network
#: measurement found 581 per-class points with schweitzer > exact), so
#: the invariant is a two-sided band.  Measured worst case over 1,500
#: random networks: +38.6% (three classes crowding one centre with
#: near-zero think times) / +7.2% single-class; 0.75 leaves ~2x
#: headroom without masking a broken update rule.
SCHWEITZER_VS_EXACT_BAND = 0.75

#: Closed networks conserve jobs: sum_k Q_k + sum_c X_c Z_c == sum_c N_c
#: for the exact MVA recursion.  Measured residual is machine epsilon
#: (~2e-16 relative); 1e-9 absorbs larger populations.
POPULATION_CONSERVATION_REL = 1e-9

#: solve_general_batch agrees with per-model GeneralLoPCModel.solve to
#: solver tolerance (bit-identity holds on mainstream BLAS but is not
#: contractual for matmul -- see the solve_general_batch docstring), so
#: the general scenario's batch-vs-scalar check uses a relative band a
#: few orders above the fixed-point tol=1e-12.
GENERAL_BATCH_REL = 1e-8

#: Strict utilisation caps (Uq < 1, Us <= 1) get this much float slack.
UTILISATION_SLACK = 1e-9

#: Relative band for the optimizer-vs-grid invariant: the *objective
#: value* found by ``repro.opt`` (bisection / golden-section / boundary
#: pick, default tolerances) must come within this fraction of the
#: brute-force argmin over a dense grid of the same box.  The default
#: relative x-tolerance is 1e-4 of the span; on the steepest curves the
#: fuzzer exercises (dR/dW ~ 2 near saturation) that x-error maps to
#: ~1e-3 relative in R, and integer axes resolve exactly.  1e-2 leaves
#: ~10x headroom while still failing instantly if a search direction or
#: bracket update breaks (those land >10% off or at a box edge).
OPT_VS_GRID_REL = 1e-2

#: Signed percent band (model - sim) / sim for sampled-simulation
#: all-to-all response times at fuzzing lengths (~160 request
#: cycles/node).  This is a *smoke* band: random fuzz points include
#: corners (C2 = 4, St = 0, tiny P) where the residual-life
#: approximation genuinely drifts far from a short simulation, so the
#: band only catches sign/magnitude breakage; the paper's ~6% claims
#: are enforced at the figure points by the integration tests.
#: Calibrated over 120 seeded random points at 160 cycles: observed
#: [-13.6%, +34.4%]; ~1.5x headroom each side.
SIM_RESPONSE_PCT_BAND = (-25.0, 50.0)

#: Signed percent band for sampled-simulation workpile throughput.
#: Same smoke-band caveat; the model is conservative (negative error)
#: and degenerate closed networks (< 2 clients) are excluded by the
#: runner's sim filter because a 1-customer network has no queueing for
#: the residual-life term to model.  Calibrated over 80 seeded random
#: points (clients >= 2, 160 chunks): observed [-38.1%, +1.6%].
SIM_THROUGHPUT_PCT_BAND = (-55.0, 10.0)
