"""Client-server workpile workload (paper Chapter 6) -- simulation side.

Nodes ``0 .. Ps-1`` are servers: their "threads" are passive (no
computation, no requests); they only run request handlers that hand out
chunks.  Nodes ``Ps .. P-1`` are clients looping: process a chunk
(``W`` cycles, drawn from a distribution since "the amount of work
required to process each chunk is highly variable"), then issue a
blocking request to a uniformly random server for the next chunk.

Measured throughput uses Little's law on the mean measured cycle
(``X = Pc / mean(R)``), which is the steady-state estimator and matches
the model's Eq. 6.2; the wall-clock rate is also reported for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Mapping

from repro.sim.distributions import from_mean_cv2
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import CycleRecord, summarize_cycles
from repro.sim.threads import Compute, Send, ThreadEffect, Wait
from repro.workloads.base import trim_records

__all__ = ["WorkpileMeasurement", "run_workpile"]

_GOT_CHUNK = "workpile.got-chunk"


def _chunk_reply_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.reply_arrived = message.arrived_at
    record.reply_done = message.completed_at
    node.memory[_GOT_CHUNK] = True
    node.notify()


def _chunk_request_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.request_arrived = message.arrived_at
    record.request_done = message.completed_at
    node.memory["workpile.chunks_served"] = (
        node.memory.get("workpile.chunks_served", 0) + 1
    )
    node.send(
        dest=message.source,
        handler=_chunk_reply_handler,
        kind="reply",
        payload=record,
    )


@dataclass(frozen=True)
class WorkpileMeasurement:
    """Measured workpile steady state for one ``(Ps, Pc)`` split."""

    servers: int
    clients: int
    throughput: float  # Little's-law estimator Pc / mean(R)
    wall_throughput: float  # chunks / sim-time over the whole run
    response_time: float  # mean chunk cycle R at the clients
    server_residence: float  # mean Rq at the servers (the model's Rs)
    reply_residence: float  # mean Ry at the clients (~ So, no contention)
    compute_residence: float  # mean Rw at the clients (~ W)
    server_utilization: float
    server_queue: float
    cycles_measured: int
    sim_time: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def X(self) -> float:  # noqa: N802 - paper notation
        return self.throughput

    @property
    def Rs(self) -> float:  # noqa: N802 - paper notation
        return self.server_residence


def run_workpile(
    config: MachineConfig,
    servers: int,
    work: float,
    chunks: int = 300,
    warmup: int | None = None,
    cooldown: int | None = None,
    work_cv2: float = 0.0,
    use_streams: bool = True,
) -> WorkpileMeasurement:
    """Simulate the workpile for one split and return measured means.

    Parameters
    ----------
    config:
        Machine description; ``config.processors`` is the total ``P``.
    servers:
        ``Ps`` -- nodes dedicated to serving chunks (1 <= Ps <= P-1).
    work:
        Mean chunk processing time ``W`` at the clients.
    chunks:
        Chunks each client processes.
    work_cv2:
        Squared CV of chunk size (chunk sizes are "highly variable" in
        real workpiles; the model depends only on the mean).
    use_streams:
        Bulk-drawn RNG streams + fast event loop (default); ``False``
        reproduces the seed repo's scalar trajectories bit for bit.
    """
    p = config.processors
    if not 1 <= servers <= p - 1:
        raise ValueError(f"servers must lie in [1, {p - 1}], got {servers!r}")
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks!r}")
    if warmup is None:
        warmup = max(1, chunks // 10)
    if cooldown is None:
        cooldown = max(1, chunks // 10)
    if warmup + cooldown >= chunks:
        raise ValueError(
            f"warmup+cooldown ({warmup}+{cooldown}) must leave records "
            f"from {chunks} chunks"
        )

    work_dist = from_mean_cv2(work, work_cv2)

    def client_body(node: Node) -> Generator[ThreadEffect, None, None]:
        # Bulk-drawn chunk sizes and server picks; the client knows its
        # own draw budget, so it pre-sizes both streams.
        work_stream = node.sample_stream(work_dist)
        work_stream.reserve(chunks)
        pick = node.pick_stream(servers)
        pick.reserve(chunks)
        unblocked_at = node.sim.now
        for _ in range(chunks):
            record = CycleRecord(node=node.id, start=unblocked_at)
            yield Compute(work_stream.draw())
            record.send = node.sim.now
            dest = pick.draw()
            node.memory[_GOT_CHUNK] = False
            yield Send(dest, _chunk_request_handler, kind="request",
                       payload=record)
            yield Wait(lambda n: n.memory[_GOT_CHUNK], label="await-chunk")
            unblocked_at = record.reply_done
            node.cycles.append(record)

    machine = Machine(config, use_streams=use_streams)
    bodies: list = [None] * servers + [client_body] * (p - servers)
    machine.install_threads(bodies)
    # Servers each absorb ~chunks*clients/servers request handlers,
    # clients one reply handler per chunk; two wire hops per chunk.
    n_clients = p - servers
    per_node = max(-(-chunks * n_clients // servers), chunks)
    machine.reserve_streams(
        service_draws_per_node=per_node,
        latency_draws=2 * chunks * n_clients,
    )
    machine.start()
    client_ids = list(range(servers, p))
    machine.run(
        stop=lambda: all(
            len(machine.nodes[c].cycles) >= warmup for c in client_ids
        )
    )
    machine.reset_stats()
    machine.run()

    records = []
    for cid in client_ids:
        records.extend(trim_records(machine.nodes[cid].cycles, warmup, cooldown))
    summary = summarize_cycles(records)
    now = machine.sim.now
    clients = p - servers
    server_nodes = machine.nodes[:servers]
    server_util = sum(
        n.stats.utilization(now, "request") for n in server_nodes
    ) / servers
    server_queue = sum(
        n.stats.mean_handler_queue(now) for n in server_nodes
    ) / servers
    total_chunks = sum(len(machine.nodes[c].cycles) for c in client_ids)
    return WorkpileMeasurement(
        servers=servers,
        clients=clients,
        throughput=clients / summary["R"],
        wall_throughput=total_chunks / now if now > 0 else 0.0,
        response_time=summary["R"],
        server_residence=summary["Rq"],
        reply_residence=summary["Ry"],
        compute_residence=summary["Rw"],
        server_utilization=server_util,
        server_queue=server_queue,
        cycles_measured=int(summary["count"]),
        sim_time=now,
        work=work,
        latency=config.latency,
        handler_time=config.handler_time,
        meta={
            "workload": "workpile",
            "seed": config.seed,
            "chunks": chunks,
            "work_cv2": work_cv2,
            "streamed": use_streams,
            "events": machine.sim.events_processed,
        },
    )
