"""Matrix-vector multiply (paper Section 3) -- a *real program* on the
simulated machine.

The paper's parameterisation example: an ``N x N`` matrix ``A`` is
cyclically distributed over ``P`` processors (row ``i`` lives on node
``i mod P``); the vector ``x`` is replicated; the product ``y = A x``
must end up replicated too.  After computing the dot product ``y_i``,
the owner sends the value to each of the other ``P - 1`` nodes with a
blocking *put*: the remote handler stores the value and acknowledges,
and the sender waits for the ack.

Per node, the operation counts are ``m = N/P * N`` multiply-adds and
``n = N/P * (P - 1)`` puts, so the LoPC work parameter is
``W = m/n = N * t_madd / (P - 1)`` -- exactly the Section 3 derivation,
available here as :meth:`MatVecWorkload.algorithm_params`.

The workload *actually computes* ``y``: the put handler writes the value
into the destination node's memory, and :func:`run_matvec` verifies every
node's ``y`` against ``A @ x`` before reporting timings -- the simulator
is a real active-message machine, not a traffic generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Mapping

import numpy as np

from repro.core.params import AlgorithmParams
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import CycleRecord, summarize_cycles
from repro.sim.streams import stream_shuffle
from repro.sim.threads import Compute, Send, ThreadEffect, Wait
from repro.workloads.base import trim_records

__all__ = ["MatVecResult", "MatVecWorkload", "run_matvec"]

_ACKED = "matvec.acked"
_Y = "matvec.y"


def _ack_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.reply_arrived = message.arrived_at
    record.reply_done = message.completed_at
    node.memory[_ACKED] = True
    node.notify()


def _put_handler(node: Node, message: Message) -> None:
    record, index, value = message.payload
    node.memory[_Y][index] = value  # the actual remote store
    record.request_arrived = message.arrived_at
    record.request_done = message.completed_at
    node.send(
        dest=message.source,
        handler=_ack_handler,
        kind="reply",
        payload=record,
    )


@dataclass(frozen=True)
class MatVecWorkload:
    """Cyclically-distributed ``y = A x`` with blocking puts.

    Parameters
    ----------
    matrix:
        The full ``N x N`` matrix ``A`` (every node gets its own rows).
    vector:
        The replicated input ``x`` (length ``N``).
    madd_cycles:
        Cost of one multiply-add in cycles (``t_madd``); a row's dot
        product costs ``N * madd_cycles``.
    randomize_order:
        If True, each row's puts go out in a random destination order.
        The paper's algorithm (False) uses a deterministic cyclic order,
        which on a variance-free simulator self-synchronises into a
        nearly contention-free schedule (the CM-5 effect from the
        paper's introduction); randomising the order restores the
        irregular arrivals the LoPC analysis assumes.
    """

    matrix: np.ndarray
    vector: np.ndarray
    madd_cycles: float = 1.0
    randomize_order: bool = False

    def __post_init__(self) -> None:
        a = np.asarray(self.matrix, dtype=float)
        x = np.asarray(self.vector, dtype=float)
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValueError(f"matrix must be square, got shape {a.shape}")
        if x.shape != (a.shape[0],):
            raise ValueError(
                f"vector length {x.shape} does not match matrix {a.shape}"
            )
        if self.madd_cycles <= 0:
            raise ValueError(
                f"madd_cycles must be > 0, got {self.madd_cycles!r}"
            )
        object.__setattr__(self, "matrix", a)
        object.__setattr__(self, "vector", x)

    @property
    def n_dim(self) -> int:
        return self.matrix.shape[0]

    def rows_of(self, node_id: int, processors: int) -> range:
        """Row indices assigned to ``node_id`` (cyclic distribution)."""
        return range(node_id, self.n_dim, processors)

    def algorithm_params(self, processors: int) -> AlgorithmParams:
        """The Section 3 LoPC characterisation ``W = N t_madd / (P-1)``.

        ``m = (N/P) N`` multiply-adds and ``n = (N/P)(P-1)`` puts per
        node; their ratio is independent of the per-node row count.
        """
        n = self.n_dim
        rows_per_node = n / processors
        arithmetic = rows_per_node * n * self.madd_cycles
        puts = int(round(rows_per_node * (processors - 1)))
        if puts < 1:
            raise ValueError(
                f"matrix of size {n} on {processors} nodes yields no puts"
            )
        return AlgorithmParams(
            work=arithmetic / puts, requests=puts
        )

    def thread_body(self, node: Node) -> Generator[ThreadEffect, None, None]:
        p = node.network.node_count
        a, x = self.matrix, self.vector
        unblocked_at = node.sim.now
        for i in self.rows_of(node.id, p):
            # The dot product: N multiply-adds, then P-1 blocking puts.
            value = float(a[i] @ x)
            node.memory[_Y][i] = value  # local store
            first_put_of_row = True
            offsets = list(range(1, p))
            if self.randomize_order:
                # Stream-drawn so the determinism contract holds: bulk
                # picks on streamed machines, seed-exact scalars otherwise.
                stream_shuffle(node.streams, offsets)
            for offset in offsets:
                dest = (node.id + offset) % p
                record = CycleRecord(node=node.id, start=unblocked_at)
                if first_put_of_row:
                    yield Compute(self.n_dim * self.madd_cycles)
                    first_put_of_row = False
                record.send = node.sim.now
                node.memory[_ACKED] = False
                yield Send(
                    dest,
                    _put_handler,
                    kind="request",
                    payload=(record, i, value),
                )
                yield Wait(lambda n: n.memory[_ACKED], label="await-ack")
                unblocked_at = record.reply_done
                node.cycles.append(record)


@dataclass(frozen=True)
class MatVecResult:
    """Outcome of a simulated matrix-vector multiply."""

    correct: bool  # every node's y equals A @ x
    runtime: float  # simulated cycles until the last thread finished
    response_time: float  # mean put cycle R (trimmed)
    compute_residence: float
    request_residence: float
    reply_residence: float
    puts_per_node: int
    algorithm: AlgorithmParams
    max_abs_error: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)


def run_matvec(
    config: MachineConfig,
    size: int,
    madd_cycles: float = 1.0,
    seed: int | None = None,
    warmup_fraction: float = 0.1,
    randomize_order: bool = False,
) -> MatVecResult:
    """Run ``y = A x`` on the simulated machine and verify the numerics.

    Parameters
    ----------
    config:
        Machine description.  ``size`` should be a multiple of
        ``config.processors`` for a balanced run (not required).
    size:
        Matrix dimension ``N``.
    madd_cycles:
        Cycles per multiply-add.
    seed:
        Seed for generating ``A`` and ``x`` (defaults to ``config.seed``).
    """
    if size < config.processors:
        raise ValueError(
            f"size ({size}) must be >= processors ({config.processors}) "
            "so every node owns at least one row"
        )
    rng = np.random.default_rng(config.seed if seed is None else seed)
    a = rng.standard_normal((size, size))
    x = rng.standard_normal(size)
    workload = MatVecWorkload(
        matrix=a,
        vector=x,
        madd_cycles=madd_cycles,
        randomize_order=randomize_order,
    )

    machine = Machine(config)
    for node in machine.nodes:
        node.memory[_Y] = np.zeros(size)
    machine.install_threads([workload.thread_body] * config.processors)
    machine.run_to_completion()

    expected = a @ x
    max_err = max(
        float(np.max(np.abs(node.memory[_Y] - expected)))
        for node in machine.nodes
    )
    correct = bool(max_err < 1e-9)

    algorithm = workload.algorithm_params(config.processors)
    per_node = [len(n.cycles) for n in machine.nodes]
    warmup = max(1, int(min(per_node) * warmup_fraction))
    cooldown = warmup
    records = []
    for node in machine.nodes:
        if len(node.cycles) > warmup + cooldown:
            records.extend(trim_records(node.cycles, warmup, cooldown))
    summary = summarize_cycles(records)
    return MatVecResult(
        correct=correct,
        runtime=machine.sim.now,
        response_time=summary["R"],
        compute_residence=summary["Rw"],
        request_residence=summary["Rq"],
        reply_residence=summary["Ry"],
        puts_per_node=algorithm.requests,
        algorithm=algorithm,
        max_abs_error=max_err,
        meta={
            "workload": "matvec",
            "size": size,
            "seed": config.seed if seed is None else seed,
            "events": machine.sim.events_processed,
            "cycles_measured": int(summary["count"]),
        },
    )
