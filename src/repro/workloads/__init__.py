"""Paired model/simulation workloads.

Each module builds a workload twice: once as thread programs + handlers
for the event-driven simulator (:mod:`repro.sim`) and once as parameters
for the corresponding analytical model (:mod:`repro.core`).  The paper's
evaluation is exactly this pairing: model prediction vs simulator
measurement for the same traffic.

* :mod:`repro.workloads.alltoall` -- homogeneous all-to-all blocking
  request/reply (paper Section 5).
* :mod:`repro.workloads.workpile` -- client-server chunk distribution
  (paper Chapter 6).
* :mod:`repro.workloads.matvec` -- the Section 3 matrix-vector multiply,
  actually computing ``y = A x`` on the simulated machine.
* :mod:`repro.workloads.patterns` -- visit-matrix patterns: hotspots and
  multi-hop forwarding chains (Appendix A traffic).
* :mod:`repro.workloads.nonblocking` -- k-outstanding non-blocking
  requests (the Chapter 7 extension).
"""

from repro.workloads.alltoall import AllToAllWorkload, run_alltoall
from repro.workloads.barrier import BarrierMeasurement, run_barrier_alltoall
from repro.workloads.base import SimulationMeasurement
from repro.workloads.matvec import MatVecResult, MatVecWorkload, run_matvec
from repro.workloads.nonblocking import (
    NonBlockingMeasurement,
    run_nonblocking_alltoall,
)
from repro.workloads.patterns import (
    HeterogeneousUniformPattern,
    HotspotPattern,
    MultiHopRingPattern,
    RandomMultiHopPattern,
    run_pattern,
)
from repro.workloads.workpile import WorkpileMeasurement, run_workpile

__all__ = [
    "AllToAllWorkload",
    "BarrierMeasurement",
    "HeterogeneousUniformPattern",
    "HotspotPattern",
    "MatVecResult",
    "MatVecWorkload",
    "MultiHopRingPattern",
    "NonBlockingMeasurement",
    "RandomMultiHopPattern",
    "SimulationMeasurement",
    "WorkpileMeasurement",
    "run_alltoall",
    "run_barrier_alltoall",
    "run_matvec",
    "run_nonblocking_alltoall",
    "run_pattern",
    "run_workpile",
]
