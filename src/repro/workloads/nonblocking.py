"""Non-blocking all-to-all workload (Chapter 7 extension) -- simulation side.

Each thread computes ``W`` cycles and issues a request *without waiting*
for the reply, unless ``window`` requests are already outstanding, in
which case it stalls until a reply retires one.  Matches
:class:`repro.core.nonblocking.NonBlockingModel`.

Measured quantities:

* mean *inter-issue time* (the model's ``cycle_time``), from consecutive
  send timestamps;
* mean *round trip* per request (send -> reply-handler completion, the
  model's ``2 St + Rq + Ry`` -- note this measures the full latency seen
  by an individual request, which is not on the thread's critical path
  once the window covers the bandwidth-delay product).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, Mapping

from repro.sim.distributions import from_mean_cv2
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.threads import Compute, Send, ThreadEffect, Wait

__all__ = ["NonBlockingMeasurement", "run_nonblocking_alltoall"]

_OUTSTANDING = "nonblocking.outstanding"
_ISSUES = "nonblocking.issues"
_TRIPS = "nonblocking.round-trips"


def _nb_reply_handler(node: Node, message: Message) -> None:
    node.memory[_OUTSTANDING] -= 1
    node.memory[_TRIPS].append(message.completed_at - message.payload)
    node.notify()


def _nb_request_handler(node: Node, message: Message) -> None:
    node.send(
        dest=message.source,
        handler=_nb_reply_handler,
        kind="reply",
        payload=message.payload,  # original send timestamp rides along
    )


@dataclass(frozen=True)
class NonBlockingMeasurement:
    """Measured steady state of the non-blocking workload."""

    cycle_time: float  # mean inter-issue time per thread
    round_trip: float  # mean per-request latency (send -> reply done)
    throughput: float  # system-wide requests per cycle
    window: float
    requests_measured: int
    sim_time: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def overlap_speedup(self) -> float:
        """Issue rate gain vs a blocking thread with the same components."""
        return (self.work + self.round_trip) / self.cycle_time


def run_nonblocking_alltoall(
    config: MachineConfig,
    work: float,
    window: float = math.inf,
    cycles: int = 400,
    warmup: int | None = None,
    cooldown: int | None = None,
    work_cv2: float = 0.0,
    use_streams: bool = True,
) -> NonBlockingMeasurement:
    """Simulate k-outstanding non-blocking all-to-all traffic.

    Parameters
    ----------
    window:
        Max outstanding requests per thread (``math.inf`` = unbounded).
    work:
        Mean compute between issues.  With an unbounded window the system
        saturates unless ``W > 2 So`` (each node must absorb one request
        and one reply handler per issued request).
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    if not window >= 1:
        raise ValueError(f"window must be >= 1, got {window!r}")
    if math.isinf(window) and work <= 2.0 * config.handler_time:
        raise ValueError(
            "unbounded non-blocking traffic saturates the node: need "
            f"W > 2 So, got W={work!r}, So={config.handler_time!r}"
        )
    if cycles < 4:
        raise ValueError(f"cycles must be >= 4, got {cycles!r}")
    if warmup is None:
        warmup = max(1, cycles // 10)
    if cooldown is None:
        cooldown = max(1, cycles // 10)
    if warmup + cooldown >= cycles:
        raise ValueError("warmup+cooldown must leave measured records")

    work_dist = from_mean_cv2(work, work_cv2)
    p = config.processors

    def body(node: Node) -> Generator[ThreadEffect, None, None]:
        # Bulk-drawn compute bursts and destination picks, pre-sized to
        # the issue count.
        work_stream = node.sample_stream(work_dist)
        work_stream.reserve(cycles)
        pick = node.pick_stream(p - 1)
        pick.reserve(cycles)
        node.memory[_OUTSTANDING] = 0
        node.memory[_ISSUES] = []
        node.memory[_TRIPS] = []
        for _ in range(cycles):
            yield Compute(work_stream.draw())
            if math.isfinite(window):
                yield Wait(
                    lambda n: n.memory[_OUTSTANDING] < window,
                    label="await-window",
                )
            dest = pick.draw()
            if dest >= node.id:
                dest += 1
            node.memory[_OUTSTANDING] += 1
            node.memory[_ISSUES].append(node.sim.now)
            yield Send(
                dest,
                _nb_request_handler,
                kind="request",
                payload=node.sim.now,
            )
        # Drain: wait for every reply so round-trip stats are complete.
        yield Wait(lambda n: n.memory[_OUTSTANDING] == 0, label="drain")

    machine = Machine(config, use_streams=use_streams)
    machine.install_threads([body] * p)
    # One request + one reply handler per issue per node, two hops each.
    machine.reserve_streams(
        service_draws_per_node=2 * cycles,
        latency_draws=2 * cycles * p,
    )
    machine.run_to_completion()

    inter_issue: list[float] = []
    trips: list[float] = []
    for node in machine.nodes:
        issues = node.memory[_ISSUES]
        gaps = [b - a for a, b in zip(issues, issues[1:])]
        inter_issue.extend(gaps[warmup : len(gaps) - cooldown])
        node_trips = node.memory[_TRIPS]
        trips.extend(node_trips[warmup : len(node_trips) - cooldown])
    if not inter_issue or not trips:
        raise ValueError("trim removed every sample; increase cycles")
    cycle_time = sum(inter_issue) / len(inter_issue)
    return NonBlockingMeasurement(
        cycle_time=cycle_time,
        round_trip=sum(trips) / len(trips),
        throughput=p / cycle_time,
        window=window,
        requests_measured=len(inter_issue),
        sim_time=machine.sim.now,
        work=work,
        latency=config.latency,
        handler_time=config.handler_time,
        meta={
            "workload": "nonblocking-alltoall",
            "seed": config.seed,
            "cycles": cycles,
            "streamed": use_streams,
            "events": machine.sim.events_processed,
        },
    )
