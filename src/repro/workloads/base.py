"""Shared measurement types and helpers for simulation workloads.

The simulator measures the same quantities the models predict; the
:class:`SimulationMeasurement` record mirrors
:class:`repro.core.results.ModelSolution` so validation code can compare
them field by field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.results import ModelSolution
from repro.sim.machine import Machine
from repro.sim.stats import CycleRecord, summarize_cycles

__all__ = [
    "SimulationMeasurement",
    "measurement_from_machine",
    "trim_records",
]


@dataclass(frozen=True)
class SimulationMeasurement:
    """Steady-state means measured from a simulation run.

    Same decomposition as :class:`~repro.core.results.ModelSolution` (the
    Figure 4-3 timeline), plus sampling metadata.
    """

    response_time: float
    compute_residence: float
    request_residence: float
    reply_residence: float
    wire_time: float
    throughput: float
    handler_queue: float  # time-average Qq + Qy
    request_utilization: float
    reply_utilization: float
    thread_utilization: float
    cycles_measured: int
    sim_time: float
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    # Paper-notation aliases ------------------------------------------------
    @property
    def R(self) -> float:  # noqa: N802
        return self.response_time

    @property
    def Rw(self) -> float:  # noqa: N802
        return self.compute_residence

    @property
    def Rq(self) -> float:  # noqa: N802
        return self.request_residence

    @property
    def Ry(self) -> float:  # noqa: N802
        return self.reply_residence

    @property
    def X(self) -> float:  # noqa: N802
        return self.throughput

    @property
    def contention_free_cycle(self) -> float:
        return self.work + 2.0 * self.latency + 2.0 * self.handler_time

    @property
    def total_contention(self) -> float:
        return self.response_time - self.contention_free_cycle

    @property
    def compute_contention(self) -> float:
        return self.compute_residence - self.work

    @property
    def request_contention(self) -> float:
        return self.request_residence - self.handler_time

    @property
    def reply_contention(self) -> float:
        return self.reply_residence - self.handler_time

    @property
    def contention_fraction(self) -> float:
        if self.response_time <= 0:
            return 0.0
        return self.total_contention / self.response_time

    def as_model_solution(self) -> ModelSolution:
        """View the measurement through the model's solution record."""
        lam = 1.0 / self.response_time if self.response_time > 0 else 0.0
        return ModelSolution(
            response_time=self.response_time,
            compute_residence=self.compute_residence,
            request_residence=self.request_residence,
            reply_residence=self.reply_residence,
            throughput=self.throughput,
            request_queue=lam * self.request_residence,
            reply_queue=lam * self.reply_residence,
            request_utilization=self.request_utilization,
            reply_utilization=self.reply_utilization,
            work=self.work,
            latency=self.latency,
            handler_time=self.handler_time,
            meta=dict(self.meta, source="simulation"),
        )


def trim_records(
    records: Sequence[CycleRecord], warmup: int, cooldown: int
) -> list[CycleRecord]:
    """Drop the first ``warmup`` and last ``cooldown`` records (per node).

    Discards the cold start (empty queues) and the drain (threads that
    finish early leave less contention for stragglers).  Raises if nothing
    would remain.
    """
    if warmup < 0 or cooldown < 0:
        raise ValueError("warmup and cooldown must be >= 0")
    end = len(records) - cooldown
    kept = [r for r in records[warmup:end] if r.complete]
    if not kept:
        raise ValueError(
            f"trim removed every record (have {len(records)}, "
            f"warmup={warmup}, cooldown={cooldown})"
        )
    return kept


def measurement_from_machine(
    machine: Machine,
    work: float,
    warmup: int,
    cooldown: int,
    active_nodes: Sequence[int] | None = None,
    extra_meta: Mapping[str, object] | None = None,
) -> SimulationMeasurement:
    """Summarise a finished run into a :class:`SimulationMeasurement`.

    Parameters
    ----------
    machine:
        The machine after :meth:`~repro.sim.machine.Machine.run` returned.
    work:
        The workload's mean ``W`` (for contention decomposition).
    warmup, cooldown:
        Records trimmed per node before averaging.
    active_nodes:
        Node ids whose cycle records to use (default: nodes with any).
    """
    cfg = machine.config
    if active_nodes is None:
        active_nodes = [n.id for n in machine.nodes if n.cycles]
    if not active_nodes:
        raise ValueError("no node produced cycle records")
    records: list[CycleRecord] = []
    for nid in active_nodes:
        records.extend(trim_records(machine.nodes[nid].cycles, warmup, cooldown))
    summary = summarize_cycles(records)
    now = machine.sim.now
    # Throughput by Little's law on the measured mean cycle: in steady
    # state each active thread completes one request per R.
    throughput = len(active_nodes) / summary["R"]
    util_request = machine.mean_utilization("request")
    util_reply = machine.mean_utilization("reply")
    thread_util = float(
        sum(n.stats.thread_utilization(now) for n in machine.nodes)
        / len(machine.nodes)
    )
    meta: dict[str, object] = {
        "seed": cfg.seed,
        "events": machine.sim.events_processed,
        "warmup": warmup,
        "cooldown": cooldown,
        "active_nodes": len(active_nodes),
    }
    if extra_meta:
        meta.update(extra_meta)
    return SimulationMeasurement(
        response_time=summary["R"],
        compute_residence=summary["Rw"],
        request_residence=summary["Rq"],
        reply_residence=summary["Ry"],
        wire_time=summary["wire"],
        throughput=throughput,
        handler_queue=machine.mean_handler_queue(),
        request_utilization=util_request,
        reply_utilization=util_reply,
        thread_utilization=thread_util,
        cycles_measured=int(summary["count"]),
        sim_time=now,
        work=work,
        latency=cfg.latency,
        handler_time=cfg.handler_time,
        meta=meta,
    )
