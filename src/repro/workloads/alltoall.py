"""Homogeneous all-to-all workload (paper Section 5) -- simulation side.

Every node runs the same loop, the blocking request of the paper's
Figure 4-2: compute ``W`` cycles, pick a uniformly random *other* node,
send a request, spin until the reply handler flips a flag.  The request
handler at the destination replies immediately at handler completion
(it models a `put` or remote read; its service time *is* ``So``).

The six timeline instants of each cycle are stamped into a
:class:`~repro.sim.stats.CycleRecord` carried in the message payload, so
measured ``Rw/Rq/Ry`` line up with the model's exactly (Figure 4-3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from repro.sim.distributions import from_mean_cv2
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import CycleRecord
from repro.sim.threads import Compute, Send, ThreadEffect, Wait
from repro.workloads.base import SimulationMeasurement, measurement_from_machine

__all__ = ["AllToAllWorkload", "run_alltoall"]

_REPLIED = "alltoall.replied"


def _reply_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.reply_arrived = message.arrived_at
    record.reply_done = message.completed_at
    node.memory[_REPLIED] = True
    node.notify()


def _request_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.request_arrived = message.arrived_at
    record.request_done = message.completed_at
    node.send(
        dest=message.source,
        handler=_reply_handler,
        kind="reply",
        payload=record,
    )


@dataclass(frozen=True)
class AllToAllWorkload:
    """Builder for the homogeneous all-to-all workload.

    Parameters
    ----------
    work:
        Mean computation ``W`` between requests.
    cycles:
        Requests per node (the model's ``n``).
    work_cv2:
        Squared CV of the computation time between requests (0 =
        deterministic work, the usual microbenchmark; the model only uses
        the mean -- see paper Section 5.2, thread variability does not
        enter the equations).
    """

    work: float
    cycles: int
    work_cv2: float = 0.0

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be >= 0, got {self.work!r}")
        if self.cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {self.cycles!r}")
        if self.work_cv2 < 0:
            raise ValueError(f"work_cv2 must be >= 0, got {self.work_cv2!r}")

    def thread_body(
        self, node: Node
    ) -> Generator[ThreadEffect, None, None]:
        """The per-node thread program (Figure 4-2's blocking request)."""
        p = node.network.node_count
        work_dist = from_mean_cv2(self.work, self.work_cv2)
        # Bulk-drawn streams over the node's private generator: the
        # thread knows its own draw budget, so it pre-sizes both.
        work = node.sample_stream(work_dist)
        work.reserve(self.cycles)
        pick = node.pick_stream(p - 1)
        pick.reserve(self.cycles)
        unblocked_at = node.sim.now
        for _ in range(self.cycles):
            record = CycleRecord(node=node.id, start=unblocked_at)
            yield Compute(work.draw())
            record.send = node.sim.now
            # Uniform over the P-1 other nodes.
            dest = pick.draw()
            if dest >= node.id:
                dest += 1
            node.memory[_REPLIED] = False
            yield Send(dest, _request_handler, kind="request", payload=record)
            yield Wait(lambda n: n.memory[_REPLIED], label="await-reply")
            # The thread became runnable when its reply handler finished,
            # even if queued request handlers ran before we resumed here.
            unblocked_at = record.reply_done
            node.cycles.append(record)

    def install(self, machine: Machine) -> None:
        """Install one copy of the thread program on every node."""
        machine.install_threads([self.thread_body] * machine.config.processors)
        # Each cycle costs one request + one reply handler per node and
        # two wire hops machine-wide; size the shared streams to match.
        machine.reserve_streams(
            service_draws_per_node=2 * self.cycles,
            latency_draws=2 * self.cycles * machine.config.processors,
        )


def run_alltoall(
    config: MachineConfig,
    work: float,
    cycles: int = 300,
    warmup: int | None = None,
    cooldown: int | None = None,
    work_cv2: float = 0.0,
    use_streams: bool = True,
) -> SimulationMeasurement:
    """Simulate homogeneous all-to-all traffic and return measured means.

    Parameters
    ----------
    config:
        Machine description ``(P, St, So, C^2, seed)``.
    work:
        Mean ``W`` between requests.
    cycles:
        Requests per node; more cycles tighten the estimates.
    warmup, cooldown:
        Records trimmed per node (default 10 % each, at least 1).
    use_streams:
        Bulk-drawn RNG streams + fast event loop (default); ``False``
        reproduces the seed repo's scalar trajectories bit for bit.

    Returns
    -------
    :class:`~repro.workloads.base.SimulationMeasurement` with mean
    ``R, Rw, Rq, Ry``, wire time, utilisations and queue lengths.
    """
    if warmup is None:
        warmup = max(1, cycles // 10)
    if cooldown is None:
        cooldown = max(1, cycles // 10)
    if warmup + cooldown >= cycles:
        raise ValueError(
            f"warmup+cooldown ({warmup}+{cooldown}) must leave records "
            f"from {cycles} cycles"
        )
    workload = AllToAllWorkload(work=work, cycles=cycles, work_cv2=work_cv2)
    machine = Machine(config, use_streams=use_streams)
    workload.install(machine)
    machine.start()
    # Warm-up phase: run until every node completed `warmup` cycles, then
    # reset the time-weighted statistics.
    machine.run(stop=lambda: all(len(n.cycles) >= warmup for n in machine.nodes))
    machine.reset_stats()
    machine.run()
    return measurement_from_machine(
        machine,
        work=work,
        warmup=warmup,
        cooldown=cooldown,
        extra_meta={"workload": "alltoall", "cycles": cycles,
                    "work_cv2": work_cv2, "streamed": use_streams},
    )
