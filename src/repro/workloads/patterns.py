"""Visit-matrix communication patterns (Appendix A traffic) -- simulation side.

The general LoPC model accepts arbitrary visit ratios ``V_ck``, including
rows summing above 1 (multi-hop requests).  This module provides matching
simulated workloads:

* :class:`MultiHopRingPattern` -- each request is forwarded ``hops`` times
  around a ring (nodes ``c+1 .. c+hops``); the last node replies to the
  originator.  Mirrors :meth:`repro.core.general.GeneralLoPCModel.multi_hop_ring`.
* :class:`HotspotPattern` -- every thread sends a fraction of its requests
  to a hot node and spreads the rest uniformly; a classic irregular
  pattern LogP cannot cost (Appendix A heterogeneous visits).

Both produce per-cycle records; for multi-hop patterns ``request_arrived``
is the first hop's arrival and ``request_done`` the last hop's handler
completion, so ``rq`` spans the whole forwarding chain (including the
inter-hop wire time) while ``R`` remains the exact cycle time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Protocol, Sequence

import numpy as np

from repro.core.general import GeneralLoPCModel
from repro.core.params import MachineParams
from repro.sim.distributions import Uniform
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import CycleRecord
from repro.sim.streams import stream_sample
from repro.sim.threads import Compute, Send, ThreadEffect, Wait
from repro.workloads.base import SimulationMeasurement, measurement_from_machine

__all__ = [
    "HeterogeneousUniformPattern",
    "HotspotPattern",
    "MultiHopRingPattern",
    "PatternWorkload",
    "RandomMultiHopPattern",
    "run_pattern",
]

_DONE_FLAG = "pattern.replied"

#: Shared unit-uniform distribution for probabilistic branch draws
#: (e.g. the hotspot coin flip).  One shared instance so every node's
#: registry keys the same distribution identity and owns one stream.
_UNIT_UNIFORM = Uniform(0.0, 1.0)


def _pattern_reply_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload["record"]
    record.reply_arrived = message.arrived_at
    record.reply_done = message.completed_at
    node.memory[_DONE_FLAG] = True
    node.notify()


def _pattern_request_handler(node: Node, message: Message) -> None:
    payload = message.payload
    record: CycleRecord = payload["record"]
    if np.isnan(record.request_arrived):
        record.request_arrived = message.arrived_at
    path: list[int] = payload["path"]
    if path:
        nxt = path.pop(0)
        node.send(
            dest=nxt,
            handler=_pattern_request_handler,
            kind="request",
            payload=payload,
        )
    else:
        record.request_done = message.completed_at
        node.send(
            dest=payload["origin"],
            handler=_pattern_reply_handler,
            kind="reply",
            payload=payload,
        )


class PatternWorkload(Protocol):
    """A pattern supplies per-node work and per-cycle request paths."""

    def work_of(self, node_id: int) -> float | None:
        """Mean work for the thread on ``node_id`` (None = passive)."""

    def path_of(self, node: Node) -> list[int]:
        """Hop sequence for the next request from ``node`` (>= 1 hop)."""

    def model(self, machine: MachineParams) -> GeneralLoPCModel:
        """The matching Appendix-A model."""


@dataclass(frozen=True)
class MultiHopRingPattern:
    """Forwarding chain around a ring: hops ``c+1, ..., c+hops`` (mod P).

    Fully deterministic and symmetric: with deterministic handlers the
    simulated machine settles into a *contention-free* schedule (all
    threads in lockstep) -- the effect Brewer & Kuszmaul measured on the
    CM-5 and the paper's introduction discusses.  The LoPC model, which
    assumes stochastic arrivals, is therefore pessimistic for this exact
    pattern; use :class:`RandomMultiHopPattern` to validate the model.
    """

    work: float
    hops: int

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be >= 0, got {self.work!r}")
        if self.hops < 1:
            raise ValueError(f"hops must be >= 1, got {self.hops!r}")

    def work_of(self, node_id: int) -> float | None:
        return self.work

    def path_of(self, node: Node) -> list[int]:
        p = node.network.node_count
        if self.hops > p - 1:
            raise ValueError(f"hops={self.hops} too large for P={p}")
        return [(node.id + h) % p for h in range(1, self.hops + 1)]

    def model(self, machine: MachineParams) -> GeneralLoPCModel:
        return GeneralLoPCModel.multi_hop_ring(machine, self.work, self.hops)


@dataclass(frozen=True)
class RandomMultiHopPattern:
    """Forwarding chain through ``hops`` uniformly random distinct nodes."""

    work: float
    hops: int

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be >= 0, got {self.work!r}")
        if self.hops < 1:
            raise ValueError(f"hops must be >= 1, got {self.hops!r}")

    def work_of(self, node_id: int) -> float | None:
        return self.work

    def path_of(self, node: Node) -> list[int]:
        p = node.network.node_count
        if self.hops > p - 1:
            raise ValueError(f"hops={self.hops} too large for P={p}")
        others = [k for k in range(p) if k != node.id]
        # Stream-drawn distinct picks (partial Fisher-Yates), honouring
        # the stream determinism contract on both machine modes.
        picks = stream_sample(node.streams, len(others), self.hops)
        return [others[i] for i in picks]

    def model(self, machine: MachineParams) -> GeneralLoPCModel:
        return GeneralLoPCModel.random_multihop(machine, self.work, self.hops)


@dataclass(frozen=True)
class HeterogeneousUniformPattern:
    """Uniform random destinations with per-node work -- Appendix A's
    simplest heterogeneous case.

    Every thread spreads its requests uniformly over the other nodes
    (``V_ck = 1/(P-1)``), but each node ``c`` computes its own ``W_c``
    between requests.  Slow threads request rarely; fast threads see the
    queueing the slow ones barely add to -- the per-thread response
    times of the general model differ and can be validated per node.
    """

    works: tuple[float, ...]

    def __init__(self, works: "Sequence[float]") -> None:
        works_t = tuple(float(w) for w in works)
        if not works_t:
            raise ValueError("works must be non-empty")
        if any(w < 0 for w in works_t):
            raise ValueError(f"works must be >= 0, got {works_t!r}")
        object.__setattr__(self, "works", works_t)

    def work_of(self, node_id: int) -> float | None:
        if node_id >= len(self.works):
            raise ValueError(
                f"node {node_id} beyond configured works "
                f"(have {len(self.works)})"
            )
        return self.works[node_id]

    def path_of(self, node: Node) -> list[int]:
        p = node.network.node_count
        dest = node.pick_stream(p - 1).draw()
        if dest >= node.id:
            dest += 1
        return [dest]

    def model(self, machine: MachineParams) -> GeneralLoPCModel:
        p = machine.processors
        if len(self.works) != p:
            raise ValueError(
                f"pattern has {len(self.works)} works for P={p}"
            )
        visits = np.full((p, p), 1.0 / (p - 1))
        np.fill_diagonal(visits, 0.0)
        return GeneralLoPCModel(machine, list(self.works), visits)


@dataclass(frozen=True)
class HotspotPattern:
    """Uniform traffic with a fraction ``hot_fraction`` aimed at ``hot_node``."""

    work: float
    hot_node: int = 0
    hot_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.work < 0:
            raise ValueError(f"work must be >= 0, got {self.work!r}")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError(
                f"hot_fraction must lie in [0, 1], got {self.hot_fraction!r}"
            )
        if self.hot_node < 0:
            raise ValueError(f"hot_node must be >= 0, got {self.hot_node!r}")

    def work_of(self, node_id: int) -> float | None:
        return self.work

    def path_of(self, node: Node) -> list[int]:
        p = node.network.node_count
        if (node.id != self.hot_node
                and node.sample_stream(_UNIT_UNIFORM).draw()
                < self.hot_fraction):
            return [self.hot_node]
        # Uniform over the other nodes (excluding self).
        dest = node.pick_stream(p - 1).draw()
        if dest >= node.id:
            dest += 1
        return [dest]

    def visit_matrix(self, processors: int) -> np.ndarray:
        """Expected visit ratios matching :meth:`path_of`.

        A non-hot thread sends to the hot node with probability ``h`` and
        otherwise uniformly over the other ``P-1`` nodes (which can also
        land on the hot node), so ``V_c,hot = h + (1-h)/(P-1)`` and
        ``V_ck = (1-h)/(P-1)`` elsewhere; the hot thread itself spreads
        uniformly.
        """
        p = processors
        if self.hot_node >= p:
            raise ValueError(
                f"hot_node {self.hot_node} out of range for P={p}"
            )
        h = self.hot_fraction
        v = np.zeros((p, p))
        for c in range(p):
            for k in range(p):
                if k == c:
                    continue
                v[c, k] = 1.0 / (p - 1) if c == self.hot_node else (1.0 - h) / (p - 1)
            if c != self.hot_node:
                v[c, self.hot_node] += h
        return v

    def model(self, machine: MachineParams) -> GeneralLoPCModel:
        p = machine.processors
        works = [self.work] * p
        return GeneralLoPCModel(machine, works, self.visit_matrix(p))


def run_pattern(
    config: MachineConfig,
    pattern: PatternWorkload,
    cycles: int = 300,
    warmup: int | None = None,
    cooldown: int | None = None,
) -> SimulationMeasurement:
    """Simulate an arbitrary pattern workload and return measured means."""
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles!r}")
    if warmup is None:
        warmup = max(1, cycles // 10)
    if cooldown is None:
        cooldown = max(1, cycles // 10)
    if warmup + cooldown >= cycles:
        raise ValueError("warmup+cooldown must leave measured records")

    def make_body(work: float):
        def body(node: Node) -> Generator[ThreadEffect, None, None]:
            unblocked_at = node.sim.now
            for _ in range(cycles):
                record = CycleRecord(node=node.id, start=unblocked_at)
                yield Compute(work)
                record.send = node.sim.now
                path = pattern.path_of(node)
                if not path:
                    raise ValueError("pattern produced an empty path")
                first = path.pop(0)
                node.memory[_DONE_FLAG] = False
                yield Send(
                    first,
                    _pattern_request_handler,
                    kind="request",
                    payload={
                        "record": record,
                        "path": path,
                        "origin": node.id,
                    },
                )
                yield Wait(lambda n: n.memory[_DONE_FLAG], label="await-pattern")
                unblocked_at = record.reply_done
                node.cycles.append(record)

        return body

    bodies = []
    works = []
    for nid in range(config.processors):
        w = pattern.work_of(nid)
        works.append(w)
        bodies.append(None if w is None else make_body(w))
    machine = Machine(config)
    machine.install_threads(bodies)
    machine.start()
    active = [i for i, w in enumerate(works) if w is not None]
    machine.run(
        stop=lambda: all(len(machine.nodes[i].cycles) >= warmup for i in active)
    )
    machine.reset_stats()
    machine.run()
    mean_work = float(np.mean([w for w in works if w is not None]))
    # Per-node mean cycle times, so heterogeneous patterns can be
    # validated thread by thread against the Appendix-A model.
    from repro.sim.stats import summarize_cycles
    from repro.workloads.base import trim_records

    per_node_response = {
        i: summarize_cycles(
            trim_records(machine.nodes[i].cycles, warmup, cooldown)
        )["R"]
        for i in active
    }
    return measurement_from_machine(
        machine,
        work=mean_work,
        warmup=warmup,
        cooldown=cooldown,
        active_nodes=active,
        extra_meta={
            "workload": type(pattern).__name__,
            "cycles": cycles,
            "per_node_response": per_node_response,
        },
    )
