"""Barrier-resynchronised all-to-all (the paper's CM-5 discussion).

The introduction recounts two findings about *regular* all-to-all
patterns: Brewer & Kuszmaul measured that carefully interleaved CM-5
schedules "quickly became virtually random, largely due to small
variances in the interconnect", and the original LogP paper noted its
model underestimates all-to-all cost "unless extra barriers are
inserted to resynchronize the communication pattern".

This workload reproduces both effects on the simulated machine.  Each
of ``phases`` rounds sends one blocking put along a phase-shifted
permutation (every node receives exactly one request per round), then
optionally joins a global barrier:

* deterministic handlers + barriers -> the schedule stays interleaved
  and the measured cycle sits at the contention-free (LogP) cost;
* stochastic handlers (``C^2 > 0``) *without* barriers -> the schedule
  drifts phase over phase towards random arrivals, and the measured
  cycle climbs towards the LoPC prediction;
* stochastic handlers *with* barriers -> resynchronisation bounds the
  drift, recovering most of the contention-free cost (at the price of
  the barrier latency itself).

The barrier is modelled the way fast hardware barriers behave
(CM-5-style dedicated network): arrive/release messages with zero CPU
service by default, costing one round trip of wire latency.  The
shared counter object stands in for the dedicated combine hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Mapping

from repro.sim.distributions import from_mean_cv2
from repro.sim.machine import Machine, MachineConfig
from repro.sim.messages import Message
from repro.sim.node import Node
from repro.sim.stats import CycleRecord, summarize_cycles
from repro.sim.threads import Compute, Send, ThreadEffect, Wait
from repro.workloads.base import trim_records

__all__ = ["BarrierMeasurement", "run_barrier_alltoall"]

_REPLIED = "barrier.replied"
_GENERATION = "barrier.generation"


class _BarrierState:
    """Shared combine-tree state (models dedicated barrier hardware)."""

    __slots__ = ("participants", "arrived", "generation")

    def __init__(self, participants: int) -> None:
        self.participants = participants
        self.arrived = 0
        self.generation = 0


def _release_handler(node: Node, message: Message) -> None:
    node.memory[_GENERATION] = message.payload
    node.notify()


def _make_arrive_handler(state: _BarrierState, coordinator: int):
    def arrive_handler(node: Node, message: Message) -> None:
        _arrive(state, node, coordinator)

    return arrive_handler


def _arrive(state: _BarrierState, coordinator_node: Node,
            coordinator: int) -> None:
    """Count an arrival at the coordinator; release everyone on the last."""
    state.arrived += 1
    if state.arrived < state.participants:
        return
    state.arrived = 0
    state.generation += 1
    p = coordinator_node.network.node_count
    for dest in range(p):
        if dest == coordinator:
            coordinator_node.memory[_GENERATION] = state.generation
            coordinator_node.notify()
        else:
            coordinator_node.send(
                dest,
                _release_handler,
                kind="barrier",
                payload=state.generation,
                service_time=0.0,
            )


def _reply_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.reply_arrived = message.arrived_at
    record.reply_done = message.completed_at
    node.memory[_REPLIED] = True
    node.notify()


def _request_handler(node: Node, message: Message) -> None:
    record: CycleRecord = message.payload
    record.request_arrived = message.arrived_at
    record.request_done = message.completed_at
    node.send(dest=message.source, handler=_reply_handler, kind="reply",
              payload=record)


@dataclass(frozen=True)
class BarrierMeasurement:
    """Measured phased all-to-all behaviour, with or without barriers."""

    response_time: float  # mean put cycle R (excluding barrier time)
    compute_residence: float
    request_residence: float
    reply_residence: float
    barrier_time: float  # mean cycles spent per barrier episode
    total_runtime: float  # wall clock of the whole run
    phases: int
    use_barriers: bool
    cycles_measured: int
    work: float
    latency: float
    handler_time: float
    meta: Mapping[str, object] = field(default_factory=dict, compare=False)

    @property
    def contention_free_cycle(self) -> float:
        return self.work + 2.0 * self.latency + 2.0 * self.handler_time

    @property
    def total_contention(self) -> float:
        return self.response_time - self.contention_free_cycle


def run_barrier_alltoall(
    config: MachineConfig,
    work: float,
    phases: int = 200,
    use_barriers: bool = True,
    warmup: int | None = None,
    cooldown: int | None = None,
    work_cv2: float = 0.0,
    use_streams: bool = True,
) -> BarrierMeasurement:
    """Run the phased permutation all-to-all.

    Parameters
    ----------
    config:
        Machine description; set ``handler_cv2 > 0`` to give the
        schedule something to drift on.
    work:
        Mean computation per phase.
    phases:
        Rounds of (compute, put, [barrier]).
    use_barriers:
        Insert the global barrier after every phase.
    """
    if work < 0:
        raise ValueError(f"work must be >= 0, got {work!r}")
    if phases < 2:
        raise ValueError(f"phases must be >= 2, got {phases!r}")
    if warmup is None:
        warmup = max(1, phases // 10)
    if cooldown is None:
        cooldown = max(1, phases // 10)
    if warmup + cooldown >= phases:
        raise ValueError("warmup+cooldown must leave measured phases")

    p = config.processors
    state = _BarrierState(participants=p)
    coordinator = 0
    arrive_handler = _make_arrive_handler(state, coordinator)
    work_dist = from_mean_cv2(work, work_cv2)
    barrier_times: list[float] = []

    def body(node: Node) -> Generator[ThreadEffect, None, None]:
        # Bulk-drawn compute bursts, pre-sized to the phase count.
        work_stream = node.sample_stream(work_dist)
        work_stream.reserve(phases)
        node.memory[_GENERATION] = 0
        unblocked_at = node.sim.now
        for phase in range(phases):
            record = CycleRecord(node=node.id, start=unblocked_at)
            yield Compute(work_stream.draw())
            record.send = node.sim.now
            # Phase-shifted permutation: every node receives exactly one
            # request per phase (shift cycles through 1..P-1).
            shift = 1 + (phase % (p - 1))
            dest = (node.id + shift) % p
            node.memory[_REPLIED] = False
            yield Send(dest, _request_handler, kind="request", payload=record)
            yield Wait(lambda n: n.memory[_REPLIED], label="await-put-ack")
            node.cycles.append(record)
            if use_barriers:
                barrier_entered = record.reply_done
                target_gen = phase + 1
                if node.id == coordinator:
                    _arrive(state, node, coordinator)
                else:
                    yield Send(coordinator, arrive_handler, kind="barrier",
                               service_time=0.0)
                yield Wait(
                    lambda n, g=target_gen: n.memory[_GENERATION] >= g,
                    label="await-barrier",
                )
                unblocked_at = node.sim.now
                barrier_times.append(unblocked_at - barrier_entered)
            else:
                unblocked_at = record.reply_done

    machine = Machine(config, use_streams=use_streams)
    machine.install_threads([body] * p)
    # Two service draws (request + reply) and two wire hops per node per
    # phase; barrier traffic carries explicit zero service times but
    # still crosses the wire when barriers are on.
    machine.reserve_streams(
        service_draws_per_node=2 * phases,
        latency_draws=(4 if use_barriers else 2) * phases * p,
    )
    machine.run_to_completion()

    records = []
    for node in machine.nodes:
        records.extend(trim_records(node.cycles, warmup, cooldown))
    summary = summarize_cycles(records)
    mean_barrier = (
        sum(barrier_times) / len(barrier_times) if barrier_times else 0.0
    )
    return BarrierMeasurement(
        response_time=summary["R"],
        compute_residence=summary["Rw"],
        request_residence=summary["Rq"],
        reply_residence=summary["Ry"],
        barrier_time=mean_barrier,
        total_runtime=machine.sim.now,
        phases=phases,
        use_barriers=use_barriers,
        cycles_measured=int(summary["count"]),
        work=work,
        latency=config.latency,
        handler_time=config.handler_time,
        meta={
            "workload": "barrier-alltoall",
            "seed": config.seed,
            "events": machine.sim.events_processed,
            "work_cv2": work_cv2,
            "streamed": use_streams,
        },
    )
