"""Greedy shrinking of failing fuzz points to minimal repro cases.

A raw fuzz failure is a params dict full of incidental digits; the
repro case humans debug from should carry only what the bug needs.
The shrinker repeatedly tries simplifying moves -- dropping optional
keys, then bisecting each numeric value toward a benign baseline --
and keeps a move only if the *same invariant* still fails (checked
through the scalar replay path, so shrinking exercises exactly the
code the corpus tests replay).

Moves that leave the params invalid are free: :func:`check_point`
classifies a clean ``ValueError`` as a rejection, which simply fails
the "still violates" test and the move is discarded.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.fuzz.invariants import Violation, check_point

__all__ = ["ShrinkResult", "shrink_case"]

#: Baseline values numeric shrinking bisects toward, per key pattern.
#: The baseline is the most benign value of the parameter: no work, no
#: wire latency, unit everything.
_BASELINES: tuple[tuple[str, float], ...] = (
    (r"P", 2.0),
    (r"Ps", 1.0),
    (r"St", 0.0),
    (r"So", 1.0),
    (r"C2", 0.0),
    (r"W", 0.0),
    (r"W\d+", 0.0),
    (r"V\d+_\d+", 1.0),
    (r"N\d+", 1.0),
    (r"Z\d+", 0.0),
    (r"D\d+_\d+", 0.1),
    (r"k", 1.0),
)

#: Keys the structural pass may try to remove outright (optional in
#: every scenario schema that uses them).
_REMOVABLE = re.compile(r"Z\d+|V\d+_\d+|W\d+|kinds|protocol_processor|C2")


@dataclass
class ShrinkResult:
    """Outcome of shrinking one failing point."""

    params: dict
    violation: Violation | None
    evaluations: int
    reproduced: bool  # did the original params re-fail under replay?


def _baseline_for(key: str) -> float | None:
    for pattern, value in _BASELINES:
        if re.fullmatch(pattern, key):
            return value
    return None


def _candidate_moves(params: Mapping[str, object]) -> list[dict]:
    """Simplified variants of ``params``, most aggressive first."""
    moves: list[dict] = []
    # Structural: drop an optional key entirely.
    for key in params:
        if _REMOVABLE.fullmatch(key):
            trimmed = {k: v for k, v in params.items() if k != key}
            moves.append(trimmed)
    # Multiclass structure: drop the last whole class / last centre.
    classes = sorted(
        int(m.group(1))
        for k in params
        if (m := re.fullmatch(r"N(\d+)", k))
    )
    if len(classes) > 1:
        last = classes[-1]
        drop = re.compile(rf"(N|Z){last}|D{last}_\d+")
        moves.append({k: v for k, v in params.items() if not drop.fullmatch(k)})
    centres = sorted(
        int(m.group(2))
        for k in params
        if (m := re.fullmatch(r"D(\d+)_(\d+)", k))
    )
    if centres and centres[-1] > 0:
        last = centres[-1]
        trimmed = {
            k: v
            for k, v in params.items()
            if not re.fullmatch(rf"D\d+_{last}", k)
        }
        kinds = trimmed.get("kinds")
        if isinstance(kinds, str):
            trimmed["kinds"] = ",".join(kinds.split(",")[:last])
        moves.append(trimmed)
    # Numeric: jump straight to the baseline, else bisect toward it.
    for key, value in params.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        baseline = _baseline_for(key)
        if baseline is None or value == baseline:
            continue
        jump = dict(params)
        jump[key] = int(baseline) if isinstance(value, int) else baseline
        moves.append(jump)
        mid = (float(value) + baseline) / 2.0
        # Round so shrunken repro files stay readable; the rounding can
        # only be kept if the rounded value still violates.
        mid = float(f"{mid:.4g}")
        if mid != value and mid != baseline:
            half = dict(params)
            half[key] = int(round(mid)) if isinstance(value, int) else mid
            if half[key] != value:
                moves.append(half)
    return moves


def shrink_case(
    scenario: str,
    params: Mapping[str, object],
    *,
    invariant: str | None = None,
    max_evals: int = 250,
    check: Callable[[str, Mapping[str, object]], object] = check_point,
) -> ShrinkResult:
    """Shrink ``params`` while the invariant keeps failing.

    ``invariant`` pins which failure must be preserved (defaults to the
    first one the replay produces).  ``check`` is injectable for tests;
    it must return an object with a ``violations`` list of objects
    carrying an ``invariant`` attribute.
    """
    evaluations = 0

    def failing(candidate: Mapping[str, object]) -> Violation | None:
        nonlocal evaluations
        evaluations += 1
        result = check(scenario, candidate)
        for violation in result.violations:
            if invariant is None or violation.invariant == invariant:
                return violation
        return None

    current = dict(params)
    violation = failing(current)
    if violation is None:
        return ShrinkResult(current, None, evaluations, reproduced=False)
    if invariant is None:
        invariant = violation.invariant

    progress = True
    while progress and evaluations < max_evals:
        progress = False
        for candidate in _candidate_moves(current):
            if evaluations >= max_evals:
                break
            better = failing(candidate)
            if better is not None:
                current, violation = dict(candidate), better
                progress = True
                break  # restart moves from the simplified point
    return ShrinkResult(current, violation, evaluations, reproduced=True)
