"""Seeded random scenario generators for the property fuzzer.

Each registered scenario gets a generator that draws one flat params
dict -- the exact mapping :func:`repro.api.scenario` and the sweep
evaluators accept, JSON scalars only, so every generated point is also
a valid repro-case file.

Determinism contract: point ``j`` of scenario ``s`` under master seed
``S`` depends *only* on ``(s, S, j)`` -- each point derives its own
:class:`numpy.random.Generator` from that triple.  Requesting more
points, fewer scenarios, or a different mix never changes the points
you already saw (prefix stability), which is what makes "replay seed S
point j" a meaningful bug report.

Parameter ranges deliberately overshoot the paper's operating points
(``P`` to 256, ``So``/``St`` to 1000 cycles, ``W`` from the pathological
0 up to 20000) while staying inside each model's validity domain;
general-scenario topologies can still saturate a handler, which the
checkers count as a clean rejection, not a failure.  ``C2`` is drawn
from a small palette so the lru-cached rule-of-thumb constant
``kappa(C2)`` serves whole runs.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = [
    "FUZZ_SCENARIOS",
    "generate_points",
    "generate_stream",
]

#: Root of the fuzzer's seed-derivation tree ("LoPC" in ASCII) --
#: decouples fuzz streams from every other consumer of the master seed.
_DOMAIN = 0x4C6F5043

#: Handler-variability palette: the paper's deterministic/exponential
#: anchors plus hypo- and hyper-exponential extremes.
_C2_PALETTE = (0.0, 0.5, 1.0, 2.0, 4.0)


def _rng_for(scenario: str, seed: int, index: int) -> np.random.Generator:
    salt = FUZZ_SCENARIOS.index(scenario)
    return np.random.default_rng((_DOMAIN, int(seed), salt, int(index)))


def _log_uniform(rng: np.random.Generator, lo: float, hi: float) -> float:
    return float(np.exp(rng.uniform(np.log(lo), np.log(hi))))


def _round(value: float, digits: int = 3) -> float:
    """Round for readable repro files (validity is range-, not
    precision-sensitive)."""
    return float(round(value, digits))


def _machine(rng: np.random.Generator, *, max_p: int = 256) -> dict[str, object]:
    return {
        "P": max(2, int(round(2.0 ** rng.uniform(1.0, np.log2(max_p))))),
        "St": 0.0 if rng.random() < 0.2 else _round(_log_uniform(rng, 1.0, 1000.0)),
        "So": _round(_log_uniform(rng, 1.0, 1000.0)),
        "C2": float(_C2_PALETTE[rng.integers(len(_C2_PALETTE))]),
    }


def _work(rng: np.random.Generator) -> float:
    # W = 0 is the paper's hardest point (pure contention); visit it often.
    return 0.0 if rng.random() < 0.15 else _round(_log_uniform(rng, 1.0, 20000.0))


def _gen_alltoall(rng: np.random.Generator) -> dict[str, object]:
    params = _machine(rng)
    params["W"] = _work(rng)
    return params


def _gen_sharedmem(rng: np.random.Generator) -> dict[str, object]:
    params = _machine(rng)
    params["W"] = _work(rng)
    return params


def _gen_workpile(rng: np.random.Generator) -> dict[str, object]:
    params = _machine(rng, max_p=128)
    params["Ps"] = int(rng.integers(1, int(params["P"])))
    params["W"] = _work(rng)
    return params


def _gen_multiclass(rng: np.random.Generator) -> dict[str, object]:
    n_classes = int(rng.integers(1, 4))
    n_centers = int(rng.integers(1, 5))
    params: dict[str, object] = {}
    for c in range(n_classes):
        params[f"N{c}"] = int(rng.integers(1, 7))
        if rng.random() < 0.5:
            params[f"Z{c}"] = _round(_log_uniform(rng, 1.0, 200.0))
        for k in range(n_centers):
            params[f"D{c}_{k}"] = _round(_log_uniform(rng, 0.05, 10.0), 4)
    if n_centers > 1 and rng.random() < 0.4:
        # Mixed station kinds; keep at least one queueing centre so the
        # network still has contention to model.
        kinds = ["queueing"] + [
            "delay" if rng.random() < 0.5 else "queueing"
            for _ in range(n_centers - 1)
        ]
        params["kinds"] = ",".join(kinds)
    return params


def _gen_general(rng: np.random.Generator) -> dict[str, object]:
    params = _machine(rng, max_p=16)
    p = max(3, int(params["P"]))
    params["P"] = p
    so = float(params["So"])
    if rng.random() < 0.25:
        params["protocol_processor"] = True
    pattern = ("alltoall", "clientserver", "ring", "sparse")[rng.integers(4)]
    # Work scales with the per-node arrival pressure of the pattern so
    # most topologies stay feasible (Uq < 1); the low end of the load
    # factor intentionally brushes saturation, which the model rejects
    # cleanly and the checkers count as a rejection.
    if pattern == "alltoall":
        ratio = _round(1.0 / (p - 1), 6)
        for c in range(p):
            params[f"W{c}"] = _round(so * _log_uniform(rng, 1.2, 25.0))
            for k in range(p):
                if k != c:
                    params[f"V{c}_{k}"] = ratio
    elif pattern == "clientserver":
        servers = int(rng.integers(1, p))
        clients = p - servers
        ratio = _round(1.0 / servers, 6)
        for c in range(servers, p):
            params[f"W{c}"] = _round(
                so * (clients / servers) * _log_uniform(rng, 1.2, 25.0)
            )
            for k in range(servers):
                params[f"V{c}_{k}"] = ratio
    elif pattern == "ring":
        hops = int(rng.integers(1, min(4, p)))
        for c in range(p):
            params[f"W{c}"] = _round(so * hops * _log_uniform(rng, 1.2, 25.0))
            for h in range(1, hops + 1):
                params[f"V{c}_{(c + h) % p}"] = 1.0
    else:  # sparse random digraph, some threads passive
        active = [c for c in range(p) if rng.random() < 0.8]
        if not active:
            active = [int(rng.integers(p))]
        for c in active:
            degree = int(rng.integers(1, min(4, p)))
            targets = rng.choice(
                [k for k in range(p) if k != c], size=degree, replace=False
            )
            row_sum = 0.0
            for k in targets:
                ratio = _round(rng.uniform(0.2, 1.5))
                params[f"V{c}_{int(k)}"] = ratio
                row_sum += ratio
            params[f"W{c}"] = _round(so * row_sum * _log_uniform(rng, 1.5, 30.0))
    return params


def _gen_nonblocking(rng: np.random.Generator) -> dict[str, object]:
    params = _machine(rng, max_p=64)
    if rng.random() < 0.3:
        # Unbounded window (k=0) requires W > 2 So or the node saturates.
        params["k"] = 0.0
        params["W"] = _round(
            float(params["So"]) * (2.0 + _log_uniform(rng, 0.05, 10.0))
        )
    else:
        params["k"] = float(rng.integers(1, 17))
        params["W"] = _work(rng)
    return params


_GENERATORS = {
    "alltoall": _gen_alltoall,
    "sharedmem": _gen_sharedmem,
    "workpile": _gen_workpile,
    "multiclass": _gen_multiclass,
    "general": _gen_general,
    "nonblocking": _gen_nonblocking,
}

#: Scenarios the fuzzer knows how to generate, in stream order.
FUZZ_SCENARIOS: tuple[str, ...] = tuple(_GENERATORS)

#: Default point allocation across scenarios (renormalised over any
#: ``--scenario`` subset).  Nonblocking is scalar-solved, so it gets
#: the smallest share.
_WEIGHTS = {
    "alltoall": 0.22,
    "sharedmem": 0.13,
    "workpile": 0.20,
    "multiclass": 0.20,
    "general": 0.15,
    "nonblocking": 0.10,
}


def generate_points(
    scenario: str, count: int, seed: int
) -> list[dict[str, object]]:
    """``count`` deterministic random parameter dicts for ``scenario``."""
    if scenario not in _GENERATORS:
        known = ", ".join(FUZZ_SCENARIOS)
        raise KeyError(f"no fuzz generator for {scenario!r}; known: {known}")
    generator = _GENERATORS[scenario]
    return [
        generator(_rng_for(scenario, seed, index)) for index in range(count)
    ]


def generate_stream(
    points: int,
    seed: int,
    scenarios: Sequence[str] | None = None,
) -> list[tuple[str, Mapping[str, object]]]:
    """A mixed ``(scenario, params)`` stream of roughly ``points`` points.

    Allocation follows the default weights (largest-remainder rounding,
    so the counts sum exactly to ``points``); pass ``scenarios`` to
    restrict the mix, weights renormalised.
    """
    names = list(scenarios) if scenarios else list(FUZZ_SCENARIOS)
    for name in names:
        if name not in _GENERATORS:
            known = ", ".join(FUZZ_SCENARIOS)
            raise KeyError(f"no fuzz generator for {name!r}; known: {known}")
    total_weight = sum(_WEIGHTS[name] for name in names)
    quotas = [points * _WEIGHTS[name] / total_weight for name in names]
    counts = [int(q) for q in quotas]
    remainders = sorted(
        range(len(names)), key=lambda i: quotas[i] - counts[i], reverse=True
    )
    for i in remainders[: points - sum(counts)]:
        counts[i] += 1
    stream: list[tuple[str, Mapping[str, object]]] = []
    for name, count in zip(names, counts):
        for params in generate_points(name, count, seed):
            stream.append((name, params))
    return stream
