"""Replaying fuzz streams through the facade's Study/sweep machinery.

The generators in :mod:`repro.fuzz.generators` and the sweep engine
grew up separately: the fuzzer bulk-solves raw parameter dicts through
the batch kernels, the facade compiles :class:`~repro.api.study.Study`
axes down to cached :class:`~repro.sweep.spec.SweepSpec` runs.  This
module is the adapter between the two:

* :func:`fuzz_study` / :func:`fuzz_studies` lift a seeded fuzz stream
  into lockstep :class:`~repro.sweep.spec.ZipAxis` studies -- every
  fuzzed point becomes one sweep row, so a fuzz corpus replays through
  the *production* path (cache, batching, warm starts, telemetry)
  instead of the fuzzer's private solve loop;
* :func:`fuzz_axis` derives a seeded :class:`~repro.sweep.spec.RandomAxis`
  over one parameter's declared schema range, for randomised sweeps and
  the :mod:`repro.fuzz.opt_invariants` search boxes.

Seed derivation matches the fuzzer's discipline: everything downstream
of ``(scenario, seed)`` is deterministic, so any failure replays.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.fuzz.generators import _DOMAIN, _rng_for, generate_points

__all__ = ["fuzz_axis", "fuzz_studies", "fuzz_study"]


def _signature(params: Mapping[str, object]) -> tuple[str, ...]:
    return tuple(sorted(params))


def fuzz_study(
    scenario: str,
    count: int,
    seed: int,
    **study_kwargs: object,
):
    """One :class:`~repro.api.study.Study` replaying ``count`` fuzzed
    points of ``scenario`` as lockstep sweep rows.

    All points must share one parameter signature (fixed-shape
    generators: alltoall, sharedmem, workpile, nonblocking).  For
    variable-shape generators (multiclass, general) use
    :func:`fuzz_studies`, which groups by signature.  ``study_kwargs``
    (``jobs``, ``cache``, ``batch`` ...) pass through to
    :meth:`~repro.api.scenario.Scenario.study`.
    """
    studies = fuzz_studies(scenario, count, seed, **study_kwargs)
    if len(studies) != 1:
        raise ValueError(
            f"fuzz_study: {scenario!r} generated {len(studies)} distinct "
            "parameter signatures; use fuzz_studies() for variable-shape "
            "generators"
        )
    return studies[0]


def fuzz_studies(
    scenario: str,
    count: int,
    seed: int,
    **study_kwargs: object,
) -> list:
    """Fuzzed points of ``scenario`` as Studies, one per parameter
    signature, in first-seen order.

    Each study carries a :class:`~repro.sweep.spec.ZipAxis` with one
    row per fuzzed point (generation order preserved within a
    signature), named ``fuzz-<scenario>-s<seed>/<i>`` so cache
    provenance stays readable.
    """
    from repro.api import get_scenario_class
    from repro.sweep import ZipAxis

    cls = get_scenario_class(scenario)
    points = generate_points(scenario, count, seed)
    groups: dict[tuple[str, ...], list[Mapping[str, object]]] = {}
    for params in points:
        groups.setdefault(_signature(params), []).append(params)

    studies = []
    for index, (names, members) in enumerate(groups.items()):
        axis = ZipAxis(
            names=names,
            rows=[tuple(p[name] for name in names) for p in members],
        )
        # The axis instance keyword is arbitrary (the axis carries its
        # own parameter names); "rows" cannot collide with any schema
        # parameter because the paper's notation is single-token.
        studies.append(
            cls().study(
                name=f"fuzz-{scenario}-s{seed}/{index}",
                rows=axis,
                **study_kwargs,
            )
        )
    return studies


def fuzz_axis(
    scenario: str,
    param: str,
    count: int,
    seed: int,
    *,
    span: tuple[float, float] | None = None,
):
    """A seeded :class:`~repro.sweep.spec.RandomAxis` over ``param``'s
    declared schema range (or an explicit ``span`` inside it).

    The axis seed derives from the fuzz domain tag and ``(scenario,
    seed, param)``, so the same call always expands to the same values
    -- and never collides with the point-generator streams, which salt
    on point index instead.
    """
    from repro.api import get_scenario_class
    from repro.sweep import RandomAxis

    cls = get_scenario_class(scenario)
    entry = cls.find_param(param)
    if entry is None:
        known = ", ".join(cls.param_names())
        raise KeyError(f"{scenario!r} has no parameter {param!r}; "
                       f"schema: {known}")
    if span is not None:
        lo, hi = float(span[0]), float(span[1])
    elif entry.optimizable:
        lo, hi = float(entry.lo), float(entry.hi)
    else:
        raise ValueError(
            f"{scenario}.{param} declares no (lo, hi) range; pass span="
        )
    salt = int.from_bytes(param.encode(), "big") % (2**16)
    derived = int(
        np.random.default_rng((_DOMAIN, int(seed), salt)).integers(2**31)
    )
    return RandomAxis(
        name=param,
        low=lo,
        high=hi,
        count=count,
        seed=derived,
        integer=entry.type is int,
        log=not (entry.type is int) and lo > 0 and hi / lo >= 100.0,
    )


def _box_for(
    scenario: str, param: str, seed: int
) -> tuple[float, float]:
    """A randomised sub-box of ``param``'s declared range, seeded like
    the fuzz streams (used by the opt invariant suite)."""
    from repro.api import get_scenario_class

    cls = get_scenario_class(scenario)
    entry = cls.find_param(param)
    lo, hi = float(entry.lo), float(entry.hi)
    rng = _rng_for(scenario, seed, int.from_bytes(param.encode(), "big"))
    # Keep at least ~40% of the declared span so searches stay
    # interesting; snap integer axes outward to a >= 8-point lattice.
    a = lo + (hi - lo) * rng.uniform(0.0, 0.3)
    b = hi - (hi - lo) * rng.uniform(0.0, 0.3)
    if entry.type is int:
        a, b = int(round(a)), int(round(b))
        if b - a < 8:
            a, b = int(lo), int(hi)
    return a, b
