"""Property-based scenario fuzzing for the LoPC reproduction.

The fuzzer treats the paper's structural truths -- bounds bracket the
model, Little's law holds, approximations stay ordered, batch kernels
match scalar solves -- as *properties* asserted over thousands of
random networks per run, not figures inspected once.  It is CI-gated:
the PR leg checks ~1,500 analytic points plus a sampled simulation
subset in seconds, the nightly leg runs ~20,000 points under a fresh
seed, and every failure ships as a shrunken, self-contained JSON repro
case that the test suite replays forever after.

Layout:

* :mod:`repro.fuzz.generators` -- seeded random parameter streams, one
  generator per registered scenario, prefix-stable per (scenario,
  seed, index);
* :mod:`repro.fuzz.invariants` -- bulk checking through the batch
  kernels with per-point predicates shared with the scalar replay path;
* :mod:`repro.fuzz.shrinker` -- greedy minimisation of failing points;
* :mod:`repro.fuzz.cases` -- the JSON repro-case format and corpus
  loader;
* :mod:`repro.fuzz.runner` -- the campaign driver behind
  ``lopc-repro fuzz`` and the CI job;
* :mod:`repro.fuzz.bridge` -- fuzz streams replayed through the facade
  Study/sweep machinery (ZipAxis rows, seeded RandomAxis ranges);
* :mod:`repro.fuzz.opt_invariants` -- the inverse-query optimizer
  checked against brute-force grid scans of the same boxes.
"""

from repro.fuzz.bridge import fuzz_axis, fuzz_studies, fuzz_study
from repro.fuzz.cases import CASE_FORMAT, ReproCase, load_corpus, replay
from repro.fuzz.generators import (
    FUZZ_SCENARIOS,
    generate_points,
    generate_stream,
)
from repro.fuzz.invariants import (
    CHECKED_SCENARIOS,
    PointResult,
    ScenarioReport,
    Violation,
    check_point,
    check_scenario,
    check_sim_point,
)
from repro.fuzz.opt_invariants import (
    OPT_QUERIES,
    check_optimize,
    check_optimize_query,
)
from repro.fuzz.runner import FuzzReport, derive_point_seed, run_fuzz
from repro.fuzz.shrinker import ShrinkResult, shrink_case

__all__ = [
    "CASE_FORMAT",
    "CHECKED_SCENARIOS",
    "FUZZ_SCENARIOS",
    "FuzzReport",
    "OPT_QUERIES",
    "PointResult",
    "ReproCase",
    "ScenarioReport",
    "ShrinkResult",
    "Violation",
    "check_optimize",
    "check_optimize_query",
    "check_point",
    "check_scenario",
    "check_sim_point",
    "derive_point_seed",
    "fuzz_axis",
    "fuzz_studies",
    "fuzz_study",
    "generate_points",
    "generate_stream",
    "load_corpus",
    "replay",
    "run_fuzz",
    "shrink_case",
]
