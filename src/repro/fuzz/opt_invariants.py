"""Property checks for the inverse-query optimizer (:mod:`repro.opt`).

The optimizer's contract is checkable by construction: whatever
bisection, golden-section or boundary logic decides, a brute-force scan
of the same box through the same batch kernels knows the true answer.
This suite fuzzes that agreement:

* **opt-vs-grid** -- for every scenario axis with a declared
  monotonicity/unimodality hint, run ``optimize()`` over a seeded
  random sub-box (fixing the other parameters from the fuzz stream)
  and demand the found objective come within
  :data:`repro.validation.tolerances.OPT_VS_GRID_REL` of the dense-grid
  argmin over the same box;
* **opt-fewer-points** -- the search must also solve strictly fewer
  points than the grid it replaces (the optimizer's reason to exist);
* **opt-infeasible-honest** -- a query whose constraint no grid point
  satisfies must report infeasibility, not invent a winner.

Violations reuse the fuzzer's :class:`~repro.fuzz.invariants.Violation`
record, so failures flow through the same report/corpus machinery as
the model invariants.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.fuzz.bridge import _box_for
from repro.fuzz.generators import generate_points
from repro.fuzz.invariants import Violation
from repro.validation import tolerances as tol

__all__ = ["OPT_QUERIES", "check_optimize", "check_optimize_query"]

#: Hinted single-axis queries worth fuzzing, derived from the backends'
#: declared hints: (scenario, mode, objective column, searched axis).
#: Ps is the workpile's unimodal throughput axis; the rest are the
#: monotone work/window axes of the paper's response-time curves.
OPT_QUERIES: tuple[tuple[str, str, str, str], ...] = (
    ("alltoall", "minimize", "R", "W"),
    ("alltoall", "maximize", "R", "W"),
    ("sharedmem", "minimize", "R", "W"),
    ("workpile", "maximize", "X", "Ps"),
    ("workpile", "minimize", "R", "Ps"),
)

#: Dense-grid resolution for the brute-force cross-check.  33 points
#: resolves the monotone curves far below OPT_VS_GRID_REL; integer axes
#: scan every lattice point up to this many.
_GRID = 33


def _grid_best(
    objective, axis, *, sign: float
) -> tuple[float | None, float, int]:
    """Brute-force ``(arg, value, points)`` over a dense grid of ``axis``.

    ``objective`` is a :class:`repro.opt.evaluate.BatchObjective` score
    function over scalar axis values; infeasible/rejected points score
    ``inf`` and never win.
    """
    xs = axis.grid(_GRID)
    ys = objective(xs)
    best_i = min(range(len(xs)), key=lambda i: sign * ys[i]
                 if math.isfinite(ys[i]) else math.inf)
    if not math.isfinite(ys[best_i]):
        return None, math.inf, len(xs)
    return xs[best_i], ys[best_i], len(xs)


def check_optimize_query(
    scenario: str,
    mode: str,
    objective: str,
    axis_name: str,
    params: Mapping[str, object],
    *,
    seed: int = 0,
) -> list[Violation]:
    """Check one optimizer query against brute force; [] when clean."""
    from repro.api import get_scenario_class
    from repro.opt.evaluate import BatchObjective
    from repro.opt.optimizer import build_axes

    cls = get_scenario_class(scenario)
    fixed = {k: v for k, v in params.items() if k != axis_name}
    box = _box_for(scenario, axis_name, seed)
    sc = cls(**fixed)
    try:
        result = sc.optimize(**{mode: objective}, over={axis_name: box})
    except Exception as exc:  # noqa: BLE001 - any crash is a violation
        return [Violation(
            scenario=scenario,
            invariant="opt-no-crash",
            params=dict(params),
            observed={"box": list(box), "mode": mode,
                      "objective": objective},
            message=f"optimize() raised {type(exc).__name__}: {exc}",
        )]

    axes = build_axes(cls, "analytic", {axis_name: box})
    probe = BatchObjective(sc, "analytic", axes)
    sign = -1.0 if mode == "maximize" else 1.0

    def score(xs: Sequence[float]) -> list[float]:
        rows = probe.scalar_values(axes[0], xs)
        return [
            row[objective] if row is not None and
            math.isfinite(row.get(objective, math.inf)) else math.inf
            for row in rows
        ]

    grid_x, grid_y, grid_points = _grid_best(score, axes[0], sign=sign)
    violations: list[Violation] = []
    observed = {
        "box": list(box),
        "mode": mode,
        "objective": objective,
        "opt_best": result.best if result.feasible else None,
        "opt_arg": result.argbest,
        "opt_points": result.points,
        "grid_best": None if grid_x is None else grid_y,
        "grid_arg": grid_x,
        "grid_points": grid_points,
    }

    if grid_x is None:
        if result.feasible:
            violations.append(Violation(
                scenario=scenario,
                invariant="opt-infeasible-honest",
                params=dict(params),
                observed=observed,
                message="optimize() found a winner where every grid "
                        "point is infeasible",
            ))
        return violations

    if not result.feasible:
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-vs-grid",
            params=dict(params),
            observed=observed,
            message="optimize() reported infeasible on a feasible box",
        ))
        return violations

    # Compare objective values, not argmins: flat stretches make the
    # argmin non-unique, and matching the achieved extremum is the
    # contract that matters.
    scale = max(abs(grid_y), 1e-9)
    drift = sign * (result.best - grid_y) / scale
    if drift > tol.OPT_VS_GRID_REL:
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-vs-grid",
            params=dict(params),
            observed=observed,
            message=(
                f"{mode} {objective}: optimizer found {result.best:.6g}, "
                f"grid found {grid_y:.6g} "
                f"({100 * abs(drift):.2f}% worse; band "
                f"{100 * tol.OPT_VS_GRID_REL:.1f}%)"
            ),
        ))
    if result.points >= grid_points:
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-fewer-points",
            params=dict(params),
            observed=observed,
            message=(
                f"optimizer solved {result.points} points; the "
                f"{grid_points}-point grid it replaces is cheaper"
            ),
        ))
    return violations


#: Constrained (bisection-path) queries: maximize the axis itself
#: subject to a budget on the monotone column, the paper's "largest
#: grain size under a response-time budget" capacity question.
CONSTRAINED_QUERIES: tuple[tuple[str, str, str], ...] = (
    ("alltoall", "W", "R"),
    ("sharedmem", "W", "R"),
)


def check_constrained_query(
    scenario: str,
    axis_name: str,
    column: str,
    params: Mapping[str, object],
    *,
    seed: int = 0,
) -> list[Violation]:
    """Check one budgeted inverse query against brute force.

    The budget is the column's value at the box midpoint (always
    attainable, never trivial), so the true boundary sits strictly
    inside the box.  Two demands: the bisection answer must (a) be at
    least as large as the best *feasible grid point* and (b) honestly
    satisfy the constraint it was given.
    """
    from repro.api import get_scenario_class
    from repro.opt.evaluate import BatchObjective
    from repro.opt.optimizer import build_axes

    cls = get_scenario_class(scenario)
    fixed = {k: v for k, v in params.items() if k != axis_name}
    box = _box_for(scenario, axis_name, seed)
    sc = cls(**fixed)
    axes = build_axes(cls, "analytic", {axis_name: box})
    axis = axes[0]
    probe = BatchObjective(sc, "analytic", axes)

    mid_row = probe.scalar_values(axis, [axis.snap((box[0] + box[1]) / 2)])[0]
    if mid_row is None or not math.isfinite(mid_row.get(column, math.inf)):
        return []  # box midpoint rejected: nothing to anchor a budget on
    budget = float(mid_row[column])
    constraint = f"{column} <= {budget!r}"

    try:
        result = sc.optimize(
            maximize=axis_name,
            over={axis_name: box},
            subject_to=constraint,
        )
    except Exception as exc:  # noqa: BLE001 - any crash is a violation
        return [Violation(
            scenario=scenario,
            invariant="opt-no-crash",
            params=dict(params),
            observed={"box": list(box), "constraint": constraint},
            message=f"optimize() raised {type(exc).__name__}: {exc}",
        )]

    xs = axis.grid(_GRID)
    rows = probe.scalar_values(axis, xs)
    feasible = [
        x for x, row in zip(xs, rows)
        if row is not None
        and math.isfinite(row.get(column, math.inf))
        and row[column] <= budget
    ]
    observed = {
        "box": list(box),
        "constraint": constraint,
        "opt_best": result.best if result.feasible else None,
        "opt_points": result.points,
        "grid_feasible_max": max(feasible) if feasible else None,
        "grid_points": len(xs),
    }
    violations: list[Violation] = []
    if not feasible:
        # Midpoint was feasible, so this cannot happen unless the grid
        # itself broke; treat as a grid anomaly, not an opt violation.
        return violations
    if not result.feasible:
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-vs-grid",
            params=dict(params),
            observed=observed,
            message="budgeted query reported infeasible although the "
                    "box midpoint satisfies the budget",
        ))
        return violations
    span = abs(box[1] - box[0]) or 1.0
    if result.best < max(feasible) - tol.OPT_VS_GRID_REL * span:
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-vs-grid",
            params=dict(params),
            observed=observed,
            message=(
                f"bisection stopped at {axis_name}={result.best:.6g} but "
                f"the grid already reaches {max(feasible):.6g} under "
                f"{constraint}"
            ),
        ))
    achieved = result.best_values.get(column)
    if achieved is None or achieved > budget * (1.0 + tol.REL_SLACK):
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-infeasible-honest",
            params=dict(params),
            observed=observed,
            message=(
                f"winner violates its own constraint: "
                f"{column}={achieved!r} > budget {budget:.6g}"
            ),
        ))
    if result.points >= len(xs):
        violations.append(Violation(
            scenario=scenario,
            invariant="opt-fewer-points",
            params=dict(params),
            observed=observed,
            message=(
                f"optimizer solved {result.points} points; the "
                f"{len(xs)}-point grid it replaces is cheaper"
            ),
        ))
    return violations


def check_optimize(
    points: int = 3,
    seed: int = 0,
    queries: Sequence[tuple[str, str, str, str]] | None = None,
) -> list[Violation]:
    """Run every query of :data:`OPT_QUERIES` (and, when ``queries`` is
    not given, :data:`CONSTRAINED_QUERIES`) over ``points`` fuzzed
    parameter sets each; returns all violations found.

    Point ``j`` of a query depends only on ``(scenario, seed, j)`` --
    the same prefix-stability discipline as the model fuzzer -- so any
    reported violation replays from its ``params`` dict alone.
    """
    violations: list[Violation] = []
    for scenario, mode, objective, axis_name in (queries or OPT_QUERIES):
        for index, params in enumerate(
            generate_points(scenario, points, seed)
        ):
            violations.extend(check_optimize_query(
                scenario, mode, objective, axis_name, params,
                seed=seed + index,
            ))
    if queries is None:
        for scenario, axis_name, column in CONSTRAINED_QUERIES:
            for index, params in enumerate(
                generate_points(scenario, points, seed)
            ):
                violations.extend(check_constrained_query(
                    scenario, axis_name, column, params,
                    seed=seed + index,
                ))
    return violations
