"""The fuzzing campaign driver: generate, bulk-check, shrink, report.

One :func:`run_fuzz` call is one campaign: a deterministic mixed stream
of scenario points (see :mod:`repro.fuzz.generators`), bulk invariant
checks through the batch kernels (:mod:`repro.fuzz.invariants`), a
small sampled-simulation cross-check, shrinking of whatever failed
(:mod:`repro.fuzz.shrinker`), and a JSON report plus repro-case files
for CI to upload.  The CLI ``fuzz`` subcommand and the CI job are thin
wrappers over this function.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.fuzz.cases import ReproCase
from repro.fuzz.generators import FUZZ_SCENARIOS, generate_stream
from repro.fuzz.invariants import (
    ScenarioReport,
    Violation,
    check_scenario,
    check_sim_point,
)
from repro.fuzz.shrinker import shrink_case

__all__ = ["FuzzReport", "derive_point_seed", "run_fuzz"]

#: Points per bulk-check chunk.  Chunking bounds how much work a budget
#: deadline can overshoot by and keeps batch working sets cache-sized.
_CHUNK = 500

#: Simulated cross-check points use at most this many processors (sim
#: cost scales with P x cycles) ...
_SIM_MAX_P = 32

#: ... and, for workpile, at least this many clients: a 1-customer
#: closed network has no queueing for the model's residual-life term to
#: model, so model-vs-sim error there says nothing about correctness.
_SIM_MIN_CLIENTS = 2


def derive_point_seed(master_seed: int, params: Mapping[str, object]) -> int:
    """A stable per-point simulator seed from the campaign seed."""
    canonical = json.dumps(dict(params), sort_keys=True, default=str)
    digest = hashlib.sha256(f"{master_seed}:{canonical}".encode()).digest()
    return int.from_bytes(digest[:4], "big")


@dataclass
class FuzzReport:
    """Everything one campaign learned, JSON-serialisable for CI."""

    seed: int
    requested: int
    checked: int = 0
    rejected: int = 0
    sim_checked: int = 0
    opt_checked: int = 0
    elapsed: float = 0.0
    points_per_second: float = 0.0
    budget_exhausted: bool = False
    scenarios: dict = field(default_factory=dict)
    invariant_counts: dict = field(default_factory=dict)
    violation_counts: dict = field(default_factory=dict)
    cases: list = field(default_factory=list)  # ReproCase dicts

    @property
    def total_violations(self) -> int:
        return sum(self.violation_counts.values())

    @property
    def ok(self) -> bool:
        return self.total_violations == 0

    def to_dict(self) -> dict:
        return {
            "format": "lopc-fuzz-report/1",
            "ok": self.ok,
            "seed": self.seed,
            "requested": self.requested,
            "checked": self.checked,
            "rejected": self.rejected,
            "sim_checked": self.sim_checked,
            "opt_checked": self.opt_checked,
            "elapsed_seconds": round(self.elapsed, 3),
            "points_per_second": round(self.points_per_second, 1),
            "budget_exhausted": self.budget_exhausted,
            "scenarios": self.scenarios,
            "invariant_counts": self.invariant_counts,
            "violation_counts": self.violation_counts,
            "cases": self.cases,
        }

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True)
                        + "\n")
        return path


def _fold_scenario(report: FuzzReport, scenario: ScenarioReport) -> None:
    entry = report.scenarios.setdefault(
        scenario.scenario,
        {"checked": 0, "rejected": 0, "violations": 0},
    )
    entry["checked"] += scenario.checked
    entry["rejected"] += scenario.rejected
    entry["violations"] += sum(scenario.violation_counts.values())
    report.checked += scenario.checked
    report.rejected += scenario.rejected
    for name, count in scenario.invariant_counts.items():
        report.invariant_counts[name] = (
            report.invariant_counts.get(name, 0) + count
        )
    for name, count in scenario.violation_counts.items():
        report.violation_counts[name] = (
            report.violation_counts.get(name, 0) + count
        )


def _sim_subset(
    stream: Sequence[tuple[str, Mapping[str, object]]], count: int
) -> list[tuple[str, Mapping[str, object]]]:
    """The first ``count`` simulable points of the stream, round-robin
    across the scenarios that have a sim counterpart."""
    eligible: dict[str, list[Mapping[str, object]]] = {
        "alltoall": [], "workpile": [],
    }
    for name, params in stream:
        if name not in eligible or int(params["P"]) > _SIM_MAX_P:
            continue
        if (
            name == "workpile"
            and int(params["P"]) - int(params["Ps"]) < _SIM_MIN_CLIENTS
        ):
            continue
        eligible[name].append(params)
    subset: list[tuple[str, Mapping[str, object]]] = []
    index = 0
    while len(subset) < count:
        advanced = False
        for name, pool in eligible.items():
            if index < len(pool) and len(subset) < count:
                subset.append((name, pool[index]))
                advanced = True
        if not advanced:
            break
        index += 1
    return subset


def run_fuzz(
    points: int = 2000,
    seed: int = 0,
    *,
    scenarios: Sequence[str] | None = None,
    sim_points: int = 12,
    sim_cycles: int = 160,
    opt_queries: int = 0,
    budget: float | None = None,
    shrink: bool = True,
    max_shrink: int = 8,
    corpus_dir: Path | str | None = None,
    report_path: Path | str | None = None,
    cache: object = None,
) -> FuzzReport:
    """Run one fuzzing campaign; returns (and optionally writes) the report.

    ``budget`` is a soft wall-clock limit in seconds: the campaign
    checks it between chunks and stops early (``budget_exhausted``)
    rather than abandoning a chunk mid-solve.  ``opt_queries`` > 0 adds
    the optimizer cross-check leg (:mod:`repro.fuzz.opt_invariants`):
    that many fuzzed parameter sets per inverse query, each demanding
    ``optimize()`` agree with a brute-force grid scan.  Failures are
    shrunk to minimal params (at most ``max_shrink`` of them, budget
    permitting) and written as repro-case files into ``corpus_dir``.

    ``cache`` (a backend instance, directory, or ``*.sqlite`` path; see
    :func:`~repro.sweep.cache.coerce_cache`) routes the sampled
    simulation cross-checks through the shared content-addressed record
    store, so repeated campaigns -- and sweeps and the serve layer --
    reuse each other's simulated points bit-identically.
    """
    from repro.sweep.cache import coerce_cache

    t0 = time.perf_counter()
    sim_cache = coerce_cache(cache)
    deadline = None if budget is None else t0 + float(budget)
    names = tuple(scenarios) if scenarios else FUZZ_SCENARIOS
    report = FuzzReport(seed=int(seed), requested=int(points))
    stream = generate_stream(points, seed, names)

    violations: list[Violation] = []
    for start in range(0, len(stream), _CHUNK):
        if deadline is not None and time.perf_counter() > deadline:
            report.budget_exhausted = True
            break
        chunk = stream[start:start + _CHUNK]
        by_scenario: dict[str, list[Mapping[str, object]]] = {}
        for name, params in chunk:
            by_scenario.setdefault(name, []).append(params)
        for name, items in by_scenario.items():
            scenario_report = check_scenario(name, items)
            _fold_scenario(report, scenario_report)
            violations.extend(scenario_report.violations)

    sim_capable = [n for n in names if n in ("alltoall", "workpile")]
    if sim_points > 0 and sim_capable and not report.budget_exhausted:
        for name, params in _sim_subset(stream, sim_points):
            if deadline is not None and time.perf_counter() > deadline:
                report.budget_exhausted = True
                break
            result = check_sim_point(
                name, params, cycles=sim_cycles,
                seed=derive_point_seed(seed, params),
                cache=sim_cache,
            )
            report.sim_checked += 1
            for invariant in result.counts:
                report.invariant_counts[invariant] = (
                    report.invariant_counts.get(invariant, 0)
                    + result.counts[invariant]
                )
            for violation in result.violations:
                report.violation_counts[violation.invariant] = (
                    report.violation_counts.get(violation.invariant, 0) + 1
                )
                violations.append(violation)

    if opt_queries > 0 and not report.budget_exhausted:
        if deadline is not None and time.perf_counter() > deadline:
            report.budget_exhausted = True
        else:
            from repro.fuzz.opt_invariants import (
                CONSTRAINED_QUERIES,
                OPT_QUERIES,
                check_optimize,
            )

            report.opt_checked = opt_queries * (
                len(OPT_QUERIES) + len(CONSTRAINED_QUERIES)
            )
            for violation in check_optimize(points=opt_queries, seed=seed):
                report.violation_counts[violation.invariant] = (
                    report.violation_counts.get(violation.invariant, 0) + 1
                )
                violations.append(violation)

    for i, violation in enumerate(violations):
        shrunk_evals = 0
        # Shrinking replays through the scalar path, so violations the
        # sim or optimizer cross-checks found (different harnesses,
        # seeded differently) are recorded as-is.
        if shrink and i < max_shrink and not (
            deadline is not None and time.perf_counter() > deadline
        ) and not violation.invariant.startswith(("sim-vs-model", "opt-")):
            result = shrink_case(
                violation.scenario, violation.params,
                invariant=violation.invariant,
            )
            shrunk_evals = result.evaluations
            if result.reproduced and result.violation is not None:
                violation = result.violation  # carries the minimal params
        case = ReproCase.from_violation(
            violation,
            seed=seed,
            meta={
                "campaign_points": points,
                "shrink_evaluations": shrunk_evals,
                "original_params": dict(violations[i].params),
            },
        )
        report.cases.append(case.to_dict())
        if corpus_dir is not None:
            case.save(corpus_dir)

    report.elapsed = time.perf_counter() - t0
    total_points = report.checked + report.rejected
    report.points_per_second = (
        total_points / report.elapsed if report.elapsed > 0 else 0.0
    )
    if report_path is not None:
        report.save(report_path)
    return report
