"""Self-contained JSON repro cases for fuzzer failures.

A case file carries everything needed to re-fail (or confirm fixed) a
point with no access to the run that found it: the scenario, the
(shrunken) params, the violated invariant, the observed figures at
failure time, and the master seed of the originating run.  The corpus
under ``tests/fuzz/corpus`` replays every committed case in the fast
test gate, which is how yesterday's fuzz failure becomes tomorrow's
regression test.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from repro.fuzz.invariants import PointResult, Violation, check_point

__all__ = [
    "CASE_FORMAT",
    "ReproCase",
    "load_corpus",
    "replay",
]

#: Format tag embedded in every case file; bump on breaking changes so
#: stale corpus files fail loudly instead of replaying garbage.
CASE_FORMAT = "lopc-fuzz-case/1"


@dataclass(frozen=True)
class ReproCase:
    """One failing (or once-failing) fuzz point, ready to replay."""

    scenario: str
    params: dict
    invariant: str
    message: str
    observed: dict = field(default_factory=dict)
    seed: int | None = None
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_violation(
        cls,
        violation: Violation,
        *,
        seed: int | None = None,
        meta: Mapping[str, object] | None = None,
    ) -> "ReproCase":
        return cls(
            scenario=violation.scenario,
            params=dict(violation.params),
            invariant=violation.invariant,
            message=violation.message,
            observed=dict(violation.observed),
            seed=seed,
            meta=dict(meta or {}),
        )

    def to_dict(self) -> dict:
        return {
            "format": CASE_FORMAT,
            "scenario": self.scenario,
            "invariant": self.invariant,
            "params": self.params,
            "message": self.message,
            "observed": self.observed,
            "seed": self.seed,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ReproCase":
        fmt = payload.get("format")
        if fmt != CASE_FORMAT:
            raise ValueError(
                f"unsupported repro-case format {fmt!r} "
                f"(expected {CASE_FORMAT!r})"
            )
        return cls(
            scenario=str(payload["scenario"]),
            params=dict(payload["params"]),
            invariant=str(payload["invariant"]),
            message=str(payload.get("message", "")),
            observed=dict(payload.get("observed", {})),
            seed=payload.get("seed"),
            meta=dict(payload.get("meta", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ReproCase":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        canonical = json.dumps(
            {"scenario": self.scenario, "invariant": self.invariant,
             "params": self.params},
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()[:8]

    def filename(self) -> str:
        return f"{self.scenario}-{self.invariant}-{self.digest()}.json"

    def save(self, directory: Path | str) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / self.filename()
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "ReproCase":
        return cls.from_json(Path(path).read_text())


def load_corpus(directory: Path | str) -> Iterator[tuple[Path, ReproCase]]:
    """Yield ``(path, case)`` for every case file under ``directory``."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, ReproCase.load(path)


def replay(case: ReproCase) -> PointResult:
    """Re-check a case through the scalar path.

    An empty ``violations`` list means the bug the case pinned is fixed
    (and stayed fixed); the corpus test asserts exactly that.
    """
    return check_point(case.scenario, case.params)
