"""Bulk invariant checking over fuzzed scenario points.

The split of labour is deliberate: *solving* is vectorized through the
batch kernels (that is what makes a 2,000-point pass cost seconds), but
*checking* runs per point over plain-float observation dicts.  One
predicate function per scenario serves both the bulk path and the
scalar replay path (corpus replay, the shrinker), so there is no
vectorized re-implementation of an invariant to drift out of sync --
the checks are microseconds; the solves are the budget.

Error taxonomy:

* a clean :class:`ValueError` (saturation, validation) is an acceptable
  **rejection** -- the model refusing an out-of-domain point is correct
  behaviour and is counted, not reported;
* a :class:`~repro.core.solver.ConvergenceError` is a **violation**
  (``solver-convergence``) -- every in-domain point must converge;
* any other exception is a **violation** (``no-crash``);
* a false predicate is a **violation** named after the invariant.

Every tolerance consulted here lives in
:mod:`repro.validation.tolerances`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.api.scenarios import (
    _multiclass_network_from_params,
    general_network_from_params,
    machine_from_params,
)
from repro.core.alltoall import AllToAllModel, solve_batch_arrays
from repro.core.client_server import (
    ClientServerModel,
    solve_workpile_batch,
    workpile_bounds_batch,
)
from repro.core.general import GeneralLoPCModel, solve_general_batch
from repro.core.logp import LogPModel
from repro.core.nonblocking import NonBlockingModel
from repro.core.rule_of_thumb import contention_bounds
from repro.core.shared_memory import SharedMemoryModel
from repro.core.solver import ConvergenceError
from repro.mva.batch import batch_multiclass_amva, batch_multiclass_mva
from repro.mva.multiclass import multiclass_amva, multiclass_mva
from repro.validation import tolerances as tol

__all__ = [
    "CHECKED_SCENARIOS",
    "PointResult",
    "ScenarioReport",
    "Violation",
    "check_point",
    "check_scenario",
    "check_sim_point",
]

#: How many points of a bulk pass are re-solved through the scalar path
#: for the batch-vs-scalar invariant (spread evenly over the chunk).
_SCALAR_SAMPLE = 24

#: Stored :class:`Violation` objects are capped per (scenario,
#: invariant) so a planted bug that breaks every point does not produce
#: thousands of identical repro cases; the full failure count survives
#: in ``ScenarioReport.violation_counts``.
_MAX_STORED_PER_INVARIANT = 10


@dataclass(frozen=True)
class Violation:
    """One invariant failure at one parameter point, self-contained."""

    scenario: str
    invariant: str
    params: dict
    observed: dict
    message: str


@dataclass
class PointResult:
    """Outcome of checking a single point through the scalar path."""

    scenario: str
    params: dict
    status: str  # "ok" | "rejected"
    violations: list[Violation] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    reason: str = ""  # rejection message


@dataclass
class ScenarioReport:
    """Aggregated outcome of a bulk check over one scenario's points."""

    scenario: str
    checked: int = 0
    rejected: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: invariant -> number of points the predicate evaluated on.
    invariant_counts: dict[str, int] = field(default_factory=dict)
    #: invariant -> number of failures (uncapped).
    violation_counts: dict[str, int] = field(default_factory=dict)

    def fold(self, result: PointResult) -> None:
        if result.status == "rejected":
            self.rejected += 1
            return
        self.checked += 1
        for name, count in result.counts.items():
            self.invariant_counts[name] = (
                self.invariant_counts.get(name, 0) + count
            )
        for violation in result.violations:
            self.add(violation)

    def add(self, violation: Violation) -> None:
        key = violation.invariant
        self.violation_counts[key] = self.violation_counts.get(key, 0) + 1
        if self.violation_counts[key] <= _MAX_STORED_PER_INVARIANT:
            self.violations.append(violation)


def _jsonable(value: object) -> object:
    if isinstance(value, (np.generic,)):
        return value.item()
    if isinstance(value, np.ndarray):
        return [float(v) for v in value.ravel()]
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class _Checks:
    """Collects one point's invariant evaluations."""

    def __init__(self, scenario: str, params: Mapping[str, object]) -> None:
        self.scenario = scenario
        self.params = dict(params)
        self.violations: list[Violation] = []
        self.counts: dict[str, int] = {}

    def check(
        self, invariant: str, ok: bool, message: str, **observed: object
    ) -> None:
        self.counts[invariant] = self.counts.get(invariant, 0) + 1
        if not ok:
            self.violations.append(
                Violation(
                    scenario=self.scenario,
                    invariant=invariant,
                    params=dict(self.params),
                    observed={k: _jsonable(v) for k, v in observed.items()},
                    message=message,
                )
            )


# ---------------------------------------------------------------------------
# All-to-all / shared memory
# ---------------------------------------------------------------------------
def _alltoall_predicates(c: _Checks, obs: Mapping[str, object]) -> None:
    r, lo, hi = obs["R"], obs["lower"], obs["upper"]
    c.check(
        "bounds-bracket-model",
        lo * (1.0 - tol.BOUNDS_REL_SLACK) - tol.ABS_SLACK
        <= r
        <= hi * (1.0 + tol.BOUNDS_REL_SLACK) + tol.ABS_SLACK,
        f"R={r:.6g} outside rule-of-thumb bracket [{lo:.6g}, {hi:.6g}]",
        R=r, lower=lo, upper=hi,
    )
    c.check(
        "compute-floor",
        obs["Rw"] >= obs["W"] - tol.ABS_SLACK,
        f"Rw={obs['Rw']:.6g} below the issued work W={obs['W']:.6g}",
        Rw=obs["Rw"], W=obs["W"],
    )
    c.check(
        "queues-nonneg",
        obs["Qq"] >= -tol.ABS_SLACK and obs["Qy"] >= -tol.ABS_SLACK,
        f"negative handler queue (Qq={obs['Qq']:.6g}, Qy={obs['Qy']:.6g})",
        Qq=obs["Qq"], Qy=obs["Qy"],
    )
    c.check(
        "handler-utilisation",
        -tol.UTILISATION_SLACK <= obs["Uq"] < 1.0
        and -tol.UTILISATION_SLACK <= obs["Uy"] < 1.0,
        f"handler utilisation out of [0, 1) (Uq={obs['Uq']:.6g}, "
        f"Uy={obs['Uy']:.6g})",
        Uq=obs["Uq"], Uy=obs["Uy"],
    )
    if "scalar_R" in obs:
        c.check(
            "batch-scalar-bitwise",
            obs["R"] == obs["scalar_R"]
            and obs["Rw"] == obs["scalar_Rw"]
            and obs["Rq"] == obs["scalar_Rq"]
            and obs["Ry"] == obs["scalar_Ry"],
            f"batch solve diverges from scalar (batch R={obs['R']!r}, "
            f"scalar R={obs['scalar_R']!r})",
            R=obs["R"], scalar_R=obs["scalar_R"],
            Rq=obs["Rq"], scalar_Rq=obs["scalar_Rq"],
        )


def _alltoall_scalar_fields(params: Mapping[str, object]) -> dict[str, float]:
    machine = machine_from_params(params)
    model = (
        SharedMemoryModel(machine)
        if params.get("_pp", False)
        else AllToAllModel(machine)
    )
    sol = model.solve_work(float(params["W"]))
    return {
        "scalar_R": sol.response_time,
        "scalar_Rw": sol.compute_residence,
        "scalar_Rq": sol.request_residence,
        "scalar_Ry": sol.reply_residence,
    }


def _bulk_alltoall(
    items: Sequence[Mapping[str, object]],
    *,
    protocol_processor: bool,
    scenario: str,
    scalar_sample: int = _SCALAR_SAMPLE,
) -> ScenarioReport:
    report = ScenarioReport(scenario)
    if not items:
        return report
    w = np.array([float(p["W"]) for p in items])
    st = np.array([float(p["St"]) for p in items])
    so = np.array([float(p["So"]) for p in items])
    cv2 = np.array([float(p.get("C2", 0.0)) for p in items])
    arrays = solve_batch_arrays(
        w, st, so, cv2, protocol_processor=protocol_processor
    )
    sample = _sample_indices(len(items), scalar_sample)
    for i, params in enumerate(items):
        machine = machine_from_params(params)
        lower, upper = contention_bounds(machine, float(w[i]))
        obs: dict[str, object] = {
            "R": float(arrays["R"][i]),
            "Rw": float(arrays["Rw"][i]),
            "Rq": float(arrays["Rq"][i]),
            "Ry": float(arrays["Ry"][i]),
            "Qq": float(arrays["Qq"][i]),
            "Qy": float(arrays["Qy"][i]),
            "Uq": float(arrays["Uq"][i]),
            "Uy": float(arrays["Uy"][i]),
            "W": float(w[i]),
            "lower": lower,
            "upper": upper,
        }
        if i in sample:
            scalar_params = dict(params, _pp=protocol_processor)
            obs.update(_alltoall_scalar_fields(scalar_params))
        c = _Checks(scenario, params)
        _alltoall_predicates(c, obs)
        report.fold(PointResult(scenario, dict(params), "ok",
                                c.violations, c.counts))
    return report


def _alltoall_obs_scalar(
    params: Mapping[str, object], *, protocol_processor: bool
) -> dict[str, object]:
    machine = machine_from_params(params)
    w = float(params["W"])
    arrays = solve_batch_arrays(
        [w], [machine.latency], [machine.handler_time], [machine.handler_cv2],
        protocol_processor=protocol_processor,
    )
    lower, upper = contention_bounds(machine, w)
    obs: dict[str, object] = {
        key: float(arrays[key][0])
        for key in ("R", "Rw", "Rq", "Ry", "Qq", "Qy", "Uq", "Uy")
    }
    obs.update(W=w, lower=lower, upper=upper)
    obs.update(_alltoall_scalar_fields(dict(params, _pp=protocol_processor)))
    return obs


# ---------------------------------------------------------------------------
# Workpile
# ---------------------------------------------------------------------------
def _workpile_predicates(c: _Checks, obs: Mapping[str, object]) -> None:
    x, bound = obs["X"], min(obs["server_bound"], obs["client_bound"])
    c.check(
        "throughput-bound",
        x <= bound * (1.0 + tol.BOUNDS_REL_SLACK),
        f"X={x:.6g} above the optimistic LogP bound {bound:.6g}",
        X=x, server_bound=obs["server_bound"],
        client_bound=obs["client_bound"],
    )
    clients = obs["clients"]
    c.check(
        "littles-law",
        abs(x * obs["R"] - clients) <= tol.REL_SLACK * clients,
        f"X*R={x * obs['R']:.9g} != clients={clients}",
        X=x, R=obs["R"], clients=clients,
    )
    identity = obs["W"] + 2.0 * obs["St"] + obs["Rs"] + obs["So"]
    c.check(
        "cycle-identity",
        abs(obs["R"] - identity) <= tol.REL_SLACK * obs["R"] + tol.ABS_SLACK,
        f"R={obs['R']:.9g} != W + 2 St + Rs + So = {identity:.9g}",
        R=obs["R"], identity=identity,
    )
    c.check(
        "server-utilisation",
        -tol.UTILISATION_SLACK <= obs["Us"] <= 1.0 + tol.UTILISATION_SLACK
        and obs["Qs"] >= -tol.ABS_SLACK,
        f"server figures out of range (Us={obs['Us']:.6g}, "
        f"Qs={obs['Qs']:.6g})",
        Us=obs["Us"], Qs=obs["Qs"],
    )
    if "scalar_X" in obs:
        c.check(
            "batch-scalar-bitwise",
            obs["X"] == obs["scalar_X"]
            and obs["R"] == obs["scalar_R"]
            and obs["Rs"] == obs["scalar_Rs"],
            f"batch solve diverges from scalar (batch X={obs['X']!r}, "
            f"scalar X={obs['scalar_X']!r})",
            X=obs["X"], scalar_X=obs["scalar_X"],
        )


def _workpile_obs(
    params: Mapping[str, object], sol, bounds: Mapping[str, float]
) -> dict[str, object]:
    return {
        "X": float(sol.throughput),
        "R": float(sol.response_time),
        "Rs": float(sol.server_residence),
        "Qs": float(sol.server_queue),
        "Us": float(sol.server_utilization),
        "W": float(params["W"]),
        "St": float(params["St"]),
        "So": float(params["So"]),
        "clients": int(params["P"]) - int(params["Ps"]),
        "server_bound": float(bounds["server_bound"]),
        "client_bound": float(bounds["client_bound"]),
    }


def _workpile_scalar_fields(params: Mapping[str, object]) -> dict[str, float]:
    machine = machine_from_params(params)
    sol = ClientServerModel(machine, work=float(params["W"])).solve(
        int(params["Ps"])
    )
    return {
        "scalar_X": sol.throughput,
        "scalar_R": sol.response_time,
        "scalar_Rs": sol.server_residence,
    }


def _bulk_workpile(
    items: Sequence[Mapping[str, object]],
    *,
    scalar_sample: int = _SCALAR_SAMPLE,
) -> ScenarioReport:
    report = ScenarioReport("workpile")
    if not items:
        return report
    w = [float(p["W"]) for p in items]
    st = [float(p["St"]) for p in items]
    so = [float(p["So"]) for p in items]
    cv2 = [float(p.get("C2", 0.0)) for p in items]
    procs = [int(p["P"]) for p in items]
    servers = [int(p["Ps"]) for p in items]
    solutions = solve_workpile_batch(w, st, so, cv2, procs, servers)
    bounds = workpile_bounds_batch(w, st, so, procs, servers)
    sample = _sample_indices(len(items), scalar_sample)
    for i, params in enumerate(items):
        point_bounds = {
            "server_bound": bounds["server_bound"][i],
            "client_bound": bounds["client_bound"][i],
        }
        obs = _workpile_obs(params, solutions[i], point_bounds)
        if i in sample:
            obs.update(_workpile_scalar_fields(params))
        c = _Checks("workpile", params)
        _workpile_predicates(c, obs)
        report.fold(PointResult("workpile", dict(params), "ok",
                                c.violations, c.counts))
    return report


def _workpile_obs_scalar(params: Mapping[str, object]) -> dict[str, object]:
    machine = machine_from_params(params)
    servers = int(params["Ps"])
    w = float(params["W"])
    batch = solve_workpile_batch(
        [w], [machine.latency], [machine.handler_time],
        [machine.handler_cv2], [machine.processors], [servers],
    )
    logp = LogPModel(machine)
    bounds = {
        "server_bound": logp.workpile_server_bound(servers),
        "client_bound": logp.workpile_client_bound(
            machine.processors - servers, w
        ),
    }
    obs = _workpile_obs(params, batch[0], bounds)
    obs.update(_workpile_scalar_fields(params))
    return obs


# ---------------------------------------------------------------------------
# Multi-class MVA
# ---------------------------------------------------------------------------
def _multiclass_predicates(c: _Checks, obs: Mapping[str, object]) -> None:
    exact = np.asarray(obs["exact_cycles"])
    bard = np.asarray(obs["bard_cycles"])
    schweitzer = np.asarray(obs["schweitzer_cycles"])
    c.check(
        "amva-converged",
        bool(obs["bard_converged"]) and bool(obs["schweitzer_converged"]),
        "approximate MVA fixed point did not converge",
        bard_converged=obs["bard_converged"],
        schweitzer_converged=obs["schweitzer_converged"],
    )
    # The AMVA orderings are theorems only for a single class; with 2+
    # classes they are heuristics that drift by well under a percent
    # (see AMVA_MULTICLASS_ORDER_BAND provenance).
    single = len(obs["populations"]) == 1
    down = (
        tol.BARD_VS_EXACT_REL_SLACK if single
        else tol.AMVA_MULTICLASS_ORDER_BAND
    )
    up = (
        tol.SCHWEITZER_VS_BARD_REL_SLACK if single
        else tol.AMVA_MULTICLASS_ORDER_BAND
    )
    c.check(
        "bard-pessimistic",
        bool(np.all(bard >= exact * (1.0 - down))),
        "Bard AMVA cycle below the exact MVA cycle",
        exact_cycles=exact, bard_cycles=bard,
    )
    c.check(
        "schweitzer-below-bard",
        bool(np.all(schweitzer <= bard * (1.0 + up))),
        "Schweitzer AMVA cycle above the Bard cycle",
        bard_cycles=bard, schweitzer_cycles=schweitzer,
    )
    c.check(
        "schweitzer-near-exact",
        bool(np.all(
            np.abs(schweitzer - exact)
            <= tol.SCHWEITZER_VS_EXACT_BAND * exact
        )),
        f"Schweitzer AMVA drifted more than "
        f"{tol.SCHWEITZER_VS_EXACT_BAND:.0%} from exact MVA",
        exact_cycles=exact, schweitzer_cycles=schweitzer,
    )
    queues = np.asarray(obs["queues"])
    throughputs = np.asarray(obs["throughputs"])
    thinks = np.asarray(obs["think_times"])
    total = float(sum(obs["populations"]))
    conserved = float(queues.sum() + (throughputs * thinks).sum())
    c.check(
        "population-conservation",
        abs(conserved - total) <= tol.POPULATION_CONSERVATION_REL * total,
        f"exact MVA loses customers: Q + X*Z = {conserved:.9g}, "
        f"N = {total:g}",
        conserved=conserved, populations=obs["populations"],
    )
    c.check(
        "queues-nonneg",
        bool(np.all(queues >= -tol.ABS_SLACK)),
        "negative centre queue in the exact solution",
        queues=queues,
    )
    if "scalar_exact_cycles" in obs:
        c.check(
            "batch-scalar-bitwise",
            obs["exact_cycles"] == obs["scalar_exact_cycles"]
            and obs["schweitzer_cycles"] == obs["scalar_schweitzer_cycles"],
            "batch multiclass kernels diverge from the scalar recursions",
            exact_cycles=obs["exact_cycles"],
            scalar_exact_cycles=obs["scalar_exact_cycles"],
            schweitzer_cycles=obs["schweitzer_cycles"],
            scalar_schweitzer_cycles=obs["scalar_schweitzer_cycles"],
        )


def _multiclass_scalar_fields(
    demands, populations, think_times, kinds
) -> dict[str, object]:
    exact = multiclass_mva(
        demands, populations, think_times=think_times, kinds=kinds
    )
    schweitzer = multiclass_amva(
        demands, populations, think_times=think_times, kinds=kinds,
        method="schweitzer",
    )
    return {
        "scalar_exact_cycles": [float(v) for v in exact.cycle_times],
        "scalar_schweitzer_cycles": [
            float(v) for v in schweitzer.cycle_times
        ],
    }


def _multiclass_obs_from_batch(
    exact, bard, schweitzer, j: int, parsed
) -> dict[str, object]:
    demands, populations, think_times, _, _ = parsed
    return {
        "exact_cycles": [float(v) for v in exact.cycle_times[j]],
        "bard_cycles": [float(v) for v in bard.cycle_times[j]],
        "schweitzer_cycles": [float(v) for v in schweitzer.cycle_times[j]],
        "queues": [float(v) for v in exact.queue_lengths[j]],
        "throughputs": [float(v) for v in exact.throughputs[j]],
        "think_times": [float(v) for v in think_times],
        "populations": [int(v) for v in populations],
        "bard_converged": bool(bard.converged[j]),
        "schweitzer_converged": bool(schweitzer.converged[j]),
    }


def _bulk_multiclass(
    items: Sequence[Mapping[str, object]],
    *,
    scalar_sample: int = _SCALAR_SAMPLE,
) -> ScenarioReport:
    report = ScenarioReport("multiclass")
    if not items:
        return report
    parsed = [_multiclass_network_from_params(p) for p in items]
    groups: dict[tuple, list[int]] = {}
    for i, (demands, populations, _, kinds, _) in enumerate(parsed):
        signature = (
            tuple(kinds) if kinds is not None else None,
            len(populations),
            len(demands[0]),
        )
        groups.setdefault(signature, []).append(i)
    sample = _sample_indices(len(items), scalar_sample)
    for (kinds_sig, _, _), indices in groups.items():
        demands = np.array([parsed[i][0] for i in indices])
        populations = np.array([parsed[i][1] for i in indices])
        think_times = np.array([parsed[i][2] for i in indices])
        kinds = list(kinds_sig) if kinds_sig is not None else None
        exact = batch_multiclass_mva(demands, populations, think_times,
                                     kinds=kinds)
        bard = batch_multiclass_amva(demands, populations, think_times,
                                     kinds=kinds, method="bard")
        schweitzer = batch_multiclass_amva(
            demands, populations, think_times, kinds=kinds,
            method="schweitzer",
        )
        for j, i in enumerate(indices):
            obs = _multiclass_obs_from_batch(
                exact, bard, schweitzer, j, parsed[i]
            )
            if i in sample:
                obs.update(_multiclass_scalar_fields(
                    parsed[i][0], parsed[i][1], parsed[i][2], parsed[i][3]
                ))
            c = _Checks("multiclass", items[i])
            _multiclass_predicates(c, obs)
            report.fold(PointResult("multiclass", dict(items[i]), "ok",
                                    c.violations, c.counts))
    return report


def _multiclass_obs_scalar(params: Mapping[str, object]) -> dict[str, object]:
    demands, populations, think_times, kinds, _ = (
        _multiclass_network_from_params(params)
    )
    exact = batch_multiclass_mva(
        np.array([demands]), np.array([populations]),
        np.array([think_times]), kinds=kinds,
    )
    bard = batch_multiclass_amva(
        np.array([demands]), np.array([populations]),
        np.array([think_times]), kinds=kinds, method="bard",
    )
    schweitzer = batch_multiclass_amva(
        np.array([demands]), np.array([populations]),
        np.array([think_times]), kinds=kinds, method="schweitzer",
    )
    obs = _multiclass_obs_from_batch(
        exact, bard, schweitzer, 0,
        (demands, populations, think_times, kinds, "exact"),
    )
    obs.update(
        _multiclass_scalar_fields(demands, populations, think_times, kinds)
    )
    return obs


# ---------------------------------------------------------------------------
# General visit-matrix model
# ---------------------------------------------------------------------------
def _general_predicates(c: _Checks, obs: Mapping[str, object]) -> None:
    c.check(
        "no-saturation",
        obs["Uq_max"] < 1.0,
        f"request-handler utilisation reached {obs['Uq_max']:.6g}",
        Uq_max=obs["Uq_max"],
    )
    c.check(
        "queues-nonneg",
        obs["Qq_min"] >= -tol.ABS_SLACK and obs["Qy_min"] >= -tol.ABS_SLACK,
        f"negative handler queue (min Qq={obs['Qq_min']:.6g}, "
        f"min Qy={obs['Qy_min']:.6g})",
        Qq_min=obs["Qq_min"], Qy_min=obs["Qy_min"],
    )
    responses = np.asarray(obs["R"])
    floors = np.asarray(obs["floor"])
    c.check(
        "response-floor",
        bool(np.all(responses >= floors - tol.ABS_SLACK)),
        "active-thread cycle below its contention-free wire floor",
        R=responses, floor=floors,
    )
    if "scalar_R" in obs:
        scalar = np.asarray(obs["scalar_R"])
        c.check(
            "batch-scalar-close",
            bool(np.all(
                np.abs(responses - scalar)
                <= tol.GENERAL_BATCH_REL * np.abs(scalar)
            )),
            "batched Appendix-A solve drifted from the scalar solve "
            "beyond solver tolerance",
            R=responses, scalar_R=scalar,
        )


def _general_obs(model: GeneralLoPCModel, sol) -> dict[str, object]:
    active = sol.active
    st = model.machine.latency
    works = np.where(active, model.works, 0.0)
    row_sums = model.visits.sum(axis=1)
    floors = works + (row_sums + 1.0) * st
    return {
        "R": [float(v) for v in sol.response_times[active]],
        "floor": [float(v) for v in floors[active]],
        "X": float(sol.system_throughput),
        "Uq_max": float(sol.request_utilizations.max()),
        "Qq_min": float(sol.request_queues.min()),
        "Qy_min": float(sol.reply_queues.min()),
    }


def _general_model_for(params: Mapping[str, object]) -> GeneralLoPCModel:
    works, visits = general_network_from_params(params)
    return GeneralLoPCModel(
        machine_from_params(params),
        works,
        visits,
        protocol_processor=bool(params.get("protocol_processor", False)),
    )


def _bulk_general(
    items: Sequence[Mapping[str, object]],
    *,
    scalar_sample: int = _SCALAR_SAMPLE,
) -> ScenarioReport:
    report = ScenarioReport("general")
    if not items:
        return report
    models: list[GeneralLoPCModel | None] = []
    for params in items:
        try:
            models.append(_general_model_for(params))
        except ValueError:
            models.append(None)
            report.rejected += 1
    groups: dict[int, list[int]] = {}
    for i, model in enumerate(models):
        if model is not None:
            groups.setdefault(model.machine.processors, []).append(i)
    sample = _sample_indices(len(items), scalar_sample)
    for indices in groups.values():
        group_models = [models[i] for i in indices]
        try:
            solutions = solve_general_batch(group_models)
        except (ValueError, ConvergenceError):
            # A saturating (or diverging) point poisons the whole masked
            # batch; isolate per point through the scalar path.
            for i in indices:
                report.fold(check_point("general", items[i]))
            continue
        for j, i in enumerate(indices):
            obs = _general_obs(group_models[j], solutions[j])
            if i in sample:
                obs["scalar_R"] = _general_scalar_responses(
                    items[i], group_models[j]
                )
            c = _Checks("general", items[i])
            _general_predicates(c, obs)
            report.fold(PointResult("general", dict(items[i]), "ok",
                                    c.violations, c.counts))
    return report


def _general_scalar_responses(
    params: Mapping[str, object], model: GeneralLoPCModel
) -> list[float]:
    # A scalar rejection where the batch accepted (or vice versa) is a
    # discrepancy the batch-scalar invariant should surface, so map it
    # to an impossible response vector rather than raising.
    try:
        sol = _general_model_for(params).solve()
    except (ValueError, ConvergenceError):
        return [float("nan")] * int(model.active.sum())
    return [float(v) for v in sol.response_times[sol.active]]


def _general_obs_scalar(params: Mapping[str, object]) -> dict[str, object]:
    model = _general_model_for(params)
    batch_sol = solve_general_batch([model])[0]
    obs = _general_obs(model, batch_sol)
    scalar_sol = _general_model_for(params).solve()
    obs["scalar_R"] = [
        float(v) for v in scalar_sol.response_times[scalar_sol.active]
    ]
    return obs


# ---------------------------------------------------------------------------
# Non-blocking window model (scalar only -- no batch kernel yet)
# ---------------------------------------------------------------------------
def _nonblocking_predicates(c: _Checks, obs: Mapping[str, object]) -> None:
    cycle, rw, trip, k = obs["cycle"], obs["Rw"], obs["round_trip"], obs["k"]
    law = max(rw, trip / k) if k > 0 else rw
    c.check(
        "window-law",
        abs(cycle - law) <= tol.REL_SLACK * cycle + tol.ABS_SLACK,
        f"cycle={cycle:.9g} breaks cycle = max(Rw, round_trip/k) "
        f"= {law:.9g}",
        cycle=cycle, Rw=rw, round_trip=trip, k=k,
    )
    c.check(
        "overlap-speedup",
        obs["overlap_speedup"] >= 1.0 - tol.REL_SLACK,
        f"windowed issue slower than blocking "
        f"(speedup={obs['overlap_speedup']:.6g})",
        overlap_speedup=obs["overlap_speedup"],
    )
    c.check(
        "handler-utilisation",
        -tol.UTILISATION_SLACK <= obs["Uq"] < 1.0,
        f"handler utilisation out of [0, 1) (Uq={obs['Uq']:.6g})",
        Uq=obs["Uq"],
    )
    if "cycle_2k" in obs:
        c.check(
            "window-monotone",
            obs["cycle_2k"] <= cycle * (1.0 + tol.REL_SLACK),
            f"doubling the window k={k:g} raised the cycle time "
            f"({cycle:.6g} -> {obs['cycle_2k']:.6g})",
            cycle=cycle, cycle_2k=obs["cycle_2k"], k=k,
        )


def _nonblocking_obs_scalar(params: Mapping[str, object]) -> dict[str, object]:
    import math

    machine = machine_from_params(params)
    k = float(params.get("k", 0.0))
    if k < 0.0:
        raise ValueError(f"window k must be >= 1, or 0 for unbounded, got {k!r}")
    window = math.inf if k == 0.0 else k
    w = float(params["W"])
    sol = NonBlockingModel(machine, window=window).solve(w)
    obs: dict[str, object] = {
        "cycle": float(sol.cycle_time),
        "Rw": float(sol.compute_residence),
        "round_trip": float(sol.round_trip),
        "Uq": float(sol.request_utilization),
        "overlap_speedup": float(sol.overlap_speedup),
        "k": k,
    }
    if k > 0.0:
        wider = NonBlockingModel(machine, window=2.0 * k).solve(w)
        obs["cycle_2k"] = float(wider.cycle_time)
    return obs


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------
_OBS_SCALAR = {
    "alltoall": lambda p: _alltoall_obs_scalar(p, protocol_processor=False),
    "sharedmem": lambda p: _alltoall_obs_scalar(p, protocol_processor=True),
    "workpile": _workpile_obs_scalar,
    "multiclass": _multiclass_obs_scalar,
    "general": _general_obs_scalar,
    "nonblocking": _nonblocking_obs_scalar,
}

_PREDICATES = {
    "alltoall": _alltoall_predicates,
    "sharedmem": _alltoall_predicates,
    "workpile": _workpile_predicates,
    "multiclass": _multiclass_predicates,
    "general": _general_predicates,
    "nonblocking": _nonblocking_predicates,
}

#: Scenarios with a registered invariant suite.
CHECKED_SCENARIOS: tuple[str, ...] = tuple(_OBS_SCALAR)


def _sample_indices(n: int, sample: int) -> set[int]:
    if sample <= 0 or n == 0:
        return set()
    return set(np.unique(np.linspace(0, n - 1, min(n, sample)).astype(int)))


def check_point(name: str, params: Mapping[str, object]) -> PointResult:
    """Check one point through the scalar path (corpus replay, shrinker).

    Observes the same figures as the bulk path -- including a
    single-point batch solve, so the batch-vs-scalar invariant replays
    too -- and runs the shared predicate suite on them.
    """
    if name not in _OBS_SCALAR:
        known = ", ".join(CHECKED_SCENARIOS)
        raise KeyError(f"no invariant suite for {name!r}; known: {known}")
    c = _Checks(name, params)
    try:
        obs = _OBS_SCALAR[name](params)
    except ValueError as exc:
        return PointResult(name, dict(params), "rejected", reason=str(exc))
    except ConvergenceError as exc:
        c.check("solver-convergence", False, f"solver did not converge: {exc}")
        return PointResult(name, dict(params), "ok", c.violations, c.counts)
    except Exception as exc:  # noqa: BLE001 -- the no-crash invariant
        c.check(
            "no-crash", False,
            f"unexpected {type(exc).__name__}: {exc}",
        )
        return PointResult(name, dict(params), "ok", c.violations, c.counts)
    _PREDICATES[name](c, obs)
    return PointResult(name, dict(params), "ok", c.violations, c.counts)


def check_scenario(
    name: str,
    items: Sequence[Mapping[str, object]],
    *,
    scalar_sample: int = _SCALAR_SAMPLE,
) -> ScenarioReport:
    """Bulk-check ``items`` of scenario ``name``; returns the report.

    Solves through the batch kernels and falls back to per-point scalar
    checking if the bulk pass raises (one bad point must not mask the
    rest of the chunk).
    """
    if name not in _OBS_SCALAR:
        known = ", ".join(CHECKED_SCENARIOS)
        raise KeyError(f"no invariant suite for {name!r}; known: {known}")
    try:
        if name == "alltoall":
            return _bulk_alltoall(items, protocol_processor=False,
                                  scenario="alltoall",
                                  scalar_sample=scalar_sample)
        if name == "sharedmem":
            return _bulk_alltoall(items, protocol_processor=True,
                                  scenario="sharedmem",
                                  scalar_sample=scalar_sample)
        if name == "workpile":
            return _bulk_workpile(items, scalar_sample=scalar_sample)
        if name == "multiclass":
            return _bulk_multiclass(items, scalar_sample=scalar_sample)
        if name == "general":
            return _bulk_general(items, scalar_sample=scalar_sample)
    except Exception:  # noqa: BLE001 -- isolate the poisoning point
        pass
    report = ScenarioReport(name)
    for params in items:
        report.fold(check_point(name, params))
    return report


# ---------------------------------------------------------------------------
# Sampled simulation cross-check
# ---------------------------------------------------------------------------
def _measured_values(
    evaluator: str,
    sim_params: "dict[str, object]",
    cache: object,
) -> "dict[str, object]":
    """Sim values for one cross-check point, via the shared sweep cache.

    Routes the measurement through :func:`~repro.sweep.evaluators.
    evaluate_point` with the evaluator's declared defaults merged, and
    stores the standard record shape under the standard
    :func:`~repro.sweep.cache.point_key` -- so fuzz cross-checks,
    sweeps, and the serve layer all share records.  The evaluator
    builds its simulator config exactly as the direct path does
    (same ``MachineConfig``, same ``run_*`` defaults), so the values
    are bit-identical either way.
    """
    from repro.sweep.cache import SOLVER_VERSION, point_key
    from repro.sweep.evaluators import evaluate_point, evaluator_defaults

    full = evaluator_defaults(evaluator)
    full.update(sim_params)
    key = point_key(evaluator, full)
    record = cache.get(key)
    if record is None:
        record = evaluate_point((evaluator, full))
        cache.put(key, {
            "evaluator": evaluator,
            "params": full,
            "values": record["values"],
            "meta": record["meta"],
            "solver_version": SOLVER_VERSION,
        })
    return record["values"]


def check_sim_point(
    name: str,
    params: Mapping[str, object],
    *,
    cycles: int = 160,
    seed: int = 0,
    cache: object = None,
) -> PointResult:
    """Simulate one point and check it against the analytic model.

    Only the cycle-driven scenarios with a measured counterpart
    (``alltoall``, ``workpile``) participate; bands live in
    :mod:`repro.validation.tolerances`.  With a ``cache`` (any
    :class:`~repro.sweep.cache.CacheBackend`), the measurement rides
    the registered sim evaluator and the shared content-addressed
    record store, so repeated campaigns skip already-simulated points;
    the values are bit-identical to the direct path.
    """
    from repro.sim.machine import MachineConfig

    c = _Checks(name, params)
    config = MachineConfig(
        processors=int(params["P"]),
        latency=float(params["St"]),
        handler_time=float(params["So"]),
        handler_cv2=float(params.get("C2", 0.0)),
        seed=int(seed),
    )
    if name == "alltoall":
        from repro.workloads.alltoall import run_alltoall

        machine = machine_from_params(params)
        model = AllToAllModel(machine).solve_work(float(params["W"]))
        if cache is not None:
            values = _measured_values("alltoall-sim", {
                "P": int(params["P"]),
                "St": float(params["St"]),
                "So": float(params["So"]),
                "C2": float(params.get("C2", 0.0)),
                "W": float(params["W"]),
                "cycles": int(cycles),
                "seed": int(seed),
            }, cache)
            sim_R = float(values["R"])
        else:
            measured = run_alltoall(config, work=float(params["W"]),
                                    cycles=cycles)
            sim_R = measured.response_time
        pct = 100.0 * (model.response_time - sim_R) / sim_R
        lo, hi = tol.SIM_RESPONSE_PCT_BAND
        c.check(
            "sim-vs-model-response",
            lo <= pct <= hi,
            f"model R={model.response_time:.6g} vs sim "
            f"R={sim_R:.6g} ({pct:+.1f}% outside "
            f"[{lo:+.1f}%, {hi:+.1f}%])",
            model_R=model.response_time, sim_R=sim_R,
            pct=pct, cycles=cycles, sim_seed=seed,
        )
    elif name == "workpile":
        from repro.workloads.workpile import run_workpile

        machine = machine_from_params(params)
        model = ClientServerModel(machine, work=float(params["W"])).solve(
            int(params["Ps"])
        )
        if cache is not None:
            values = _measured_values("workpile-sim", {
                "P": int(params["P"]),
                "St": float(params["St"]),
                "So": float(params["So"]),
                "C2": float(params.get("C2", 0.0)),
                "W": float(params["W"]),
                "Ps": int(params["Ps"]),
                "chunks": int(cycles),
                "seed": int(seed),
            }, cache)
            sim_X = float(values["X"])
        else:
            measured = run_workpile(config, servers=int(params["Ps"]),
                                    work=float(params["W"]), chunks=cycles)
            sim_X = measured.throughput
        pct = 100.0 * (model.throughput - sim_X) / sim_X
        lo, hi = tol.SIM_THROUGHPUT_PCT_BAND
        c.check(
            "sim-vs-model-throughput",
            lo <= pct <= hi,
            f"model X={model.throughput:.6g} vs sim "
            f"X={sim_X:.6g} ({pct:+.1f}% outside "
            f"[{lo:+.1f}%, {hi:+.1f}%])",
            model_X=model.throughput, sim_X=sim_X,
            pct=pct, chunks=cycles, sim_seed=seed,
        )
    else:
        raise KeyError(
            f"scenario {name!r} has no sampled-simulation cross-check"
        )
    return PointResult(name, dict(params), "ok", c.violations, c.counts)
