"""Thread programs: the generator-based effect API.

The background computation thread on each node is written as a Python
generator that *yields effects*; the node runtime interprets them with
the machine semantics of paper Chapter 2:

* :class:`Compute` -- consume CPU cycles at low priority.  Arriving
  handlers preempt the computation; the remaining cycles resume once the
  handler FIFO drains (preempt-resume).
* :class:`Send` -- inject an active message (modelled as free: LoPC
  assumes cheap user-level sends; an optional per-machine
  ``send_overhead`` can charge compute cycles instead).
* :class:`Wait` -- block until a predicate over node state becomes true.
  Handlers that change state call :meth:`~repro.sim.node.Node.notify`,
  and the node re-evaluates the predicate *when the FIFO is empty* --
  exactly the paper's semantics where queued high-priority handlers run
  before the spinning thread gets the CPU back.
* :class:`Done` -- optional explicit termination marker (returning from
  the generator is equivalent).

A blocking request (the paper's Figure 4-2 timeline) is then simply::

    yield Compute(W)
    node.memory["replied"] = False
    yield Send(dest, request_handler, payload=...)   # handler replies
    yield Wait(lambda node: node.memory["replied"])

This keeps workload code honest: the cycle structure measured by the
statistics module is produced by the same mechanism an Alewife program
would use (spin on a counter flipped by the reply handler).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.messages import Message
    from repro.sim.node import Node

__all__ = ["Compute", "Done", "Send", "ThreadEffect", "Wait"]


class ThreadEffect:
    """Marker base class for effects a thread generator may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(ThreadEffect):
    """Consume ``duration`` cycles of CPU at thread (lowest) priority."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration!r}")


@dataclass(frozen=True)
class Send(ThreadEffect):
    """Inject an active message addressed to node ``dest``.

    Attributes
    ----------
    dest:
        Destination node id.
    handler:
        ``(node, message) -> None`` to run at the destination.
    kind:
        Statistics label, usually ``"request"``.
    payload:
        Arbitrary data carried by the message.
    service_time:
        Explicit handler service requirement; None draws from the
        machine's handler-time distribution.
    """

    dest: int
    handler: Callable[["Node", "Message"], None]
    kind: str = "request"
    payload: Any = None
    service_time: float | None = None


@dataclass(frozen=True)
class Wait(ThreadEffect):
    """Block the thread until ``predicate(node)`` holds.

    The predicate is checked when the effect is yielded (an already-true
    predicate does not block) and re-checked at every handler completion
    that leaves the FIFO empty, after :meth:`~repro.sim.node.Node.notify`.
    """

    predicate: Callable[["Node"], bool]
    #: Diagnostic label shown in livelock errors.
    label: str = field(default="wait", compare=False)


@dataclass(frozen=True)
class Done(ThreadEffect):
    """Explicitly end the thread (same as returning from the generator)."""
