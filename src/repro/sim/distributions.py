"""Service-time distributions parameterised by mean and squared CV.

The LoPC model's only distributional knob is ``C^2``, the squared
coefficient of variation of handler service time (paper Section 5.2, the
optional fifth parameter of Table 3.1).  The simulator therefore needs a
family of non-negative distributions indexed by ``(mean, C^2)``:

* ``C^2 = 0``  -- :class:`Constant` (the paper's "short instruction
  streams with low variability");
* ``C^2 = 1``  -- :class:`Exponential` (the classical MVA default);
* ``0 < C^2 < 1`` -- :class:`Gamma` with shape ``1/C^2`` (Erlang-like);
* ``C^2 > 1``  -- :class:`Gamma` with shape ``< 1``, or the two-phase
  balanced-means :class:`HyperExponential` often used in queueing
  studies;
* :class:`Uniform` -- ``C^2 = 1/3`` when spanning ``[0, 2*mean]``; the
  "Uniform Service Time Distributions" of the paper's Section 5.2 title.

:func:`from_mean_cv2` picks the canonical member for an arbitrary
``C^2 >= 0``.  All sampling goes through a caller-provided
:class:`numpy.random.Generator` so simulations are reproducible.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Constant",
    "Exponential",
    "Gamma",
    "HyperExponential",
    "ServiceDistribution",
    "Uniform",
    "from_mean_cv2",
]


class ServiceDistribution(ABC):
    """A non-negative random service requirement with known mean and C^2."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value."""

    @property
    @abstractmethod
    def cv2(self) -> float:
        """Squared coefficient of variation ``Var/Mean^2``."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one value (>= 0)."""

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` values as one native vectorized call.

        Every built-in subclass overrides this with a single generator
        call (``rng.exponential(..., size=...)`` and friends) -- no
        per-sample Python loop.  Draws are deterministic for a given
        ``Generator`` state, though a vectorized draw may consume the
        stream differently than ``size`` repeated :meth:`sample` calls;
        use one or the other consistently when replaying seeds.  Every
        built-in *does* consume the generator element-wise, so chunked
        bulk draws concatenate to one large draw --
        ``sample_many(rng, a)`` then ``sample_many(rng, b)`` equals
        ``sample_many(rng, a + b)`` bit for bit.  The
        :mod:`repro.sim.streams` refill logic relies on this, so
        subclasses used with streams must preserve it.  This base
        fallback (a ``sample`` loop) exists only for third-party
        subclasses that cannot vectorize.
        """
        size = _check_size(size)
        return np.array([self.sample(rng) for _ in range(size)], dtype=float)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(mean={self.mean:g}, cv2={self.cv2:g})"
        )


def _check_mean(mean: float) -> float:
    if mean < 0:
        raise ValueError(f"mean must be >= 0, got {mean!r}")
    return float(mean)


def _check_size(size: int) -> int:
    if int(size) != size or size < 0:
        raise ValueError(f"size must be an integer >= 0, got {size!r}")
    return int(size)


class Constant(ServiceDistribution):
    """Deterministic service time: ``C^2 = 0``."""

    def __init__(self, value: float) -> None:
        self._value = _check_mean(value)

    @property
    def mean(self) -> float:
        return self._value

    @property
    def cv2(self) -> float:
        return 0.0

    def sample(self, rng: np.random.Generator) -> float:
        return self._value

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(_check_size(size), self._value, dtype=float)


class Exponential(ServiceDistribution):
    """Exponential service time: ``C^2 = 1`` (memoryless)."""

    def __init__(self, mean: float) -> None:
        self._mean = _check_mean(mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv2(self) -> float:
        return 1.0

    def sample(self, rng: np.random.Generator) -> float:
        if self._mean == 0.0:
            return 0.0
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self._mean == 0.0:
            return np.zeros(_check_size(size))
        return rng.exponential(self._mean, size=_check_size(size))


class Uniform(ServiceDistribution):
    """Uniform on ``[low, high]``; ``C^2 = (high-low)^2 / (3 (high+low)^2)``.

    ``Uniform.spanning(mean)`` gives the ``[0, 2*mean]`` form with
    ``C^2 = 1/3``.
    """

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(
                f"need 0 <= low <= high, got low={low!r}, high={high!r}"
            )
        self._low = float(low)
        self._high = float(high)

    @classmethod
    def spanning(cls, mean: float) -> "Uniform":
        """Uniform on ``[0, 2*mean]`` -- the max-spread uniform for a mean."""
        _check_mean(mean)
        return cls(0.0, 2.0 * mean)

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def cv2(self) -> float:
        if self.mean == 0.0:
            return 0.0
        var = (self._high - self._low) ** 2 / 12.0
        return var / self.mean**2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self._low, self._high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self._low, self._high, size=_check_size(size))


class Gamma(ServiceDistribution):
    """Gamma distribution with given mean and C^2 (shape ``k = 1/C^2``).

    Covers the whole ``C^2 > 0`` range: Erlang-like for ``C^2 < 1``,
    exponential at ``C^2 = 1``, heavy-tailed-ish for ``C^2 > 1``.
    """

    def __init__(self, mean: float, cv2: float) -> None:
        self._mean = _check_mean(mean)
        if cv2 <= 0:
            raise ValueError(
                f"Gamma requires cv2 > 0 (use Constant for cv2=0), got {cv2!r}"
            )
        self._cv2 = float(cv2)
        self._shape = 1.0 / self._cv2
        self._scale = self._mean * self._cv2

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv2(self) -> float:
        return self._cv2

    def sample(self, rng: np.random.Generator) -> float:
        if self._mean == 0.0:
            return 0.0
        return float(rng.gamma(self._shape, self._scale))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        if self._mean == 0.0:
            return np.zeros(_check_size(size))
        return rng.gamma(self._shape, self._scale, size=_check_size(size))


class HyperExponential(ServiceDistribution):
    """Two-phase hyper-exponential with balanced means; ``C^2 > 1``.

    With probability ``p`` draw Exp(mean ``m1``), else Exp(mean ``m2``),
    with ``p m1 = (1-p) m2`` (the standard "balanced means" construction)
    chosen to hit a target ``(mean, C^2)``.
    """

    def __init__(self, mean: float, cv2: float) -> None:
        self._mean = _check_mean(mean)
        if cv2 <= 1.0:
            raise ValueError(
                f"HyperExponential requires cv2 > 1, got {cv2!r}"
            )
        self._cv2 = float(cv2)
        # Balanced means: p = (1 + sqrt((C2-1)/(C2+1)))/2
        ratio = math.sqrt((self._cv2 - 1.0) / (self._cv2 + 1.0))
        self._p = 0.5 * (1.0 + ratio)
        self._m1 = self._mean / (2.0 * self._p)
        self._m2 = self._mean / (2.0 * (1.0 - self._p))

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def cv2(self) -> float:
        return self._cv2

    @property
    def branch_probability(self) -> float:
        """Probability of the fast branch."""
        return self._p

    def sample(self, rng: np.random.Generator) -> float:
        if self._mean == 0.0:
            return 0.0
        m = self._m1 if rng.random() < self._p else self._m2
        return float(rng.exponential(m))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        size = _check_size(size)
        if self._mean == 0.0:
            return np.zeros(size)
        # One native draw of (size, 2) doubles per bulk call: row i is
        # the branch pick and the magnitude (exponential by inversion,
        # -m * log1p(-U)) of sample i, so every sample consumes a fixed
        # two doubles in order and chunked bulk draws concatenate to one
        # large draw bit for bit -- the stream layer's refill-boundary
        # contract.  The previous implementation drew all branch picks
        # first and all magnitudes second, which broke that property
        # (and silently skewed nothing else: moments are identical, as
        # the property tests pin).  The *scalar* path keeps numpy's
        # ziggurat exponential above, unchanged from the seed repo, so
        # bulk and scalar draws agree in distribution but not bit-wise.
        u = rng.random((size, 2))
        means = np.where(u[:, 0] < self._p, self._m1, self._m2)
        return -means * np.log1p(-u[:, 1])


def from_mean_cv2(mean: float, cv2: float) -> ServiceDistribution:
    """Canonical distribution for a ``(mean, C^2)`` pair.

    ``C^2 = 0`` -> Constant; ``C^2 = 1`` -> Exponential; otherwise Gamma.
    This mirrors the model's residual-life treatment, which depends on the
    distribution only through its first two moments.
    """
    _check_mean(mean)
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2!r}")
    if cv2 == 0.0 or mean == 0.0:
        return Constant(mean)
    if cv2 == 1.0:
        return Exponential(mean)
    return Gamma(mean, cv2)
