"""The contention-free interconnect.

Paper Chapter 2: "we assume that the interconnect is contention free.
We model contention only for processor resources."  Accordingly the
network is a pure delay element: every message is delivered to its
destination node ``latency`` cycles after injection, independent of other
traffic.  (The paper validates that this assumption is harmless for the
short messages and low-cost handlers studied -- the simulator it compared
against Alewife used exactly this network.)

The latency may be a constant (``St``) or any
:class:`~repro.sim.distributions.ServiceDistribution`, in which case
``St`` is its mean; the LoPC model only uses the mean because in a
contention-free network "the average wire time is all we need to
characterize the response time in the network" (Section 5.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.sim.distributions import Constant, ServiceDistribution
from repro.sim.engine import Simulator
from repro.sim.messages import Message
from repro.sim.streams import SampleStream

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Node

__all__ = ["ContentionFreeNetwork"]


class ContentionFreeNetwork:
    """Pure-delay interconnect between ``P`` nodes.

    Attributes
    ----------
    messages_sent:
        Total messages injected.
    wire_time_total:
        Accumulated wire time, so tests can verify the realised mean
        latency matches the configured ``St``.
    latency_stream:
        The bulk-drawn :class:`~repro.sim.streams.SampleStream` serving
        wire delays when built with ``use_streams=True`` (the default
        for :class:`~repro.sim.machine.Machine`); ``None`` in scalar
        mode, where every send draws ``latency_dist.sample(rng)``
        exactly like the seed simulator.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: float | ServiceDistribution,
        rng: np.random.Generator,
        use_streams: bool = False,
    ) -> None:
        if isinstance(latency, ServiceDistribution):
            self.latency_dist: ServiceDistribution = latency
        else:
            if latency < 0:
                raise ValueError(f"latency must be >= 0, got {latency!r}")
            self.latency_dist = Constant(latency)
        self._sim = sim
        self._rng = rng
        self.latency_stream: SampleStream | None = (
            SampleStream(self.latency_dist, rng) if use_streams else None
        )
        self._nodes: Sequence["Node"] | None = None
        self.messages_sent: int = 0
        self.wire_time_total: float = 0.0
        #: Optional tap called on every send (tracing / debugging).
        self.on_send: Callable[[Message], None] | None = None

    @property
    def mean_latency(self) -> float:
        """The configured ``St``."""
        return self.latency_dist.mean

    @property
    def node_count(self) -> int:
        """Number of attached nodes (0 before :meth:`attach`)."""
        return 0 if self._nodes is None else len(self._nodes)

    def attach(self, nodes: Sequence["Node"]) -> None:
        """Connect the network to the machine's nodes (done by Machine)."""
        if self._nodes is not None:
            raise RuntimeError("network is already attached to a machine")
        self._nodes = nodes

    def reserve(self, draws: int) -> None:
        """Pre-size the latency stream for ``draws`` sends (no-op scalar)."""
        if self.latency_stream is not None:
            self.latency_stream.reserve(draws)

    def send(self, message: Message) -> None:
        """Inject a message; it arrives ``latency`` cycles later."""
        if self._nodes is None:
            raise RuntimeError("network not attached to any nodes")
        if not 0 <= message.dest < len(self._nodes):
            raise ValueError(
                f"destination {message.dest} out of range for "
                f"{len(self._nodes)} nodes"
            )
        message.sent_at = self._sim.now
        stream = self.latency_stream
        if stream is not None:
            delay = stream.draw()
            self.messages_sent += 1
            self.wire_time_total += delay
            if self.on_send is not None:
                self.on_send(message)
            # Deliveries are never cancelled: allocation-free tuple path.
            self._sim.schedule_call(
                delay, self._nodes[message.dest].deliver, message
            )
        else:
            delay = self.latency_dist.sample(self._rng)
            self.messages_sent += 1
            self.wire_time_total += delay
            if self.on_send is not None:
                self.on_send(message)
            dest = self._nodes[message.dest]
            self._sim.schedule(delay, lambda: dest.deliver(message))

    @property
    def mean_realized_latency(self) -> float:
        """Mean wire time actually sampled so far."""
        if self.messages_sent == 0:
            return 0.0
        return self.wire_time_total / self.messages_sent
