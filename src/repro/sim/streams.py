"""Bulk-drawn RNG streams for the event-driven simulator.

The simulator's hot paths used to pay one scalar ``Generator`` call per
event -- ``ServiceDistribution.sample(rng)`` for every handler dispatch,
wire delay and compute burst, and ``rng.integers(...)`` for every
destination pick.  A scalar numpy draw costs ~1-3 microseconds of
Python/C boundary overhead; the *vectorized* draw of the same value
costs ~0.15 microseconds.  This module moves the boundary: a
:class:`SampleStream` wraps a ``(ServiceDistribution, Generator)`` pair
and serves draws from a refillable buffer filled by one
``sample_many`` call at a time, and an :class:`IntegerStream` does the
same for bounded integer picks.

Buffering policy
----------------
A stream is created with an ``initial`` buffer size and refills by a
``refill`` policy:

``"grow"``
    (default) each refill doubles the request up to ``max_buffer`` --
    geometric growth amortises refills for long runs without
    over-drawing short ones;
``"fixed"``
    every refill re-draws ``initial`` values -- predictable memory for
    callers that sized the buffer themselves;
``"error"``
    never refill: draining the buffer raises :class:`StreamExhausted`.
    For strictly pre-sized runs where an unplanned refill is a bug.

:meth:`SampleStream.reserve` pre-sizes the *next* refill so a caller
that knows its draw count up front (a workload knows its cycle count;
the sweep evaluators know the expected event count per point) pays one
bulk draw instead of a geometric ramp.

Determinism contract
--------------------
Draws come from the caller's ``Generator``, so a fixed seed plus a
fixed buffering schedule (same initial size, same reserves, same draw
sequence) reproduces the identical value sequence, run after run.  Two
caveats, both documented in the README:

* the stream consumes the generator in bulk, so the *draw order*
  differs from the seed repo's scalar path -- fixed-seed trajectories
  changed when the simulator adopted streams (the distributions are
  identical; golden values were re-pinned);
* changing a buffer size changes how bulk draws interleave with any
  scalar draws on the same generator, so buffer sizes are part of the
  determinism contract, exactly like the seed.

The scalar adapters (:class:`ScalarSampleStream`,
:class:`ScalarIntegerStream`) keep the seed repo's draw-per-event
behaviour -- bit-identical values *and* cost -- behind the same
interface, so ``Machine(config, use_streams=False)`` reproduces seed
trajectories and benchmarks can compare the two paths end to end.

:class:`StreamRegistry` owns one stream per ``(owner, distribution)``
pair; each :class:`~repro.sim.node.Node` carries a registry over its
private generator, and the network wraps its latency distribution the
same way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.distributions import ServiceDistribution

__all__ = [
    "DEFAULT_INITIAL_BUFFER",
    "DEFAULT_MAX_BUFFER",
    "IntegerStream",
    "SampleStream",
    "ScalarIntegerStream",
    "ScalarSampleStream",
    "StreamExhausted",
    "StreamRegistry",
    "stream_sample",
    "stream_shuffle",
]

#: First refill size of a stream nobody pre-sized.
DEFAULT_INITIAL_BUFFER = 256
#: Geometric growth stops here; reserves are clamped to it as well.
DEFAULT_MAX_BUFFER = 1 << 16

_REFILL_POLICIES = ("grow", "fixed", "error")


class StreamExhausted(RuntimeError):
    """A ``refill="error"`` stream was drawn past its buffered values."""


def _check_buffer_sizes(initial: int, max_buffer: int) -> tuple[int, int]:
    if int(initial) != initial or initial < 1:
        raise ValueError(f"initial buffer must be an integer >= 1, got {initial!r}")
    if int(max_buffer) != max_buffer or max_buffer < initial:
        raise ValueError(
            f"max_buffer must be an integer >= initial ({initial}), "
            f"got {max_buffer!r}"
        )
    return int(initial), int(max_buffer)


def _check_refill(refill: str) -> str:
    if refill not in _REFILL_POLICIES:
        raise ValueError(
            f"refill must be one of {_REFILL_POLICIES}, got {refill!r}"
        )
    return refill


class _BulkStream:
    """Shared refillable-buffer machinery behind both stream types.

    Subclasses supply :meth:`_bulk_values` (one vectorized draw of
    ``size`` values as a plain list) and :meth:`_label` (for error
    messages); everything else -- the buffering policy, geometric
    growth, reserve clamping and draw accounting -- lives here once.
    """

    __slots__ = (
        "rng",
        "refill_policy",
        "max_buffer",
        "refills",
        "_values",
        "_pos",
        "_len",
        "_next_size",
        "_filled",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        initial: int,
        max_buffer: int,
        refill: str,
    ) -> None:
        initial, max_buffer = _check_buffer_sizes(initial, max_buffer)
        self.rng = rng
        self.refill_policy = _check_refill(refill)
        self.max_buffer = max_buffer
        #: Number of bulk refills performed so far.
        self.refills = 0
        self._values: list = []
        self._pos = 0
        self._len = 0
        self._next_size = initial
        self._filled = 0

    def _bulk_values(self, size: int) -> list:
        raise NotImplementedError  # pragma: no cover - abstract hook

    def _label(self) -> str:
        raise NotImplementedError  # pragma: no cover - abstract hook

    # ------------------------------------------------------------------
    @property
    def draws(self) -> int:
        """Values handed out so far (buffered-but-unseen ones excluded)."""
        return self._filled - (self._len - self._pos)

    @property
    def buffered(self) -> int:
        """Values currently sitting in the buffer, ready to draw."""
        return self._len - self._pos

    def reserve(self, draws: int) -> None:
        """Size the next refill so ``draws`` upcoming draws need one fill.

        Clamped to ``max_buffer``; never shrinks an already larger
        pending request.  A no-op on ``refill="error"`` streams that
        already hold enough values (they have no next refill).
        """
        if int(draws) != draws or draws < 0:
            raise ValueError(f"draws must be an integer >= 0, got {draws!r}")
        need = int(draws) - self.buffered
        if need > self._next_size:
            self._next_size = min(need, self.max_buffer)

    def prefill(self, draws: int) -> None:
        """Top the buffer up to cover ``draws`` upcoming draws *now*.

        An explicit fill rather than a refill-policy event, so it works
        on ``refill="error"`` streams (it is how they are provisioned);
        already-buffered values are kept, preserving the draw sequence.
        """
        if int(draws) != draws or draws < 0:
            raise ValueError(f"draws must be an integer >= 0, got {draws!r}")
        need = int(draws) - self.buffered
        if need <= 0:
            return
        self._values = self._values[self._pos :] + self._bulk_values(need)
        self._pos = 0
        self._len = len(self._values)
        self._filled += need
        self.refills += 1

    def draw(self):
        """One value from the buffer, refilling when it runs dry."""
        pos = self._pos
        if pos >= self._len:
            self._fill()
            pos = 0
        self._pos = pos + 1
        return self._values[pos]

    def _fill(self) -> None:
        if self.refill_policy == "error":
            raise StreamExhausted(
                f"{self._label()} exhausted after "
                f"{self.draws} draws (refill='error')"
            )
        size = self._next_size
        self._values = self._bulk_values(size)
        self._pos = 0
        self._len = size
        self._filled += size
        self.refills += 1
        if self.refill_policy == "grow":
            self._next_size = min(size * 2, self.max_buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self._label()}, draws={self.draws}, "
            f"buffered={self.buffered}, refill={self.refill_policy!r})"
        )


class SampleStream(_BulkStream):
    """Bulk-buffered draws from one ``(distribution, Generator)`` pair.

    ``draw()`` is the hot-path call: a list index plus a bounds check,
    refilling the buffer through ``dist.sample_many`` only when it runs
    dry.  Values are bit-identical to what direct ``sample_many`` calls
    of the same total size would produce on the same generator (every
    built-in distribution draws element-wise, so chunked bulk draws
    split cleanly -- see ``tests/sim/test_streams.py``).
    """

    __slots__ = ("dist",)

    def __init__(
        self,
        dist: "ServiceDistribution",
        rng: np.random.Generator,
        initial: int = DEFAULT_INITIAL_BUFFER,
        max_buffer: int = DEFAULT_MAX_BUFFER,
        refill: str = "grow",
    ) -> None:
        self.dist = dist
        super().__init__(rng, initial, max_buffer, refill)

    def _bulk_values(self, size: int) -> list:
        # .tolist() converts to machine floats in one C pass, so draw()
        # hands out plain floats with no per-value numpy boxing.
        return self.dist.sample_many(self.rng, size).tolist()

    def _label(self) -> str:
        return f"stream over {self.dist!r}"

    def draw_many(self, size: int) -> np.ndarray:
        """The next ``size`` values as an array.

        Consumes the buffer first, then draws any remainder in one
        direct bulk call -- the returned values are exactly the ones
        ``size`` repeated :meth:`draw` calls would have produced.
        """
        if int(size) != size or size < 0:
            raise ValueError(f"size must be an integer >= 0, got {size!r}")
        size = int(size)
        take = min(size, self.buffered)
        head = self._values[self._pos : self._pos + take]
        self._pos += take
        rest = size - take
        if rest == 0:
            return np.array(head, dtype=float)
        if self.refill_policy == "error":
            raise StreamExhausted(
                f"{self._label()} exhausted: {rest} draws remain "
                f"after its buffer emptied (refill='error')"
            )
        tail = self.dist.sample_many(self.rng, rest)
        self._filled += rest
        return np.concatenate([np.array(head, dtype=float), tail])


class IntegerStream(_BulkStream):
    """Bulk-buffered uniform integer picks on ``[0, high)``.

    The destination picks of the random workloads (``rng.integers`` is
    the single most expensive scalar generator call numpy offers --
    ~2.5us per pick against ~0.1us bulked).
    """

    __slots__ = ("high",)

    def __init__(
        self,
        high: int,
        rng: np.random.Generator,
        initial: int = DEFAULT_INITIAL_BUFFER,
        max_buffer: int = DEFAULT_MAX_BUFFER,
        refill: str = "grow",
    ) -> None:
        if int(high) != high or high < 1:
            raise ValueError(f"high must be an integer >= 1, got {high!r}")
        self.high = int(high)
        super().__init__(rng, initial, max_buffer, refill)

    def _bulk_values(self, size: int) -> list:
        return self.rng.integers(self.high, size=size).tolist()

    def _label(self) -> str:
        return f"integer stream on [0, {self.high})"


class ScalarSampleStream:
    """Seed-exact adapter: one ``dist.sample(rng)`` call per draw.

    Same interface as :class:`SampleStream`, same values *and* generator
    consumption order as the seed repo's scalar hot path, so
    ``use_streams=False`` machines reproduce pre-stream trajectories
    bit for bit and benchmarks can measure streamed-vs-scalar honestly.
    """

    __slots__ = ("dist", "rng", "draws")

    refills = 0
    buffered = 0

    def __init__(self, dist: "ServiceDistribution", rng: np.random.Generator) -> None:
        self.dist = dist
        self.rng = rng
        self.draws = 0

    def reserve(self, draws: int) -> None:
        """No-op: scalar draws have nothing to pre-size."""

    def prefill(self, draws: int) -> None:
        """No-op: scalar draws have nothing to pre-size."""

    def draw(self) -> float:
        self.draws += 1
        return float(self.dist.sample(self.rng))

    def draw_many(self, size: int) -> np.ndarray:
        if int(size) != size or size < 0:
            raise ValueError(f"size must be an integer >= 0, got {size!r}")
        self.draws += int(size)
        return np.array(
            [float(self.dist.sample(self.rng)) for _ in range(int(size))],
            dtype=float,
        )


class ScalarIntegerStream:
    """Seed-exact adapter: one ``rng.integers(high)`` call per pick."""

    __slots__ = ("high", "rng", "draws")

    refills = 0
    buffered = 0

    def __init__(self, high: int, rng: np.random.Generator) -> None:
        if int(high) != high or high < 1:
            raise ValueError(f"high must be an integer >= 1, got {high!r}")
        self.high = int(high)
        self.rng = rng
        self.draws = 0

    def reserve(self, draws: int) -> None:
        """No-op: scalar draws have nothing to pre-size."""

    def draw(self) -> int:
        self.draws += 1
        return int(self.rng.integers(self.high))


def stream_shuffle(streams: "StreamRegistry", seq: list) -> None:
    """In-place Fisher-Yates shuffle drawing from registry pick streams.

    The stream-honouring replacement for ``rng.shuffle(seq)`` at
    workload call sites: every index pick comes from the registry's
    ``[0, i+1)`` integer streams, so shuffles are bulk-drawn on
    buffered registries, plain scalar ``rng.integers`` calls on
    seed-exact scalar ones, and deterministic for a fixed seed and
    buffering schedule either way (the stream determinism contract).
    Uniform over all permutations, like ``rng.shuffle``; the draw
    *sequence* differs, so fixed-seed trajectories change when a
    workload switches over.
    """
    for i in range(len(seq) - 1, 0, -1):
        j = streams.integers(i + 1).draw()
        seq[i], seq[j] = seq[j], seq[i]


def stream_sample(streams: "StreamRegistry", n: int, k: int) -> list[int]:
    """``k`` distinct uniform indices from ``range(n)``, stream-drawn.

    The stream-honouring replacement for
    ``rng.choice(n, size=k, replace=False)``: a partial Fisher-Yates
    over ``range(n)`` whose ``k`` index picks come from the registry's
    integer streams.  Uniform over all ``k``-permutations (order is
    random, as with ``rng.choice``'s permutation method).
    """
    if not 0 <= k <= n:
        raise ValueError(f"need 0 <= k <= n, got k={k!r}, n={n!r}")
    indices = list(range(n))
    for i in range(k):
        j = i + streams.integers(n - i).draw()
        indices[i], indices[j] = indices[j], indices[i]
    return indices[:k]


class StreamRegistry:
    """One stream per ``(owner, distribution)`` pair over one generator.

    Each node owns a registry over its private generator (and the
    network wraps its latency distribution directly), so every
    ``(node, distribution)`` pair draws from exactly one stream and the
    per-node seeding of the seed repo is preserved.  Distributions are
    keyed by identity -- the registry holds a reference, so two nodes
    sharing one distribution object still get independent streams from
    their own registries.

    ``scalar=True`` registries hand out the seed-exact scalar adapters
    instead, keeping every call site uniform across both modes.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        scalar: bool = False,
        initial: int = DEFAULT_INITIAL_BUFFER,
        max_buffer: int = DEFAULT_MAX_BUFFER,
    ) -> None:
        self.rng = rng
        self.scalar = bool(scalar)
        self.initial, self.max_buffer = _check_buffer_sizes(initial, max_buffer)
        self._samples: dict[
            "ServiceDistribution", SampleStream | ScalarSampleStream
        ] = {}
        self._integers: dict[int, IntegerStream | ScalarIntegerStream] = {}

    def stream(
        self, dist: "ServiceDistribution"
    ) -> SampleStream | ScalarSampleStream:
        """The stream for ``dist``, created on first use."""
        stream = self._samples.get(dist)
        if stream is None:
            if self.scalar:
                stream = ScalarSampleStream(dist, self.rng)
            else:
                stream = SampleStream(
                    dist, self.rng, initial=self.initial,
                    max_buffer=self.max_buffer,
                )
            self._samples[dist] = stream
        return stream

    def integers(self, high: int) -> IntegerStream | ScalarIntegerStream:
        """The pick stream for ``[0, high)``, created on first use."""
        stream = self._integers.get(high)
        if stream is None:
            if self.scalar:
                stream = ScalarIntegerStream(high, self.rng)
            else:
                stream = IntegerStream(
                    high, self.rng, initial=self.initial,
                    max_buffer=self.max_buffer,
                )
            self._integers[high] = stream
        return stream

    def reserve(self, dist: "ServiceDistribution", draws: int) -> None:
        """Pre-size the stream for ``dist`` (creating it if needed)."""
        self.stream(dist).reserve(draws)

    @property
    def sample_streams(
        self,
    ) -> Mapping["ServiceDistribution", SampleStream | ScalarSampleStream]:
        """Read-only view of the distribution streams (introspection)."""
        return dict(self._samples)

    def __iter__(self) -> Iterator[SampleStream | ScalarSampleStream]:
        return iter(self._samples.values())

    @property
    def total_draws(self) -> int:
        """Draws served across every stream in this registry."""
        return sum(s.draws for s in self._samples.values()) + sum(
            s.draws for s in self._integers.values()
        )

    @property
    def total_refills(self) -> int:
        """Bulk refills across every stream in this registry."""
        return sum(s.refills for s in self._samples.values()) + sum(
            s.refills for s in self._integers.values()
        )
