"""Execution tracing for the simulated machine.

A :class:`TraceRecorder` attached to a machine records a timestamped
event stream -- message lifecycle (arrive / dispatch / complete) and
thread scheduling (compute start / preempt / block / finish) -- which
can be filtered, rendered as a text timeline, or exported as CSV.

Useful for debugging workloads, teaching the machine model, and for
*verifying semantics in tests*: several node-model tests assert exact
event sequences (a handler never preempts a handler, the thread only
resumes once the FIFO drains) straight off the trace.

Tracing is off unless a recorder is attached; the node model pays a
single ``is None`` check per hook when disabled.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine

__all__ = ["TraceEvent", "TraceRecorder"]

#: Event kinds emitted by the node model.
MESSAGE_ARRIVED = "message-arrived"
MESSAGE_QUEUED = "message-queued"
HANDLER_DISPATCHED = "handler-dispatched"
HANDLER_COMPLETED = "handler-completed"
COMPUTE_STARTED = "compute-started"
COMPUTE_PREEMPTED = "compute-preempted"
COMPUTE_FINISHED = "compute-finished"
THREAD_BLOCKED = "thread-blocked"
THREAD_FINISHED = "thread-finished"

ALL_KINDS = (
    MESSAGE_ARRIVED,
    MESSAGE_QUEUED,
    HANDLER_DISPATCHED,
    HANDLER_COMPLETED,
    COMPUTE_STARTED,
    COMPUTE_PREEMPTED,
    COMPUTE_FINISHED,
    THREAD_BLOCKED,
    THREAD_FINISHED,
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped occurrence on one node."""

    time: float
    node: int
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time:12.2f}] node {self.node:3d}  {self.kind:<18} {self.detail}"


class TraceRecorder:
    """Collects :class:`TraceEvent` records from attached nodes.

    Parameters
    ----------
    max_events:
        Hard cap; recording silently stops once reached (the counter
        keeps incrementing so overflow is detectable).
    """

    def __init__(self, max_events: int = 1_000_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events!r}")
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped: int = 0

    # ------------------------------------------------------------------
    def attach(self, machine: "Machine") -> "TraceRecorder":
        """Attach to every node of a machine (returns self for chaining)."""
        for node in machine.nodes:
            node.tracer = self
        return self

    def detach(self, machine: "Machine") -> None:
        """Stop recording from the machine's nodes."""
        for node in machine.nodes:
            node.tracer = None

    def record(self, time: float, node: int, kind: str, detail: str = "") -> None:
        """Hook target called by the node model."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, node, kind, detail))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        node: int | None = None,
        kinds: Sequence[str] | None = None,
        start: float = float("-inf"),
        end: float = float("inf"),
    ) -> list[TraceEvent]:
        """Events matching a node / kind / time window."""
        if kinds is not None:
            unknown = set(kinds) - set(ALL_KINDS)
            if unknown:
                raise ValueError(
                    f"unknown trace kinds {sorted(unknown)}; "
                    f"valid: {ALL_KINDS}"
                )
        out = []
        for ev in self.events:
            if node is not None and ev.node != node:
                continue
            if kinds is not None and ev.kind not in kinds:
                continue
            if not start <= ev.time <= end:
                continue
            out.append(ev)
        return out

    def kind_counts(self) -> dict[str, int]:
        """Histogram of event kinds recorded so far."""
        counts: dict[str, int] = {}
        for ev in self.events:
            counts[ev.kind] = counts.get(ev.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(
        self, events: Iterable[TraceEvent] | None = None, limit: int = 200
    ) -> str:
        """Human-readable timeline (one line per event)."""
        evs = list(self.events if events is None else events)
        lines = [str(ev) for ev in evs[:limit]]
        if len(evs) > limit:
            lines.append(f"... ({len(evs) - limit} more events)")
        if self.dropped:
            lines.append(f"... ({self.dropped} events dropped at cap)")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The full event stream as CSV (time,node,kind,detail)."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["time", "node", "kind", "detail"])
        for ev in self.events:
            writer.writerow([repr(ev.time), ev.node, ev.kind, ev.detail])
        return buf.getvalue()
