"""Discrete-event simulation core: clock, event queue, run loop.

A deliberately small engine in the classic style: a binary heap of
``(time, sequence, callback)`` entries.  The sequence number makes event
ordering *deterministic* for simultaneous events (FIFO in scheduling
order), which matters both for reproducibility and for the machine
semantics (e.g. a handler-completion event scheduled before a message
arrival at the same instant runs first).

Cancellation is lazy: :meth:`Simulator.schedule` returns an
:class:`EventHandle`; cancelling marks the handle and the run loop skips
it when popped.  This is how the node model implements preempt-resume
computation (the pending completion event of an interrupted computation
is cancelled and a new one scheduled at resume).
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the run loop will skip it."""
        self.cancelled = True
        self.callback = _noop  # drop references early

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


def _noop() -> None:
    return None


class Simulator:
    """The simulation clock and event loop.

    Attributes
    ----------
    now:
        Current simulation time (cycles).  Only the run loop advances it.
    events_processed:
        Count of callbacks executed (cancelled events excluded).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: list[EventHandle] = []
        self._seq: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be >= 0; zero-delay events run after all events
        already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay!r}")
        handle = EventHandle(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event.  Returns False if none remain."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            if handle.time < self.now:  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"event time {handle.time} precedes clock {self.now}"
                )
            self.now = handle.time
            self.events_processed += 1
            handle.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int = 100_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass this time (events at
            exactly ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        stop:
            Optional predicate checked after every event; the loop exits
            once it returns True (used to end a run when all threads have
            completed their measured cycles).
        """
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            executed += 1
            if stop is not None and stop():
                return
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events} "
                    f"(clock at {self.now}); likely a livelock in the workload"
                )
