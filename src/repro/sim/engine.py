"""Discrete-event simulation core: clock, event queue, run loop.

A deliberately small engine in the classic style: a binary heap of
``(time, sequence, callback)`` entries.  The sequence number makes event
ordering *deterministic* for simultaneous events (FIFO in scheduling
order), which matters both for reproducibility and for the machine
semantics (e.g. a handler-completion event scheduled before a message
arrival at the same instant runs first).

Cancellation is lazy: :meth:`Simulator.schedule` returns an
:class:`EventHandle`; cancelling marks the handle and the run loop skips
it when popped.  This is how the node model implements preempt-resume
computation (the pending completion event of an interrupted computation
is cancelled and a new one scheduled at resume).

Two event representations share the one heap:

* :meth:`Simulator.schedule` -- the original API: allocates an
  :class:`EventHandle` (cancellable, closure callback).  The scalar
  simulator path uses only this, unchanged from the seed.
* :meth:`Simulator.schedule_call` -- the streamed fast path: pushes a
  plain ``(time, seq, func, arg)`` tuple.  No handle, no closure, not
  cancellable; the heap compares tuples entirely in C (the unique
  ``seq`` decides ties before the payload is ever compared).  Message
  deliveries and handler completions -- the bulk of all events, never
  cancelled -- take this path, and :meth:`Simulator.run_fast` drains a
  mixed heap with one pop per event.

Mixed heaps order correctly because :class:`EventHandle` compares
against tuples by ``(time, seq)`` (``__lt__``/``__gt__`` below).
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable

from repro.obs import context as _obs_context

__all__ = ["EventHandle", "Simulator"]


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event dead; the run loop will skip it."""
        self.cancelled = True
        self.callback = _noop  # drop references early

    def __lt__(self, other: "EventHandle | tuple") -> bool:
        if type(other) is tuple:
            other_time, other_seq = other[0], other[1]
        else:
            other_time, other_seq = other.time, other.seq
        if self.time != other_time:
            return self.time < other_time
        return self.seq < other_seq

    def __gt__(self, other: "EventHandle | tuple") -> bool:
        # tuple.__lt__(EventHandle) returns NotImplemented, so mixed-heap
        # sift comparisons fall back to this reflected operator.
        if type(other) is tuple:
            other_time, other_seq = other[0], other[1]
        else:
            other_time, other_seq = other.time, other.seq
        if self.time != other_time:
            return self.time > other_time
        return self.seq > other_seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time!r}, seq={self.seq}, {state})"


def _noop() -> None:
    return None


class Simulator:
    """The simulation clock and event loop.

    Attributes
    ----------
    now:
        Current simulation time (cycles).  Only the run loop advances it.
    events_processed:
        Count of callbacks executed (cancelled events excluded).
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self.events_processed: int = 0
        self._heap: list[EventHandle | tuple] = []
        self._seq: int = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` cycles from now.

        ``delay`` must be >= 0; zero-delay events run after all events
        already scheduled for the current instant (FIFO).
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay!r}")
        handle = EventHandle(self.now + delay, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule_call(self, delay: float, func: Callable[[Any], None],
                      arg: Any = None) -> None:
        """Schedule ``func(arg)`` -- the allocation-free fast path.

        No :class:`EventHandle` is created and the event cannot be
        cancelled; ordering (time, then scheduling FIFO) is identical to
        :meth:`schedule`.  The streamed simulator path uses this for
        message deliveries and handler completions, which dominate the
        event count and are never cancelled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past: delay={delay!r}")
        heapq.heappush(self._heap, (self.now + delay, self._seq, func, arg))
        self._seq += 1

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulation time."""
        return self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next live event, or None if the queue is drained."""
        heap = self._heap
        while heap:
            entry = heap[0]
            if type(entry) is tuple:
                return entry[0]
            if not entry.cancelled:
                return entry.time
            heapq.heappop(heap)
        return None

    def step(self) -> bool:
        """Run the next live event.  Returns False if none remain."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if type(entry) is tuple:
                self.now = entry[0]
                self.events_processed += 1
                entry[2](entry[3])
                return True
            if entry.cancelled:
                continue
            if entry.time < self.now:  # pragma: no cover - invariant guard
                raise RuntimeError(
                    f"event time {entry.time} precedes clock {self.now}"
                )
            self.now = entry.time
            self.events_processed += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: float | None = None,
        max_events: int = 100_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Drain the event queue.

        Parameters
        ----------
        until:
            If given, stop once the clock would pass this time (events at
            exactly ``until`` still run).
        max_events:
            Safety valve against runaway simulations.
        stop:
            Optional predicate checked after every event; the loop exits
            once it returns True (used to end a run when all threads have
            completed their measured cycles).
        """
        metrics = _obs_context.current_metrics()
        if metrics is not None:
            self._run_observed(until, max_events, stop, metrics)
            return
        executed = 0
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            executed += 1
            if stop is not None and stop():
                return
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events} "
                    f"(clock at {self.now}); likely a livelock in the workload"
                )

    def run_fast(
        self,
        until: float | None = None,
        max_events: int = 100_000_000,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        """Drain the event queue with one heap pop per event.

        Semantically identical to :meth:`run` (same ordering, same
        ``until``/``stop``/``max_events`` behaviour, same
        ``events_processed`` accounting) but restructured for the
        streamed simulator: the common case pops each entry exactly once
        instead of peeking then stepping, dispatches ``schedule_call``
        tuples without attribute lookups, and only falls back to the
        peek-based loop when an ``until`` horizon needs events left on
        the heap.  :meth:`run` is kept verbatim as the seed-scalar loop
        so streamed-vs-scalar benchmarks compare against the original
        path.
        """
        if until is not None:
            self.run(until=until, max_events=max_events, stop=stop)
            return
        metrics = _obs_context.current_metrics()
        if metrics is not None:
            self._run_fast_observed(max_events, stop, metrics)
            return
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = pop(heap)
            if type(entry) is tuple:
                self.now = entry[0]
                self.events_processed += 1
                entry[2](entry[3])
            else:
                if entry.cancelled:
                    continue
                self.now = entry.time
                self.events_processed += 1
                entry.callback()
            executed += 1
            if stop is not None and stop():
                return
            if executed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events} "
                    f"(clock at {self.now}); likely a livelock in the "
                    "workload"
                )

    # ------------------------------------------------------------------
    # Observed run loops.  Semantically identical to run()/run_fast();
    # chosen once at entry when a metrics registry is active, so the
    # disabled loops above pay nothing per event.  Heap size is sampled
    # once per event (in-callback transients between pushes are not
    # seen, which is fine for a high-water mark).
    # ------------------------------------------------------------------
    def _run_observed(
        self,
        until: float | None,
        max_events: int,
        stop: Callable[[], bool] | None,
        metrics,
    ) -> None:
        start = time.perf_counter()
        first_event = self.events_processed
        high_water = len(self._heap)
        try:
            executed = 0
            while True:
                if len(self._heap) > high_water:
                    high_water = len(self._heap)
                next_time = self.peek_time()
                if next_time is None:
                    return
                if until is not None and next_time > until:
                    self.now = until
                    return
                self.step()
                executed += 1
                if stop is not None and stop():
                    return
                if executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events} "
                        f"(clock at {self.now}); likely a livelock in the "
                        "workload"
                    )
        finally:
            self._record_run(metrics, start, first_event, high_water)

    def _run_fast_observed(
        self,
        max_events: int,
        stop: Callable[[], bool] | None,
        metrics,
    ) -> None:
        start = time.perf_counter()
        first_event = self.events_processed
        heap = self._heap
        pop = heapq.heappop
        high_water = len(heap)
        try:
            executed = 0
            while heap:
                if len(heap) > high_water:
                    high_water = len(heap)
                entry = pop(heap)
                if type(entry) is tuple:
                    self.now = entry[0]
                    self.events_processed += 1
                    entry[2](entry[3])
                else:
                    if entry.cancelled:
                        continue
                    self.now = entry.time
                    self.events_processed += 1
                    entry.callback()
                executed += 1
                if stop is not None and stop():
                    return
                if executed >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded max_events={max_events} "
                        f"(clock at {self.now}); likely a livelock in the "
                        "workload"
                    )
        finally:
            self._record_run(metrics, start, first_event, high_water)

    def _record_run(
        self, metrics, start: float, first_event: int, high_water: int
    ) -> None:
        wall = time.perf_counter() - start
        events = self.events_processed - first_event
        metrics.inc("sim.runs")
        metrics.inc("sim.events", events)
        metrics.gauge_max("sim.heap_high_water", high_water)
        metrics.observe("sim.run_wall", wall)
        if events and wall > 0.0:
            metrics.observe("sim.events_per_sec", events / wall)
