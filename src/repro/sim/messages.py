"""Active messages.

A message carries a pointer to a handler plus a small payload (paper
Chapter 2: "a pointer to a handler and some small amount of data").  The
handler is a Python callable ``handler(node, message)`` executed *at the
completion instant* of the handler's service time -- i.e. the service
time models the interrupt + instruction stream, and the handler's visible
effects (stores to node memory, reply sends, thread wake-ups) take effect
atomically when it finishes.

Timestamps are stamped by the machine as the message moves, so workloads
and statistics can reconstruct the exact Figure 4-3 cycle decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Node

__all__ = ["Message", "REQUEST", "REPLY"]

#: Message kinds used for statistics classification.
REQUEST = "request"
REPLY = "reply"


class Message:
    """One active message in flight or in a node's hardware FIFO.

    Attributes
    ----------
    source, dest:
        Node ids.
    handler:
        Callable ``(node, message) -> None`` run at service completion.
    kind:
        ``"request"`` or ``"reply"`` (or a workload-specific label);
        drives per-class utilisation statistics.
    payload:
        Arbitrary workload data (e.g. the matvec value+address).
    service_time:
        Explicit service requirement; if None the node draws from its
        handler-time distribution at dispatch.
    sent_at, arrived_at, dispatched_at, completed_at:
        Lifecycle timestamps (cycles), stamped by network and node.
    """

    __slots__ = (
        "source",
        "dest",
        "handler",
        "kind",
        "payload",
        "service_time",
        "sent_at",
        "arrived_at",
        "dispatched_at",
        "completed_at",
    )

    def __init__(
        self,
        source: int,
        dest: int,
        handler: Callable[["Node", "Message"], None],
        kind: str = REQUEST,
        payload: Any = None,
        service_time: float | None = None,
    ) -> None:
        if source == dest:
            raise ValueError(
                f"a node does not send itself messages through the network "
                f"(source == dest == {source})"
            )
        if service_time is not None and service_time < 0:
            raise ValueError(f"service_time must be >= 0, got {service_time!r}")
        self.source = source
        self.dest = dest
        self.handler = handler
        self.kind = kind
        self.payload = payload
        self.service_time = service_time
        self.sent_at: float = float("nan")
        self.arrived_at: float = float("nan")
        self.dispatched_at: float = float("nan")
        self.completed_at: float = float("nan")

    @property
    def wire_time(self) -> float:
        """Time spent in the interconnect (``arrived_at - sent_at``)."""
        return self.arrived_at - self.sent_at

    @property
    def queue_delay(self) -> float:
        """Wait in the hardware FIFO (``dispatched_at - arrived_at``)."""
        return self.dispatched_at - self.arrived_at

    @property
    def residence_time(self) -> float:
        """Node response time, queueing + service (paper's ``Rq``/``Ry``)."""
        return self.completed_at - self.arrived_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message({self.kind}, {self.source}->{self.dest}, "
            f"sent={self.sent_at:g})"
        )
