"""Simulation statistics: cycle records and per-node accumulators.

Two kinds of measurement mirror the two sides of the LoPC validation:

* :class:`CycleRecord` -- one blocking compute/request cycle, stamped at
  the six instants of the paper's Figure 4-3 timeline.  Averaging records
  gives measured ``Rw``, ``Rq``, ``Ry`` and ``R`` directly comparable to
  the model (this is how Figures 5-2/5-3 are regenerated).
* :class:`NodeStats` -- time-weighted handler queue length, per-kind busy
  time and thread busy time, comparable to the model's ``Qq``/``Qy`` and
  ``Uq``/``Uy`` terms via Little's law.

Both support a warm-up reset so steady-state means exclude the cold start.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.messages import Message

__all__ = [
    "CycleRecord",
    "NodeStats",
    "batch_means_ci",
    "summarize_cycles",
]


@dataclass
class CycleRecord:
    """Timestamps of one blocking compute/request cycle (Figure 4-3).

    Attributes
    ----------
    start:
        Thread became runnable (completion of the previous cycle's reply
        handler, or thread start for the first cycle).
    send:
        The request entered the network.
    request_arrived / request_done:
        Arrival at the destination node / completion of the request
        handler (which is also the instant the reply is sent).
    reply_arrived / reply_done:
        Arrival of the reply back home / completion of the reply handler
        (the thread's unblock instant -- the next cycle's ``start``).
    node:
        The requesting node id.
    """

    node: int
    start: float = math.nan
    send: float = math.nan
    request_arrived: float = math.nan
    request_done: float = math.nan
    reply_arrived: float = math.nan
    reply_done: float = math.nan

    @property
    def complete(self) -> bool:
        return not math.isnan(self.reply_done)

    # Component views (paper notation) ---------------------------------
    @property
    def rw(self) -> float:
        """Thread residence ``Rw``: runnable -> request send."""
        return self.send - self.start

    @property
    def request_wire(self) -> float:
        return self.request_arrived - self.send

    @property
    def rq(self) -> float:
        """Request handler residence ``Rq`` (queueing + service)."""
        return self.request_done - self.request_arrived

    @property
    def reply_wire(self) -> float:
        return self.reply_arrived - self.request_done

    @property
    def ry(self) -> float:
        """Reply handler residence ``Ry`` (queueing + service)."""
        return self.reply_done - self.reply_arrived

    @property
    def response_time(self) -> float:
        """Total cycle ``R`` -- identically ``rw + wires + rq + ry``."""
        return self.reply_done - self.start

    def identity_error(self) -> float:
        """``|R - (Rw + wire + Rq + wire + Ry)|`` -- zero by construction."""
        return abs(
            self.response_time
            - (self.rw + self.request_wire + self.rq + self.reply_wire + self.ry)
        )


def summarize_cycles(records: Iterable[CycleRecord]) -> dict[str, float]:
    """Mean cycle components over complete records.

    Returns a dict with keys ``count, R, Rw, Rq, Ry, wire`` (wire is the
    mean *one-way* wire time, i.e. half the round trip spent in the
    network), ready for comparison with a
    :class:`repro.core.results.ModelSolution`.
    """
    complete = [r for r in records if r.complete]
    n = len(complete)
    if n == 0:
        raise ValueError("no complete cycle records to summarise")
    total = lambda f: sum(f(r) for r in complete)  # noqa: E731
    return {
        "count": float(n),
        "R": total(lambda r: r.response_time) / n,
        "Rw": total(lambda r: r.rw) / n,
        "Rq": total(lambda r: r.rq) / n,
        "Ry": total(lambda r: r.ry) / n,
        "wire": total(lambda r: r.request_wire + r.reply_wire) / (2 * n),
    }


def batch_means_ci(
    values: Iterable[float],
    batches: int = 10,
    confidence: float = 0.95,
) -> tuple[float, float]:
    """Mean and half-width CI by the method of batch means.

    Per-cycle samples from one simulation are autocorrelated (a long
    queue in one cycle lengthens the next), so the naive i.i.d. CI is
    too tight.  Batch means restores approximate independence: split the
    ordered samples into ``batches`` contiguous batches, average each,
    and treat the batch averages as (nearly) independent samples.

    Returns ``(mean, half_width)``; the interval is
    ``mean +- half_width`` at the given confidence level (Student-t with
    ``batches - 1`` degrees of freedom).

    Raises
    ------
    ValueError
        If fewer than ``2 * batches`` samples are supplied (each batch
        needs at least two samples to be meaningful), or parameters are
        out of range.
    """
    from scipy import stats as scipy_stats

    data = [float(v) for v in values]
    if batches < 2:
        raise ValueError(f"batches must be >= 2, got {batches!r}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence!r}")
    if len(data) < 2 * batches:
        raise ValueError(
            f"need at least {2 * batches} samples for {batches} batches, "
            f"got {len(data)}"
        )
    batch_size = len(data) // batches
    means = [
        sum(data[i * batch_size : (i + 1) * batch_size]) / batch_size
        for i in range(batches)
    ]
    grand = sum(means) / batches
    var = sum((m - grand) ** 2 for m in means) / (batches - 1)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, batches - 1))
    half = t_crit * (var / batches) ** 0.5
    return grand, half


class NodeStats:
    """Time-weighted per-node statistics.

    Tracks, from the last reset:

    * ``handler_queue_area`` -- integral of the number of handler-class
      customers present (FIFO + in service); divided by elapsed time this
      is the measured ``Qq + Qy``.
    * ``busy_time[kind]`` -- CPU time consumed by handlers of each kind;
      divided by elapsed time this is ``Uq`` / ``Uy``.
    * ``thread_busy_time`` -- CPU time consumed by the background thread.
    * ``arrivals[kind]`` / ``completions[kind]`` -- message counts.
    """

    __slots__ = (
        "node_id",
        "reset_time",
        "last_change",
        "present",
        "handler_queue_area",
        "busy_time",
        "thread_busy_time",
        "arrivals",
        "completions",
        "_dispatch_times",
    )

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.reset_time = 0.0
        self.last_change = 0.0
        self.present = 0
        self.handler_queue_area = 0.0
        self.busy_time: dict[str, float] = {}
        self.thread_busy_time = 0.0
        self.arrivals: dict[str, int] = {}
        self.completions: dict[str, int] = {}
        self._dispatch_times: dict[int, float] = {}

    def reset(self, now: float) -> None:
        """Discard accumulated statistics (warm-up boundary).

        Customers currently present keep contributing from ``now`` on.
        """
        self.reset_time = now
        self.last_change = now
        self.handler_queue_area = 0.0
        self.busy_time = {}
        self.thread_busy_time = 0.0
        self.arrivals = {}
        self.completions = {}

    def _integrate(self, now: float) -> None:
        self.handler_queue_area += self.present * (now - self.last_change)
        self.last_change = now

    def on_arrival(self, message: "Message", now: float) -> None:
        self._integrate(now)
        self.present += 1
        self.arrivals[message.kind] = self.arrivals.get(message.kind, 0) + 1

    def on_completion(self, message: "Message", now: float) -> None:
        self._integrate(now)
        self.present -= 1
        assert self.present >= 0, "handler completion without arrival"
        kind = message.kind
        self.completions[kind] = self.completions.get(kind, 0) + 1
        # Busy time clipped to the measurement window.
        start = max(message.dispatched_at, self.reset_time)
        if now > start:
            self.busy_time[kind] = self.busy_time.get(kind, 0.0) + (now - start)

    def on_thread_ran(self, duration: float) -> None:
        self.thread_busy_time += duration

    # Window queries -----------------------------------------------------
    def elapsed(self, now: float) -> float:
        return now - self.reset_time

    def mean_handler_queue(self, now: float) -> float:
        """Time-average handlers present (measured ``Qq + Qy``)."""
        elapsed = self.elapsed(now)
        if elapsed <= 0:
            return 0.0
        area = self.handler_queue_area + self.present * (now - self.last_change)
        return area / elapsed

    def utilization(self, now: float, kind: str | None = None) -> float:
        """Fraction of the window spent in handlers (optionally one kind)."""
        elapsed = self.elapsed(now)
        if elapsed <= 0:
            return 0.0
        if kind is None:
            return sum(self.busy_time.values()) / elapsed
        return self.busy_time.get(kind, 0.0) / elapsed

    def thread_utilization(self, now: float) -> float:
        elapsed = self.elapsed(now)
        if elapsed <= 0:
            return 0.0
        return self.thread_busy_time / elapsed

    def as_dict(self, now: float) -> Mapping[str, float]:
        """Snapshot of the derived statistics at ``now``."""
        return {
            "mean_handler_queue": self.mean_handler_queue(now),
            "utilization_request": self.utilization(now, "request"),
            "utilization_reply": self.utilization(now, "reply"),
            "utilization_thread": self.thread_utilization(now),
        }
